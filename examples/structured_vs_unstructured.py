"""Extension study: unstructured NDSNN vs structured filter pruning.

The paper targets unstructured sparsity (maximum accuracy per removed
weight, needs index storage); structured pruning removes whole filters
(hardware-friendly, no indices, but coarser).  This example trains both
at matched sparsity and compares accuracy and real storage cost using
the CSR encoder from `repro.sparse.storage`.

Run:  python examples/structured_vs_unstructured.py
"""

import numpy as np

from repro.data import DataLoader, make_dataset
from repro.experiments.tables import format_table
from repro.optim import SGD, CosineAnnealingLR
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN, StructuredFilterPruning, csr_encode
from repro.train import Trainer


def train(method, seed=0, epochs=8):
    train_set = make_dataset("cifar10", train=True, num_samples=256, image_size=16, seed=seed)
    test_set = make_dataset("cifar10", train=False, num_samples=128, image_size=16, seed=seed)
    train_loader = DataLoader(
        train_set, batch_size=32, shuffle=True, rng=np.random.default_rng(seed)
    )
    test_loader = DataLoader(test_set, batch_size=32, shuffle=False)
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(16, 32), timesteps=4,
        rng=np.random.default_rng(seed),
    )
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)
    trainer = Trainer(model, method, optimizer, train_loader,
                      test_loader=test_loader, scheduler=scheduler)
    result = trainer.fit(epochs, verbose=True)
    return model, method, result


def storage_kb(method, structured: bool) -> float:
    """Real storage: CSR for unstructured, dense surviving rows for structured."""
    bits = 0
    for name, parameter in method.masks.parameters.items():
        if structured:
            # Structured: store surviving filters densely, no indices.
            mask = method.masks.masks[name]
            alive_rows = int((mask.reshape(mask.shape[0], -1).max(axis=1) > 0).sum())
            bits += alive_rows * (parameter.size // parameter.shape[0]) * 32
        else:
            bits += csr_encode(parameter.data).storage_bits()
    return bits / 8 / 1024


def main() -> None:
    sparsity = 0.8
    print("=== unstructured NDSNN ===")
    _, unstructured, result_u = train(
        NDSNN(initial_sparsity=0.4, final_sparsity=sparsity,
              total_iterations=64, update_frequency=8,
              rng=np.random.default_rng(1)),
    )
    print()
    print("=== structured filter pruning ===")
    _, structured, result_s = train(
        StructuredFilterPruning(final_sparsity=sparsity,
                                total_iterations=64, update_frequency=8,
                                rng=np.random.default_rng(1)),
    )

    print()
    print(format_table(
        ["scheme", "test_acc", "weight_sparsity", "storage_KB"],
        [
            ("unstructured (NDSNN)", result_u.final_accuracy,
             unstructured.sparsity(), storage_kb(unstructured, structured=False)),
            ("structured (filters)", result_s.final_accuracy,
             structured.sparsity(), storage_kb(structured, structured=True)),
        ],
        title=f"Unstructured vs structured at target sparsity {sparsity:.0%}",
    ))
    print()
    print("Typical outcome: unstructured keeps higher accuracy at equal")
    print("sparsity; structured needs no index storage and maps directly")
    print("onto dense accelerators — the deployment trade-off the paper's")
    print("SIII-D memory analysis quantifies.")


if __name__ == "__main__":
    main()
