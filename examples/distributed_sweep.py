"""Distributed sweep: shard a method grid through the durable job queue.

This walks the queue backend end to end on one machine:

1. build an 8-config grid (4 methods x 2 sparsities),
2. run it through a spool-directory job queue with 2 worker processes,
3. show the spool census and per-job attempts,
4. re-run the same grid with the plain local backend and verify the
   results are bit-identical — the queue's core guarantee.

Run:  python examples/distributed_sweep.py

The multi-host version is the same thing with a shared directory::

    # host A (submits the grid and works it with 2 processes)
    python -m repro sweep --backend queue --spool /shared/spool --jobs 2

    # hosts B, C, ... (join the same pool; exit when the spool drains)
    python -m repro worker --spool /shared/spool

    # anyone: watch progress, reap crashed workers' leases
    python -m repro sweep-status --spool /shared/spool --jobs-detail

Workers checkpoint the full training state every epoch, so a worker
killed mid-job is re-claimed after its lease expires and *resumed* from
the last epoch boundary — with results identical to an uninterrupted
run (see docs/distributed_sweeps.md).
"""

import tempfile

from repro.experiments import (
    JobQueue,
    SweepScheduler,
    run_sweep,
    scaled_config,
    sweep_configs,
)
from repro.experiments.tables import format_table
from repro.utils import Timer


def main() -> None:
    base = scaled_config(
        "cifar10", "convnet", "ndsnn", 0.9,
        epochs=2, train_samples=64, test_samples=32,
        timesteps=2, batch_size=16, update_frequency=2,
    )
    configs = sweep_configs(
        base, ["ndsnn", "set", "rigl", "gmp"], sparsities=[0.8, 0.9]
    )
    print(f"grid: {len(configs)} configs "
          f"({sorted({c.method for c in configs})} x {sorted({c.sparsity for c in configs})})")

    spool = tempfile.mkdtemp(prefix="repro-sweep-example-")
    print(f"spool: {spool}\n")

    # 1. The queue backend: submit + 2 worker processes.  (run_sweep
    # with backend="queue" wraps exactly this.)
    scheduler = SweepScheduler(spool=spool, jobs=2)
    with Timer() as queue_timer:
        queued = scheduler.run(configs)

    # 2. What the spool looks like afterwards.
    queue = JobQueue(spool)
    status = queue.status()
    print(f"spool census: {status.results} results, {status.done} retired "
          f"tokens, {status.failed} failures")
    attempts = [entry.get("attempt", 1) for entry in queue.job_states().values()]
    print(f"attempts per job: {attempts}\n")

    # 3. The same grid, sequentially in-process.
    with Timer() as local_timer:
        local = run_sweep(configs, jobs=1)

    rows = [
        (
            config.method,
            f"{config.sparsity:.2f}",
            f"{queued_outcome.final_sparsity:.3f}",
            queued_outcome.final_accuracy,
            "yes" if (
                queued_outcome.final_accuracy == local_outcome.final_accuracy
                and [s.as_dict() for s in queued_outcome.history]
                == [s.as_dict() for s in local_outcome.history]
            ) else "NO",
        )
        for config, queued_outcome, local_outcome in zip(configs, queued, local)
    ]
    print(
        format_table(
            ["method", "target", "sparsity", "test_acc", "bit-identical"],
            rows,
            title="queue backend (2 workers) vs local backend (1 process)",
        )
    )
    print(f"\nqueue backend : {queue_timer.elapsed:.2f}s (2 workers)")
    print(f"local backend : {local_timer.elapsed:.2f}s (sequential)")


if __name__ == "__main__":
    main()
