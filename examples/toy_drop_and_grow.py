"""Fig. 3 walkthrough: the NDSNN drop-and-grow mechanics on a toy net.

Reproduces the paper's toy example structure — a 3-layer network whose
masks are updated every dT steps — and prints the mask evolution round
by round: per-layer sparsity, the number of weights dropped (neuron
death) and grown (neuron birth), and the Eq. 4/5 schedule values that
produced those counts.

Run:  python examples/toy_drop_and_grow.py
"""

import numpy as np

from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import NDSNN
from repro.tensor import Tensor, cross_entropy


def main() -> None:
    rng = np.random.default_rng(0)
    # A three-weight-matrix model, like the paper's W1/W2/W3 toy figure.
    model = SpikingMLP(in_features=12, num_classes=2, hidden=(8, 6), timesteps=2, rng=rng)

    delta_t = 5
    method = NDSNN(
        initial_sparsity=0.5,
        final_sparsity=0.8,
        total_iterations=30,
        update_frequency=delta_t,
        initial_death_rate=0.5,
        minimum_death_rate=0.05,
        rng=np.random.default_rng(1),
    )
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    method.bind(model, optimizer)

    print("Layer shapes:", {n: p.shape for n, p in method.masks.parameters.items()})
    print(f"Initial sparsity distribution (ERK @ theta_i=0.5):")
    for name, sparsity in method.sparsity_distribution().items():
        print(f"  {name:20s} {sparsity:.3f}")
    print()

    data_rng = np.random.default_rng(2)
    for iteration in range(30):
        x = Tensor(data_rng.standard_normal((4, 12)).astype(np.float32))
        y = data_rng.integers(0, 2, 4)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)

        if iteration % delta_t == 0 and method.history and method.history[-1].iteration == iteration:
            record = method.history[-1]
            print(
                f"t={iteration:2d}  round {len(method.history)}: "
                f"death rate d_t={record.death_rate:.3f}  "
                f"dropped {record.total_dropped:3d}  grown {record.total_grown:3d}  "
                f"-> sparsity {record.sparsity_after:.3f}"
            )

    print()
    print("Final sparsity distribution (ERK @ theta_f=0.8):")
    for name, sparsity in method.sparsity_distribution().items():
        print(f"  {name:20s} {sparsity:.3f}")
    print()
    print("Observations (match Fig. 2b/Fig. 3):")
    drops = [record.total_dropped for record in method.history]
    grows = [record.total_grown for record in method.history]
    print(f"  every round drops >= grows: {all(d >= g for d, g in zip(drops, grows))}")
    trace = [record.sparsity_after for record in method.history]
    print(f"  sparsity never decreases : {all(b >= a for a, b in zip(trace, trace[1:]))}")


if __name__ == "__main__":
    main()
