"""Training efficiency analysis: reproduce the paper's Fig. 5 + §III-D
story on one workload.

Trains Dense, LTH and NDSNN, tracks spike rates and per-epoch density,
then reports:

* the normalized training cost (spike-rate x density, §IV-C),
* the training memory footprint over time (§III-D),
* inference deployment sizes on the platforms the paper cites
  (Loihi 8-bit, HICANN 4-bit, FPGA 4-16 bit).

Run:  python examples/training_cost_analysis.py
"""

from repro.experiments import build_experiment_model, run_method, scaled_config
from repro.experiments.tables import ascii_plot, format_table
from repro.sparse import sparsifiable_parameters
from repro.train import (
    PLATFORM_WEIGHT_BITS,
    average_training_footprint_bits,
    inference_footprint_bits,
    relative_training_cost,
)


def main() -> None:
    sparsity = 0.95
    base = dict(
        epochs=6, train_samples=192, test_samples=96,
        timesteps=2, image_size=16, update_frequency=8, lth_rounds=2,
    )

    outcomes = {}
    for method in ("dense", "lth", "ndsnn"):
        print(f"training {method} ...")
        outcomes[method] = run_method(
            scaled_config("cifar10", "vgg16", method, sparsity, **base)
        )

    # --- Fig. 5: normalized training cost --------------------------------
    dense_rates = outcomes["dense"].spike_rates
    rows = []
    for method, outcome in outcomes.items():
        cost = relative_training_cost(
            outcome.spike_rates, outcome.densities, dense_rates, method=method
        )
        rows.append((method, cost.percent_of_dense, len(outcome.history)))
    print()
    print(format_table(
        ["method", "training_cost_%dense", "epochs_paid"],
        rows,
        title=f"Fig. 5 style: normalized training cost @ {sparsity:.0%} final sparsity",
    ))

    # --- Fig. 1: sparsity-over-training curves ---------------------------
    print()
    print(ascii_plot(
        {method: outcome.sparsities for method, outcome in outcomes.items()},
        title="Training sparsity per epoch (LTH concatenates its rounds)",
    ))

    # --- §III-D: memory footprint over the run ---------------------------
    config = scaled_config("cifar10", "vgg16", "dense", sparsity, **base)
    model = build_experiment_model(config)
    total_weights = sum(p.size for _, p in sparsifiable_parameters(model))
    print()
    memory_rows = []
    for method, outcome in outcomes.items():
        bits = average_training_footprint_bits(
            total_weights, outcome.sparsities, timesteps=config.timesteps
        )
        memory_rows.append((method, bits / 8 / 1024))
    print(format_table(
        ["method", "avg_train_footprint_KB"],
        memory_rows,
        title=f"SIII-D average training memory (N={total_weights:,} weights)",
    ))

    # --- Deployment sizes -------------------------------------------------
    print()
    deploy_rows = [
        (platform, inference_footprint_bits(total_weights, sparsity, platform=platform) / 8 / 1024)
        for platform in sorted(PLATFORM_WEIGHT_BITS)
    ]
    print(format_table(
        ["platform", "deploy_KB"],
        deploy_rows,
        title=f"Inference footprint at {sparsity:.0%} sparsity by platform",
    ))


if __name__ == "__main__":
    main()
