"""Watch the sparse topology evolve during NDSNN training.

Uses `repro.sparse.analysis` (networkx-backed) to track, round by
round, what the drop-and-grow process does to the connectivity graph:
degree statistics, dead units, input-to-output reachability, and the
per-round topology churn.

Run:  python examples/topology_evolution.py
"""

import numpy as np

from repro.experiments.tables import format_table
from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import (
    NDSNN,
    analyze_masks,
    input_output_connectivity,
    topology_change,
)
from repro.tensor import Tensor, cross_entropy


def main() -> None:
    rng = np.random.default_rng(0)
    model = SpikingMLP(in_features=32, num_classes=5, hidden=(48, 32),
                       timesteps=2, rng=rng)
    delta_t = 10
    method = NDSNN(initial_sparsity=0.5, final_sparsity=0.92,
                   total_iterations=120, update_frequency=delta_t,
                   rng=np.random.default_rng(1))
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    method.bind(model, optimizer)

    data_rng = np.random.default_rng(2)
    rows = []
    previous_masks = method.masks.copy_masks()
    for iteration in range(120):
        x = Tensor(data_rng.standard_normal((8, 32)).astype(np.float32))
        y = data_rng.integers(0, 5, 8)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)

        if method.history and method.history[-1].iteration == iteration:
            current = method.masks.copy_masks()
            churn = topology_change(previous_masks, current)
            masks_list = [current[name] for name in current]
            stats = analyze_masks(current)
            rows.append((
                iteration,
                method.masks.sparsity(),
                float(np.mean(list(churn.values()))),
                input_output_connectivity(masks_list),
                sum(s.dead_outputs for s in stats.values()),
            ))
            previous_masks = current

    print(format_table(
        ["iteration", "sparsity", "mean_churn", "in->out connectivity", "dead_units"],
        rows,
        title="NDSNN topology evolution (3-layer spiking MLP, theta 0.50 -> 0.92)",
    ))
    print()
    print("Expected pattern: churn is high early (large cosine death rate)")
    print("and decays; connectivity stays ~1.0 even at 92% sparsity — the")
    print("gradient-guided growth keeps every output reachable.")


if __name__ == "__main__":
    main()
