"""Edge-deployment study: serve a sparse checkpoint through the real
inference stack.

This walks the deployment path the paper motivates (SNNs on edge /
neuromorphic devices), using the same code `repro serve` runs:

1. train a spiking convnet sparse with NDSNN and checkpoint it,
2. load the checkpoint through the model registry into an
   **inference-frozen** session — masks applied, CSR values gathered
   into read-only buffers, every mutation path raising,
3. verify frozen-CSR serving predicts bit-identically to the masked
   dense model, and report the per-layer dispatch and §III-D storage
   accounting,
4. drive a request burst through the supervised batched server and
   report latency percentiles,
5. show the freeze guard catching an out-of-band weight update (an
   OTA update must thaw, patch, re-freeze).

Run:  python examples/edge_deployment.py [--fast]
"""

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.data import DataLoader, make_dataset
from repro.experiments.tables import format_table
from repro.optim import SGD, CosineAnnealingLR
from repro.serve import InferenceServer, InferenceSession, ModelRegistry
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN, SparsityManager
from repro.train import Trainer
from repro.train.checkpoint import load_inference_state, save_checkpoint


def train_checkpoint(path, seed, epochs, train_samples, test_samples):
    train_set = make_dataset("cifar10", train=True, num_samples=train_samples,
                             image_size=16, seed=seed)
    test_set = make_dataset("cifar10", train=False, num_samples=test_samples,
                            image_size=16, seed=seed)
    train_loader = DataLoader(train_set, batch_size=32, shuffle=True,
                              rng=np.random.default_rng(seed))
    test_loader = DataLoader(test_set, batch_size=32, shuffle=False)

    model = SpikingConvNet(num_classes=10, image_size=16, channels=(16, 32),
                           timesteps=4, rng=np.random.default_rng(seed))
    method = NDSNN(initial_sparsity=0.4, final_sparsity=0.9,
                   total_iterations=len(train_loader) * epochs,
                   update_frequency=8, rng=np.random.default_rng(seed + 1))
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    trainer = Trainer(model, method, optimizer, train_loader,
                      test_loader=test_loader,
                      scheduler=CosineAnnealingLR(optimizer, t_max=epochs))
    print("training sparse model ...")
    trainer.fit(epochs, verbose=True)
    save_checkpoint(path, model, method)
    return test_loader


def frozen_session(path, execution, seed):
    """What ``ModelRegistry.load_checkpoint`` does, spelled out."""
    model = SpikingConvNet(num_classes=10, image_size=16, channels=(16, 32),
                           timesteps=4, rng=np.random.default_rng(seed))
    state = load_inference_state(path, model)
    manager = SparsityManager(model)
    manager.load_masks(state.masks)
    manager.set_execution(execution)
    return model, manager


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="tiny workload (the smoke-test profile)")
    args = parser.parse_args(argv)
    seed = 0
    epochs, train_samples, test_samples = (1, 64, 32) if args.fast else (8, 256, 128)

    checkpoint = Path(tempfile.mkdtemp(prefix="repro-edge-")) / "ckpt"
    test_loader = train_checkpoint(
        checkpoint, seed, epochs, train_samples, test_samples
    )

    # --- registry -> frozen serving sessions ---------------------------
    registry = ModelRegistry()
    registry.register("edge-csr",
                      lambda: frozen_session(checkpoint, "csr", seed))
    registry.register("edge-dense",
                      lambda: frozen_session(checkpoint, "dense", seed))
    csr = registry.session("edge-csr", max_batch=8)
    dense = registry.session("edge-dense", max_batch=8)
    assert csr.manager.frozen and dense.manager.frozen

    images = np.concatenate([batch.data for batch, _ in test_loader])
    labels = np.concatenate([y for _, y in test_loader])
    csr_pred = csr.predict(images)
    dense_pred = dense.predict(images)
    assert np.array_equal(csr_pred, dense_pred), "frozen CSR must be lossless"
    accuracy = float((csr_pred.argmax(axis=1) == labels).mean())

    print()
    print(format_table(
        ["layer", "density", "route", "csr_KB", "dense_KB"],
        [
            (entry["layer"], entry["density"], entry["route"],
             entry["csr_bits"] / 8 / 1024, entry["dense_bits"] / 8 / 1024)
            for entry in csr.storage_report()["layers"]
        ],
        title=f"Frozen serving package (test accuracy {accuracy:.3f})",
    ))

    # --- batched serving under concurrent clients ----------------------
    burst = images[: 24 if args.fast else 96]
    latencies = []
    lock = threading.Lock()

    def client(samples):
        for sample in samples:
            start = time.perf_counter()
            server.predict(sample, timeout=60.0)
            with lock:
                latencies.append(time.perf_counter() - start)

    with InferenceServer(lambda: registry.session("edge-csr"),
                         workers=2, max_batch=8) as server:
        threads = [threading.Thread(target=client, args=(chunk,))
                   for chunk in np.array_split(burst, 4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
    seconds = np.asarray(latencies)
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("requests", len(seconds)),
            ("p50 latency (ms)", float(np.percentile(seconds, 50)) * 1e3),
            ("p99 latency (ms)", float(np.percentile(seconds, 99)) * 1e3),
            ("batches", stats["batches"]),
            ("largest batch", stats["largest_batch"]),
            ("worker restarts", stats["restarts"]),
        ],
        title="Batched server burst (2 workers, 4 clients)",
    ))

    # --- the freeze guard ----------------------------------------------
    snapshot = csr.model.state_dict()
    try:
        csr.model.load_state_dict(snapshot)
        raise AssertionError("frozen session accepted a weight update")
    except RuntimeError as error:
        print()
        print("OTA update against the live model correctly refused:")
        print(f"  {error}")
    print("thaw -> patch -> freeze is the supported update path.")
    csr.manager.thaw()
    csr.model.load_state_dict(snapshot)
    csr.manager.freeze()
    assert np.array_equal(csr.predict(images[:8]), csr_pred[:8])


if __name__ == "__main__":
    main()
