"""Edge-deployment study: compress a sparse model to CSR and stress it
with hardware faults.

This walks the deployment path the paper motivates (SNNs on edge /
neuromorphic devices):

1. train a spiking convnet sparse with NDSNN,
2. pack the surviving weights into CSR (`repro.sparse.inference`) and
   verify the compressed model predicts identically,
3. compare storage against the dense model and across the platform
   precisions cited in §III-D (Loihi 8-bit, HICANN 4-bit),
4. inject device faults — analog weight noise, stuck-at-zero cells,
   SRAM bit flips, dead neurons — and measure the accuracy cost.

Run:  python examples/edge_deployment.py
"""

import numpy as np

from repro.data import DataLoader, make_dataset
from repro.experiments.tables import format_table
from repro.optim import SGD, CosineAnnealingLR
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN, compress_model, compression_report
from repro.train import (
    Trainer,
    inject_bit_flips,
    inject_dead_neurons,
    inject_weight_dropout,
    inject_weight_noise,
    restore,
)
from repro.train.metrics import evaluate


def main() -> None:
    seed = 0
    epochs = 8
    train_set = make_dataset("cifar10", train=True, num_samples=256, image_size=16, seed=seed)
    test_set = make_dataset("cifar10", train=False, num_samples=128, image_size=16, seed=seed)
    train_loader = DataLoader(train_set, batch_size=32, shuffle=True,
                              rng=np.random.default_rng(seed))
    test_loader = DataLoader(test_set, batch_size=32, shuffle=False)

    model = SpikingConvNet(num_classes=10, image_size=16, channels=(16, 32),
                           timesteps=4, rng=np.random.default_rng(seed))
    method = NDSNN(initial_sparsity=0.4, final_sparsity=0.9,
                   total_iterations=len(train_loader) * epochs, update_frequency=8,
                   rng=np.random.default_rng(seed + 1))
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    trainer = Trainer(model, method, optimizer, train_loader, test_loader=test_loader,
                      scheduler=CosineAnnealingLR(optimizer, t_max=epochs))
    print("training sparse model ...")
    result = trainer.fit(epochs, verbose=True)
    clean_accuracy = result.final_accuracy

    # --- fault tolerance (before compression; faults mutate weights) ----
    faults = [
        ("analog noise sigma=0.05", inject_weight_noise, {"sigma": 0.05}),
        ("analog noise sigma=0.20", inject_weight_noise, {"sigma": 0.20}),
        ("stuck-at-zero 5%", inject_weight_dropout, {"fraction": 0.05}),
        ("stuck-at-zero 20%", inject_weight_dropout, {"fraction": 0.20}),
        ("bit flip (mantissa LSB)", inject_bit_flips, {"flips_per_layer": 4, "bit": 0}),
        ("bit flip (exponent)", inject_bit_flips, {"flips_per_layer": 4, "bit": 23}),
        ("dead neurons 10%", inject_dead_neurons, {"fraction": 0.10}),
    ]
    rows = [("clean", clean_accuracy, 0.0)]
    for label, injector, kwargs in faults:
        snapshot = injector(model, rng=np.random.default_rng(42), **kwargs)
        faulty = evaluate(model, test_loader)
        restore(model, snapshot)
        rows.append((label, faulty, faulty - clean_accuracy))
    print()
    print(format_table(
        ["fault", "test_acc", "delta"],
        rows,
        title=f"Fault tolerance at {method.sparsity():.0%} sparsity",
    ))

    # --- CSR compression ---------------------------------------------------
    compress_model(model)
    compressed_accuracy = evaluate(model, test_loader)
    report = compression_report(model)
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("accuracy after CSR compression", compressed_accuracy),
            ("compressed layers", report["num_compressed_layers"]),
            ("non-zero weights", f"{report['nonzeros']:,}"),
            ("dense weight slots", f"{report['dense_weights']:,}"),
            ("density", report["density"]),
            ("CSR storage (KB, fp32+32b idx)", report["storage_bits"] / 8 / 1024),
            ("dense storage (KB, fp32)", report["dense_weights"] * 32 / 8 / 1024),
        ],
        title="CSR deployment package",
    ))
    assert abs(compressed_accuracy - clean_accuracy) < 1e-9, "CSR must be lossless"
    print()
    print("CSR inference is bit-identical to the masked dense model; the")
    print("storage ratio matches the paper's SIII-D accounting.")


if __name__ == "__main__":
    main()
