"""Fig. 4 style study: how the timestep count T affects NDSNN vs LTH.

Smaller T means proportionally cheaper BPTT training; the paper shows
NDSNN keeps its advantage over LTH even at T=2.  This example sweeps
T in {1, 2, 4} at one sparsity and prints accuracy and wall-clock.

Run:  python examples/timestep_study.py
"""

import time

from repro.experiments import run_method, scaled_config
from repro.experiments.tables import format_table


def main() -> None:
    sparsity = 0.95
    rows = []
    for timesteps in (1, 2, 4):
        for method in ("ndsnn", "lth"):
            config = scaled_config(
                "cifar10", "vgg16", method, sparsity,
                epochs=6, train_samples=192, test_samples=96,
                timesteps=timesteps, image_size=16, update_frequency=8, lth_rounds=2,
            )
            start = time.perf_counter()
            outcome = run_method(config)
            elapsed = time.perf_counter() - start
            rows.append((f"T={timesteps}", method, outcome.final_accuracy, elapsed))
            print(f"T={timesteps} {method:6s} acc={outcome.final_accuracy:.3f} ({elapsed:.1f}s)")

    print()
    print(format_table(
        ["timesteps", "method", "test_acc", "wall_clock_s"],
        rows,
        title=f"Timestep study @ {sparsity:.0%} sparsity (VGG-16 / synthetic CIFAR-10)",
    ))
    print()
    print("Smaller T trains faster; the paper's Fig. 4 point is that NDSNN")
    print("still outperforms LTH in this cheap-training regime.")


if __name__ == "__main__":
    main()
