"""Quickstart: train a sparse spiking network with NDSNN in ~30 seconds.

This walks the core API end to end:

1. build a synthetic CIFAR-10 stand-in dataset,
2. build a spiking convnet (LIF neurons, surrogate-gradient BPTT),
3. attach the NDSNN drop-and-grow sparse trainer (paper Algorithm 1),
4. switch the masked layers to ``auto`` execution, so each layer takes
   the CSR fast path once its measured density drops below 25%,
5. train, and watch sparsity ramp from 50% to 90% while accuracy climbs.

Run:  python examples/quickstart.py

The CLI equivalent of steps 1-4 is::

    python -m repro run --method ndsnn --sparsity 0.9 --execution auto
"""

import numpy as np

from repro.data import DataLoader, make_dataset
from repro.optim import SGD, CosineAnnealingLR
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN
from repro.train import Trainer


def main() -> None:
    seed = 0
    epochs = 8
    batch_size = 32

    # 1. Data: a deterministic synthetic stand-in for CIFAR-10
    # (3x16x16, 10 classes) — see DESIGN.md for the substitution notes.
    train_set = make_dataset("cifar10", train=True, num_samples=256, image_size=16, seed=seed)
    test_set = make_dataset("cifar10", train=False, num_samples=128, image_size=16, seed=seed)
    train_loader = DataLoader(
        train_set, batch_size=batch_size, shuffle=True, rng=np.random.default_rng(seed)
    )
    test_loader = DataLoader(test_set, batch_size=batch_size, shuffle=False)

    # 2. Model: a small spiking convnet, T=4 timesteps, LIF neurons with
    # the paper's fast-inverse surrogate gradient (Eq. 3).
    model = SpikingConvNet(
        num_classes=10,
        image_size=16,
        channels=(16, 32),
        timesteps=4,
        rng=np.random.default_rng(seed),
    )
    print(f"model parameters: {model.count_parameters():,}")

    # 3. NDSNN: ramp sparsity 50% -> 90% with cosine-annealed drop rate,
    # growing new connections where gradients are largest.
    iterations = len(train_loader) * epochs
    method = NDSNN(
        initial_sparsity=0.5,
        final_sparsity=0.9,
        total_iterations=iterations,
        update_frequency=8,
        rng=np.random.default_rng(seed + 1),
    )

    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    # 4. Execution mode: constructing the Trainer binds the method to
    # the model, after which ``auto`` routes any layer below 25%
    # measured density through the cached-CSR kernels (identical
    # results to dense execution, just faster at high sparsity; the
    # same knob is ``--execution {dense,auto,csr}`` on the CLI).
    trainer = Trainer(
        model, method, optimizer, train_loader, test_loader=test_loader, scheduler=scheduler
    )
    method.set_execution("auto")

    # 5. Train.
    result = trainer.fit(epochs, verbose=True)

    print()
    print(f"final test accuracy : {result.final_accuracy:.3f}")
    print(f"final sparsity      : {method.sparsity():.3f}")
    print(f"drop-and-grow rounds: {len(method.history)}")
    total_dropped = sum(record.total_dropped for record in method.history)
    total_grown = sum(record.total_grown for record in method.history)
    print(f"connections dropped : {total_dropped:,}  grown: {total_grown:,}")
    print("per-layer sparsity  :")
    for name, sparsity in method.sparsity_distribution().items():
        print(f"  {name:30s} {sparsity:.3f}")


if __name__ == "__main__":
    main()
