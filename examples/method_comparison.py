"""Compare every sparse-training method on one workload (a mini Table I).

Trains Dense, LTH-SNN, SET-SNN, RigL-SNN, ADMM and NDSNN on the same
synthetic CIFAR-10 stand-in with a spiking VGG-16 (width-scaled for
CPU), then prints an accuracy / sparsity / training-cost summary.

Run:  python examples/method_comparison.py [--sparsity 0.95]
"""

import argparse

from repro.experiments import run_method, scaled_config
from repro.experiments.tables import format_table
from repro.train import relative_training_cost

METHODS = ("dense", "lth", "set", "rigl", "admm", "ndsnn")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sparsity", type=float, default=0.95)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--model", default="vgg16", choices=("vgg16", "resnet19", "convnet"))
    args = parser.parse_args()

    outcomes = {}
    for method in METHODS:
        config = scaled_config(
            "cifar10", args.model, method, args.sparsity,
            epochs=args.epochs, train_samples=256, test_samples=128,
            timesteps=2, image_size=16, update_frequency=8, lth_rounds=2,
        )
        print(f"training {method} ...")
        outcomes[method] = run_method(config)

    dense_rates = outcomes["dense"].spike_rates
    rows = []
    for method in METHODS:
        outcome = outcomes[method]
        cost = relative_training_cost(
            outcome.spike_rates, outcome.densities, dense_rates, method=method
        )
        rows.append((
            method,
            outcome.final_accuracy,
            outcome.final_sparsity,
            len(outcome.history),
            cost.percent_of_dense,
        ))

    print()
    print(
        format_table(
            ["method", "test_acc", "final_sparsity", "epochs_trained", "train_cost_%dense"],
            rows,
            title=f"Method comparison: {args.model} on synthetic CIFAR-10 "
            f"@ {args.sparsity:.0%} sparsity",
        )
    )
    print()
    print("Notes: LTH trains multiple rounds (epochs_trained shows the total),")
    print("which is exactly the inefficiency NDSNN is designed to avoid.")


if __name__ == "__main__":
    main()
