"""SNIP — single-shot pruning at initialization (extension baseline).

Lee et al. (ICLR 2019): score each weight by the connection
sensitivity ``|g * w|`` computed on one (or a few) mini-batches at
initialization, keep the global top-k, and train under that fixed mask.
A from-scratch static-sparsity point of comparison for NDSNN's dynamic
topology: same train-time sparsity, no topology adaptation.

A thin strategy over the sparsity engine: score accumulation lives
here, the global top-k threshold and mask plumbing come from
:class:`~repro.sparse.engine.SparsityManager`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .engine import SparseTrainingMethod, SparsityManager


class SNIPSNN(SparseTrainingMethod):
    """Sensitivity-based one-shot pruning at init, then static training.

    The trainer's first ``calibration_batches`` backward passes are used
    to accumulate sensitivity scores; the mask freezes afterwards.
    """

    name = "snip"

    def __init__(
        self,
        sparsity: float = 0.9,
        calibration_batches: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < sparsity < 1.0:
            raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
        if calibration_batches < 1:
            raise ValueError("calibration_batches must be >= 1")
        self.target_sparsity = float(sparsity)
        self.calibration_batches = int(calibration_batches)
        self._rng = rng
        self._scores = None
        self._calibrated = False
        self._seen = 0

    def setup(self) -> None:
        self.masks = SparsityManager(self.model, rng=self._rng)
        self._scores = {
            name: np.zeros(parameter.shape, dtype=np.float64)
            for name, parameter in self.masks.parameters.items()
        }
        self._calibrated = False
        self._seen = 0

    def after_backward(self, iteration: int) -> None:
        if not self._calibrated:
            for name, parameter in self.masks.parameters.items():
                if parameter.grad is None:
                    continue
                self._scores[name] += np.abs(parameter.grad * parameter.data)
            self._seen += 1
            if self._seen >= self.calibration_batches:
                self._prune_by_sensitivity()
                self._calibrated = True
        self.masks.apply_to_gradients()

    def _prune_by_sensitivity(self) -> None:
        """Keep the global top-(1 - sparsity) fraction by |g*w|."""
        threshold = self.masks.global_magnitude_threshold(
            self.target_sparsity, scores=self._scores
        )
        for name, state in self.masks.states.items():
            mask = (self._scores[name] >= threshold).astype(np.float32)
            if mask.sum() == 0:
                # Guarantee at least one connection per layer.
                best = np.unravel_index(self._scores[name].argmax(), mask.shape)
                mask[best] = 1.0
            state.set_mask(mask)
        self.masks.apply_masks()
        self._record_mask_update()

    def sparsity(self) -> float:
        if not self._calibrated:
            return 0.0
        return self.masks.sparsity()

    def state_arrays(self):
        # Scores only matter until the one-shot prune; afterwards the
        # mask (checkpointed by the engine) is the whole story.
        if self._calibrated:
            return {}
        return {f"score.{name}": score for name, score in self._scores.items()}

    def load_state_arrays(self, arrays) -> None:
        for key, value in arrays.items():
            if key.startswith("score."):
                self._scores[key[len("score."):]] = np.array(value, copy=True)

    def state_meta(self):
        meta = super().state_meta()
        meta["calibrated"] = self._calibrated
        meta["seen"] = self._seen
        return meta

    def load_state_meta(self, meta) -> None:
        super().load_state_meta(meta)
        self._calibrated = bool(meta.get("calibrated", self._calibrated))
        self._seen = int(meta.get("seen", self._seen))

    def __repr__(self) -> str:
        return f"SNIPSNN(sparsity={self.target_sparsity})"
