"""Mask bookkeeping (compatibility shim over the sparsity engine).

Historically every sparse-training method owned a ``MaskManager``; that
role is now played by :class:`repro.sparse.engine.SparsityManager`,
which adds per-layer :class:`~repro.sparse.engine.MaskedParameter`
state, CSR pattern caching and execution dispatch.  ``MaskManager``
remains as a name for the same object so existing call sites and tests
keep working.
"""

from __future__ import annotations

from .engine import MaskedParameter, SparsityManager, sparsifiable_parameters


class MaskManager(SparsityManager):
    """Alias of :class:`~repro.sparse.engine.SparsityManager`."""


__all__ = ["MaskManager", "MaskedParameter", "SparsityManager", "sparsifiable_parameters"]
