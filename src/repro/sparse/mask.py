"""Sparse mask bookkeeping shared by every sparse-training method.

A :class:`MaskManager` owns one binary mask per *sparsifiable*
parameter (convolution and linear weights; biases and normalization
parameters stay dense, as in the paper's substrate).  It can

* initialise masks at a per-layer density distribution (random
  topology, as all from-scratch sparse trainers do),
* enforce masks on weights and gradients,
* report exact per-layer and global sparsity,

and exposes the raw mask arrays so methods can drop/grow connections.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..nn.module import Module, Parameter


def sparsifiable_parameters(model: Module, exclude: Iterable[str] = ()) -> List[Tuple[str, Parameter]]:
    """Named weight tensors that take part in sparsification.

    Selects parameters with ndim >= 2 (conv filters and linear weights);
    1-D parameters (biases, batch-norm scales) are left dense.
    """
    excluded = set(exclude)
    selected = []
    for name, parameter in model.named_parameters():
        if parameter.ndim >= 2 and name not in excluded:
            selected.append((name, parameter))
    return selected


class MaskManager:
    """Owns the binary masks of a sparse model.

    Parameters
    ----------
    model:
        The network whose weight tensors are masked.
    exclude:
        Parameter names exempt from sparsification.
    rng:
        Random generator used for topology initialisation and random
        growth (SET).
    """

    def __init__(
        self,
        model: Module,
        exclude: Iterable[str] = (),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.parameters: Dict[str, Parameter] = dict(sparsifiable_parameters(model, exclude))
        if not self.parameters:
            raise ValueError("model has no sparsifiable parameters")
        self.masks: Dict[str, np.ndarray] = {
            name: np.ones(p.shape, dtype=np.float32) for name, p in self.parameters.items()
        }
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Shapes / counts
    # ------------------------------------------------------------------
    @property
    def shapes(self) -> Dict[str, Tuple[int, ...]]:
        return {name: p.shape for name, p in self.parameters.items()}

    def layer_size(self, name: str) -> int:
        return self.parameters[name].size

    @property
    def total_weights(self) -> int:
        return sum(p.size for p in self.parameters.values())

    def nonzero_count(self, name: str) -> int:
        return int(self.masks[name].sum())

    @property
    def total_nonzero(self) -> int:
        return sum(self.nonzero_count(name) for name in self.masks)

    # ------------------------------------------------------------------
    # Sparsity reporting
    # ------------------------------------------------------------------
    def layer_sparsity(self, name: str) -> float:
        return 1.0 - self.nonzero_count(name) / self.layer_size(name)

    def sparsity(self) -> float:
        """Global sparsity over all sparsifiable weights."""
        return 1.0 - self.total_nonzero / self.total_weights

    def density(self) -> float:
        return 1.0 - self.sparsity()

    def sparsity_distribution(self) -> Dict[str, float]:
        return {name: self.layer_sparsity(name) for name in self.masks}

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def init_random(self, densities: Dict[str, float]) -> None:
        """Random topology at the requested per-layer densities.

        The number of active weights per layer is the rounded density
        times the layer size, clamped to at least one active weight.
        """
        for name, parameter in self.parameters.items():
            density = densities[name]
            size = parameter.size
            keep = int(round(density * size))
            keep = max(1, min(size, keep))
            mask = np.zeros(size, dtype=np.float32)
            active = self.rng.choice(size, size=keep, replace=False)
            mask[active] = 1.0
            self.masks[name] = mask.reshape(parameter.shape)
        self.apply_masks()

    def init_from_magnitude(self, densities: Dict[str, float]) -> None:
        """Keep the largest-magnitude weights per layer (pruning init)."""
        for name, parameter in self.parameters.items():
            density = densities[name]
            size = parameter.size
            keep = max(1, min(size, int(round(density * size))))
            flat = np.abs(parameter.data.reshape(-1))
            threshold_index = size - keep
            order = np.argpartition(flat, threshold_index)[threshold_index:]
            mask = np.zeros(size, dtype=np.float32)
            mask[order] = 1.0
            self.masks[name] = mask.reshape(parameter.shape)
        self.apply_masks()

    def set_mask(self, name: str, mask: np.ndarray) -> None:
        """Replace one layer's mask (shape-checked)."""
        if mask.shape != self.parameters[name].shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match parameter {name!r} "
                f"shape {self.parameters[name].shape}"
            )
        self.masks[name] = mask.astype(np.float32)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def apply_masks(self) -> None:
        """Zero out every masked weight (idempotent)."""
        for name, parameter in self.parameters.items():
            parameter.data *= self.masks[name]

    def apply_to_gradients(self) -> None:
        """Zero gradients of inactive weights (only active weights train)."""
        for name, parameter in self.parameters.items():
            if parameter.grad is not None:
                parameter.grad *= self.masks[name]

    def copy_masks(self) -> Dict[str, np.ndarray]:
        return {name: mask.copy() for name, mask in self.masks.items()}

    def load_masks(self, masks: Dict[str, np.ndarray]) -> None:
        for name, mask in masks.items():
            self.set_mask(name, mask)
        self.apply_masks()

    # ------------------------------------------------------------------
    # Topology edits (used by drop-and-grow methods)
    # ------------------------------------------------------------------
    def drop_by_magnitude(self, name: str, count: int) -> np.ndarray:
        """Deactivate the ``count`` active weights closest to zero.

        Returns the flat indices that were dropped.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        parameter = self.parameters[name]
        mask_flat = self.masks[name].reshape(-1)
        weight_flat = parameter.data.reshape(-1)
        active = np.flatnonzero(mask_flat)
        count = min(count, active.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        magnitudes = np.abs(weight_flat[active])
        chosen = active[np.argpartition(magnitudes, count - 1)[:count]]
        mask_flat[chosen] = 0.0
        weight_flat[chosen] = 0.0
        return chosen

    def grow_by_score(self, name: str, count: int, scores: np.ndarray) -> np.ndarray:
        """Activate the ``count`` inactive positions with the highest score.

        ``scores`` is a dense array over the full weight tensor (e.g.
        gradient magnitude for RigL/NDSNN).  New weights start at zero,
        following the RigL convention.  Returns the grown flat indices.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        parameter = self.parameters[name]
        mask_flat = self.masks[name].reshape(-1)
        weight_flat = parameter.data.reshape(-1)
        inactive = np.flatnonzero(mask_flat == 0.0)
        count = min(count, inactive.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        score_flat = np.abs(scores.reshape(-1)[inactive])
        chosen = inactive[np.argpartition(score_flat, score_flat.size - count)[-count:]]
        mask_flat[chosen] = 1.0
        weight_flat[chosen] = 0.0
        return chosen

    def grow_random(self, name: str, count: int) -> np.ndarray:
        """Activate ``count`` random inactive positions (SET growth)."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        mask_flat = self.masks[name].reshape(-1)
        weight_flat = self.parameters[name].data.reshape(-1)
        inactive = np.flatnonzero(mask_flat == 0.0)
        count = min(count, inactive.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        chosen = self.rng.choice(inactive, size=count, replace=False)
        mask_flat[chosen] = 1.0
        weight_flat[chosen] = 0.0
        return chosen
