"""Sparse-training core: NDSNN (the paper's contribution) and baselines."""

from .admm import ADMMPruner
from .analysis import (
    DegreeStats,
    analyze_masks,
    degree_statistics,
    input_output_connectivity,
    layer_chain_graph,
    mask_bipartite_graph,
    topology_change,
)
from .base import DenseMethod, SparseTrainingMethod, StaticMaskMethod
from .engine import (
    DEFAULT_CSR_THRESHOLD,
    EXECUTION_MODES,
    DropGrowMethod,
    MaskedParameter,
    SparsityManager,
)
from .dispatch import (
    CALIBRATION_ENV,
    DENSITY_GRID,
    CalibrationTable,
    clear_process_cache,
    get_cutoff,
    measure_crossover,
)
from .gmp import GMPSNN
from .snip import SNIPSNN
from .structured import (
    StructuredFilterPruning,
    compact_model,
    dead_output_rows,
    filter_norms,
    sever_dead_channels,
)
from .storage import (
    HAVE_SCIPY,
    CSRMatrix,
    CSRPattern,
    csr_decode,
    csr_encode,
    model_csr_storage_bits,
)
from .inference import (
    CSRConv2d,
    CSRLinear,
    compress_model,
    compressed_storage_bits,
    compression_report,
    serving_storage_report,
)
from .packaging import (
    PRECISIONS,
    PackedManager,
    PackedModel,
    PackedState,
    build_packed_runtime,
    delta_decode_indices,
    delta_encode_indices,
    dequantize_rows,
    packed_layer_bytes,
    quantize_rows_int8,
    varint_decode,
    varint_encode,
    write_package,
)
from .erk import (
    build_distribution,
    erk_densities,
    erk_sparsities,
    global_density,
    uniform_densities,
)
from .lth import LTHSNN
from .mask import MaskManager, sparsifiable_parameters
from .ndsnn import NDSNN, UpdateRecord
from .rigl_snn import RigLSNN
from .schedule import (
    ConstantDeathSchedule,
    CosineDeathSchedule,
    LayerwiseSparsityRamp,
    SparsityRamp,
)
from .set_snn import SETSNN

__all__ = [
    "DegreeStats",
    "degree_statistics",
    "analyze_masks",
    "mask_bipartite_graph",
    "layer_chain_graph",
    "input_output_connectivity",
    "topology_change",
    "SparseTrainingMethod",
    "DenseMethod",
    "StaticMaskMethod",
    "DropGrowMethod",
    "MaskedParameter",
    "SparsityManager",
    "EXECUTION_MODES",
    "DEFAULT_CSR_THRESHOLD",
    "CALIBRATION_ENV",
    "DENSITY_GRID",
    "CalibrationTable",
    "clear_process_cache",
    "get_cutoff",
    "measure_crossover",
    "NDSNN",
    "UpdateRecord",
    "SETSNN",
    "RigLSNN",
    "LTHSNN",
    "ADMMPruner",
    "GMPSNN",
    "SNIPSNN",
    "StructuredFilterPruning",
    "filter_norms",
    "sever_dead_channels",
    "compact_model",
    "dead_output_rows",
    "CSRMatrix",
    "CSRPattern",
    "HAVE_SCIPY",
    "csr_encode",
    "csr_decode",
    "model_csr_storage_bits",
    "CSRLinear",
    "CSRConv2d",
    "compress_model",
    "compressed_storage_bits",
    "compression_report",
    "serving_storage_report",
    "PRECISIONS",
    "PackedManager",
    "PackedModel",
    "PackedState",
    "build_packed_runtime",
    "delta_encode_indices",
    "delta_decode_indices",
    "quantize_rows_int8",
    "dequantize_rows",
    "packed_layer_bytes",
    "varint_encode",
    "varint_decode",
    "write_package",
    "MaskManager",
    "sparsifiable_parameters",
    "erk_densities",
    "erk_sparsities",
    "uniform_densities",
    "global_density",
    "build_distribution",
    "SparsityRamp",
    "LayerwiseSparsityRamp",
    "CosineDeathSchedule",
    "ConstantDeathSchedule",
]
