"""Packed serving artifacts: the single-file ``.reprom`` format.

The paper's §III-D storage model counts CSR bits; this module makes
those bytes real.  A ``.reprom`` file stores every sparse layer as

* **delta + varint encoded column indices** — within a row the sorted
  column indices are gap-coded (the first index of each row is stored
  absolute), then LEB128 varint packed, so a 90%-sparse matrix pays
  about one byte per non-zero instead of four;
* **quantized values** — ``int8`` (per-row absmax calibration, one
  float32 scale per row, max abs error ≤ scale/2), ``f16``, or raw
  ``f32``;
* **f16 dense entries** — biases, batch-norm scales and running stats
  are stored (and served) as float16; integer buffers keep their dtype;

plus the model spec, execution mode and dispatch-calibration table, all
in one aligned file:

.. code-block:: text

    offset 0   magic  b"REPROM\\x00\\x01"                (8 bytes)
    offset 8   metadata length N, little-endian uint64  (8 bytes)
    offset 16  metadata JSON (model spec, manifest)     (N bytes)
    ...        zero padding to a 64-byte boundary
    data       tensor blobs, each 64-byte aligned; the manifest in the
               metadata records (offset, nbytes, dtype, shape) per blob

Because every tensor sits at an aligned offset,
:class:`PackedModel` opens the file with ``np.memmap`` and serves
**zero-copy**: an ``f32`` artifact's CSR value buffers *are* views into
the map, and quantized artifacts served at their stored precision keep
their value/bias buffers mapped as well.  Loading imports only the
model zoo and the sparse kernels — never ``repro.train`` or
``repro.experiments`` — so edge targets ship without the training
stack.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..nn.init import skip_init
from ..nn.layers import Conv2d, Linear
from ..utils import atomic_replace
from .storage import CSRMatrix, CSRPattern

MAGIC = b"REPROM\x00\x01"
FORMAT_VERSION = 1
ALIGNMENT = 64

#: Storable / servable value precisions.
PRECISIONS = ("f32", "f16", "int8")

_VALUE_DTYPES = {"f32": np.float32, "f16": np.float16, "int8": np.int8}


# ----------------------------------------------------------------------
# Varint (LEB128) codec — vectorized, at most a handful of numpy passes
# ----------------------------------------------------------------------
def varint_encode(values: np.ndarray) -> np.ndarray:
    """LEB128-encode non-negative integers into a flat uint8 stream.

    Each value is stored little-endian in 7-bit groups; bit 7 of every
    byte is the continuation flag.  Vectorized: one pass per output
    byte position (column-index deltas need at most five).
    """
    v = np.ascontiguousarray(np.asarray(values), dtype=np.uint64)
    if np.asarray(values).size and np.asarray(values).min() < 0:
        raise ValueError("varint_encode requires non-negative values")
    if v.size == 0:
        return np.zeros(0, dtype=np.uint8)
    lengths = np.ones(v.size, dtype=np.int64)
    shifted = v >> np.uint64(7)
    while shifted.any():
        lengths += shifted != 0
        shifted >>= np.uint64(7)
    offsets = np.zeros(v.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    out = np.zeros(int(offsets[-1] + lengths[-1]), dtype=np.uint8)
    remaining = v.copy()
    position = 0
    while True:
        sel = lengths > position
        if not sel.any():
            break
        byte = (remaining[sel] & np.uint64(0x7F)).astype(np.uint8)
        more = (lengths[sel] > position + 1).astype(np.uint8) << 7
        out[offsets[sel] + position] = byte | more
        remaining >>= np.uint64(7)
        position += 1
    return out


def varint_decode(stream: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`varint_encode`; returns ``count`` uint64 values."""
    raw = np.ascontiguousarray(np.asarray(stream), dtype=np.uint8)
    if count == 0:
        if raw.size:
            raise ValueError("trailing bytes after 0 varint values")
        return np.zeros(0, dtype=np.uint64)
    if raw.size == 0:
        raise ValueError(f"empty varint stream for {count} values")
    is_last = (raw & 0x80) == 0
    if int(is_last.sum()) != count or not is_last[-1]:
        raise ValueError(
            f"corrupt varint stream: {int(is_last.sum())} terminators "
            f"for {count} values"
        )
    element = np.zeros(raw.size, dtype=np.int64)
    np.cumsum(is_last[:-1], out=element[1:])
    starts = np.flatnonzero(
        np.concatenate([[True], is_last[:-1]])
    )
    position = (np.arange(raw.size) - starts[element]).astype(np.uint64)
    contribution = (raw & 0x7F).astype(np.uint64) << (np.uint64(7) * position)
    out = np.zeros(count, dtype=np.uint64)
    # 7-bit groups occupy disjoint bit ranges, so add == bitwise-or.
    np.add.at(out, element, contribution)
    return out


# ----------------------------------------------------------------------
# Delta coding of CSR column indices (per-row reset)
# ----------------------------------------------------------------------
def delta_encode_indices(indices: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Gap-code CSR column indices, resetting at every row start.

    The first non-zero of each row stores its absolute column; the rest
    store the (strictly positive) gap to their predecessor.  Raises if
    any row's indices are unsorted or duplicated — the encoding is only
    lossless for well-formed CSR.
    """
    idx = np.ascontiguousarray(np.asarray(indices), dtype=np.int64)
    ptr = np.asarray(indptr, dtype=np.int64)
    if idx.size == 0:
        return np.zeros(0, dtype=np.uint64)
    deltas = np.empty(idx.size, dtype=np.int64)
    deltas[0] = idx[0]
    np.subtract(idx[1:], idx[:-1], out=deltas[1:])
    counts = np.diff(ptr)
    starts = ptr[:-1][counts > 0]
    deltas[starts] = idx[starts]
    interior = np.ones(idx.size, dtype=bool)
    interior[starts] = False
    if (deltas[starts] < 0).any() or (deltas[interior] < 1).any():
        raise ValueError(
            "indices must be sorted and unique within each row"
        )
    return deltas.astype(np.uint64)


def delta_decode_indices(
    deltas: np.ndarray, indptr: np.ndarray, cols: int
) -> np.ndarray:
    """Inverse of :func:`delta_encode_indices` (int32 column indices)."""
    d = np.asarray(deltas, dtype=np.uint64).astype(np.int64)
    ptr = np.asarray(indptr, dtype=np.int64)
    if d.size == 0:
        return np.zeros(0, dtype=np.int32)
    running = np.cumsum(d)
    counts = np.diff(ptr)
    nonempty = counts > 0
    starts = ptr[:-1][nonempty]
    # Subtract, per row, everything accumulated before the row's
    # absolute anchor: anchor position keeps its stored value.
    base = running[starts] - d[starts]
    correction = np.repeat(base, counts[nonempty])
    indices = running - correction
    if indices.size and (indices.min() < 0 or indices.max() >= cols):
        raise ValueError(
            f"decoded column index out of range [0, {cols})"
        )
    return indices.astype(np.int32)


# ----------------------------------------------------------------------
# Quantization
# ----------------------------------------------------------------------
def quantize_rows_int8(
    values: np.ndarray, indptr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row absmax int8 quantization of CSR-ordered values.

    Every row gets ``scale = max(|row|) / 127``; values are rounded to
    ``[-127, 127]``.  The reconstruction error is bounded by
    ``scale / 2`` per row (rounding never clips: the extreme value maps
    to exactly ±127).  Rows with no non-zeros (or all zeros) get scale 0.
    """
    vals = np.ascontiguousarray(np.asarray(values), dtype=np.float32)
    ptr = np.asarray(indptr, dtype=np.int64)
    rows = ptr.size - 1
    counts = np.diff(ptr)
    row_of = np.repeat(np.arange(rows), counts)
    absmax = np.zeros(rows, dtype=np.float32)
    if vals.size:
        np.maximum.at(absmax, row_of, np.abs(vals))
    scales = (absmax / 127.0).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0).astype(np.float32)
    quantized = np.clip(
        np.rint(vals / safe[row_of]), -127, 127
    ).astype(np.int8) if vals.size else np.zeros(0, dtype=np.int8)
    return quantized, scales


def dequantize_rows(
    quantized: np.ndarray, scales: np.ndarray, indptr: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`quantize_rows_int8` (float32 values)."""
    q = np.asarray(quantized)
    ptr = np.asarray(indptr, dtype=np.int64)
    counts = np.diff(ptr)
    row_of = np.repeat(np.arange(ptr.size - 1), counts)
    return (q.astype(np.float32) * np.asarray(scales, dtype=np.float32)[row_of])


def packed_layer_bytes(
    pattern, precision: str = "int8"
) -> Dict[str, int]:
    """Actual encoded byte cost of one CSR pattern in the packed format.

    Runs the real index codec (not a formula), so the §III-D theoretical
    accounting and the on-disk bytes can be reported side by side
    without silently diverging.
    """
    if precision not in PRECISIONS:
        raise ValueError(f"unknown precision {precision!r} (choose from {PRECISIONS})")
    deltas = delta_encode_indices(pattern.indices, pattern.indptr)
    index_bytes = int(varint_encode(deltas).size)
    indptr_bytes = int(np.asarray(pattern.indptr).size * 4)
    value_bytes = int(pattern.nnz * np.dtype(_VALUE_DTYPES[precision]).itemsize)
    scale_bytes = (pattern.shape[0] * 4) if precision == "int8" else 0
    return {
        "index_bytes": index_bytes,
        "indptr_bytes": indptr_bytes,
        "value_bytes": value_bytes,
        "scale_bytes": scale_bytes,
        "total_bytes": index_bytes + indptr_bytes + value_bytes + scale_bytes,
    }


# ----------------------------------------------------------------------
# Model specs (geometry rebuild without the training stack)
# ----------------------------------------------------------------------
def build_spec_model(spec: Dict):
    """Instantiate model geometry from a package's model spec.

    ``spec`` records the zoo name (plus ``"mlp"`` for
    :class:`~repro.snn.models.SpikingMLP`, which is not an experiment
    model) and the resolved constructor kwargs.  Runs under
    :func:`~repro.nn.init.skip_init` — every parameter is overwritten
    from the package, so the init draws would be wasted work.
    """
    from ..snn.encoding import build_encoder
    from ..snn.models import MODEL_REGISTRY, SpikingMLP, build_model

    name = spec["model"]
    kwargs = dict(spec.get("kwargs", {}))
    with skip_init():
        if name in MODEL_REGISTRY:
            model = build_model(name, **kwargs)
        elif name == "mlp":
            model = SpikingMLP(**kwargs)
        else:
            raise ValueError(
                f"unknown model {name!r} in package spec "
                f"(available: {sorted(MODEL_REGISTRY) + ['mlp']})"
            )
    encoder = spec.get("encoder", "direct")
    if encoder and encoder != "direct":
        encoder_kwargs = {}
        if encoder == "poisson":
            # Mirrors build_experiment_model's dedicated stream
            # (seed + 4) so packaged and checkpointed serving draw
            # identical spike trains.
            encoder_kwargs["rng"] = np.random.default_rng(
                int(spec.get("seed", 0)) + 4
            )
        timesteps = kwargs.get("timesteps", 4)
        model.encoder = build_encoder(encoder, timesteps, **encoder_kwargs)
    return model


def spec_from_config(config) -> Dict:
    """Model spec for an :class:`~repro.experiments.config.ExperimentConfig`.

    Export-side helper (the experiments import happens at the caller);
    resolves the same kwargs ``build_experiment_model`` would pass so
    the package loader rebuilds identical geometry without the config.
    """
    kwargs = dict(
        num_classes=config.num_classes or 10,
        in_channels=3,
        image_size=config.image_size or 32,
        timesteps=config.timesteps,
    )
    if config.model != "convnet":
        kwargs["width_mult"] = config.width_mult
    return {
        "model": config.model,
        "kwargs": kwargs,
        "encoder": config.encoder,
        "seed": config.seed,
    }


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class _BlobWriter:
    """Accumulates aligned tensor blobs and their manifest entries."""

    def __init__(self) -> None:
        self.blobs = []
        self.offset = 0

    def add(self, array: np.ndarray) -> Dict:
        array = np.ascontiguousarray(array)
        start = _aligned(self.offset)
        if start > self.offset:
            self.blobs.append(b"\x00" * (start - self.offset))
        data = array.tobytes()
        self.blobs.append(data)
        self.offset = start + len(data)
        return {
            "offset": start,
            "nbytes": len(data),
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }


def _dense_entries(model, skip_names) -> "OrderedDict[str, Tuple[str, np.ndarray]]":
    """Name -> (kind, array) for everything outside the sparse states."""
    entries: "OrderedDict[str, Tuple[str, np.ndarray]]" = OrderedDict()
    for name, parameter in model.named_parameters():
        if name not in skip_names:
            entries[name] = ("param", parameter.data)
    for name, buffer in model.named_buffers():
        entries[name] = ("buffer", np.asarray(buffer))
    return entries


def write_package(
    path: Union[str, Path],
    model,
    manager,
    model_spec: Dict,
    precision: str = "int8",
) -> Dict:
    """Write a ``.reprom`` artifact for a (masked) model.

    ``manager`` is the model's :class:`~repro.sparse.engine.SparsityManager`
    (frozen or not); its execution mode, per-layer routes and
    calibration table are captured so serving reproduces the training
    run's dispatch.  Returns a summary dict (file size, per-layer
    accounting).
    """
    if precision not in PRECISIONS:
        raise ValueError(f"unknown precision {precision!r} (choose from {PRECISIONS})")
    path = Path(path)
    writer = _BlobWriter()
    layers = []
    for name, state in manager.states.items():
        pattern = state.csr_pattern()
        values = np.asarray(state.csr_values(), dtype=np.float32)
        deltas = delta_encode_indices(pattern.indices, pattern.indptr)
        entry = {
            "name": name,
            "shape": list(pattern.shape),
            "orig_shape": list(pattern.orig_shape),
            "nnz": pattern.nnz,
            "route": "csr" if manager.use_csr(state) else "dense",
            "tensors": {
                "indices": writer.add(varint_encode(deltas)),
                "indptr": writer.add(pattern.indptr.astype(np.int32)),
            },
        }
        if precision == "int8":
            quantized, scales = quantize_rows_int8(values, pattern.indptr)
            entry["tensors"]["values"] = writer.add(quantized)
            entry["tensors"]["scales"] = writer.add(scales)
        elif precision == "f16":
            entry["tensors"]["values"] = writer.add(values.astype(np.float16))
        else:
            entry["tensors"]["values"] = writer.add(values)
        layers.append(entry)

    dense = []
    for name, (kind, array) in _dense_entries(model, set(manager.states)).items():
        stored = array
        if np.issubdtype(array.dtype, np.floating):
            stored = array.astype(np.float16)
        dense.append({
            "name": name,
            "kind": kind,
            "source_dtype": np.asarray(array).dtype.str,
            **{"tensor": writer.add(stored)},
        })

    meta = {
        "format": FORMAT_VERSION,
        "precision": precision,
        "execution": manager.execution,
        "model_spec": model_spec,
        "calibration": (
            manager.calibration.to_meta() if manager.calibration is not None else None
        ),
        "layers": layers,
        "dense": dense,
    }
    meta["storage"] = {
        "value_bits": {"f32": 32, "f16": 16, "int8": 8}[precision],
        "csr_bits_theoretical": sum(
            entry["nnz"] * 64 + (entry["shape"][0] + 1) * 32 for entry in layers
        ),
        "layer_bytes": sum(
            sum(t["nbytes"] for t in entry["tensors"].values()) for entry in layers
        ),
        "dense_bytes": sum(entry["tensor"]["nbytes"] for entry in dense),
    }

    def write(tmp: Path) -> None:
        meta_json = json.dumps(meta, sort_keys=True).encode("utf-8")
        header = MAGIC + np.uint64(len(meta_json)).tobytes()
        prefix = len(header) + len(meta_json)
        pad = _aligned(prefix) - prefix
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(meta_json)
            handle.write(b"\x00" * pad)
            for blob in writer.blobs:
                handle.write(blob)

    atomic_replace(write, path)
    return {
        "path": str(path),
        "precision": precision,
        "file_bytes": path.stat().st_size,
        "layers": len(layers),
        "dense_entries": len(dense),
        "storage": meta["storage"],
    }


# ----------------------------------------------------------------------
# Loader
# ----------------------------------------------------------------------
class PackedModel:
    """An mmap'd ``.reprom`` artifact.

    Thread-safe to share: the map is read-only and every accessor
    returns views.  One ``PackedModel`` feeds any number of serving
    sessions (each session builds its own model geometry; the heavy
    value buffers all alias this single map).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        if self._mm.size < 16 or bytes(self._mm[:8]) != MAGIC:
            raise ValueError(f"{self.path} is not a .reprom package")
        meta_len = int(self._mm[8:16].view("<u8")[0])
        if 16 + meta_len > self._mm.size:
            raise ValueError(f"{self.path}: truncated metadata")
        self.meta = json.loads(bytes(self._mm[16:16 + meta_len]).decode("utf-8"))
        if self.meta.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"{self.path}: unsupported format version {self.meta.get('format')}"
            )
        self._data_start = _aligned(16 + meta_len)

    @property
    def precision(self) -> str:
        return self.meta["precision"]

    @property
    def file_bytes(self) -> int:
        return int(self._mm.size)

    def tensor(self, entry: Dict) -> np.ndarray:
        """Zero-copy view of one manifest entry (read-only)."""
        start = self._data_start + entry["offset"]
        stop = start + entry["nbytes"]
        if stop > self._mm.size:
            raise ValueError(f"{self.path}: tensor extends past end of file")
        view = self._mm[start:stop].view(np.dtype(entry["dtype"]))
        return view.reshape(entry["shape"])


class PackedState:
    """Duck-typed stand-in for :class:`~repro.sparse.engine.MaskedParameter`.

    Provides exactly what the serving path consumes — ``csr_pattern()``
    / ``csr_values()`` for the kernels, density/size for the reports —
    over a read-only pattern whose values may alias the package map.
    No dense mask is ever materialized.
    """

    __slots__ = ("name", "route", "pattern", "manager", "frozen")

    def __init__(self, name: str, route: str, pattern) -> None:
        self.name = name
        self.route = route
        self.pattern = pattern
        self.manager = None
        self.frozen = True

    @property
    def size(self) -> int:
        return int(np.prod(self.pattern.orig_shape))

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.pattern.orig_shape

    def density(self) -> float:
        return self.pattern.nnz / self.size if self.size else 0.0

    def sparsity(self) -> float:
        return 1.0 - self.density()

    def csr_pattern(self):
        return self.pattern

    def csr_values(self) -> np.ndarray:
        return self.pattern.values


class PackedManager:
    """Read-only manager facade over a package's layer states.

    Implements the slice of the :class:`~repro.sparse.engine.SparsityManager`
    interface that :class:`~repro.serve.registry.InferenceSession`, the
    dispatch/storage reports and the masked kernels consume.  There is
    nothing to freeze or thaw — the artifact is immutable by
    construction.
    """

    def __init__(self, package: PackedModel, precision: str) -> None:
        self.package = package
        self.precision = precision
        self.execution = package.meta.get("execution", "auto")
        self.states: "OrderedDict[str, PackedState]" = OrderedDict()
        self.calibration = None
        calibration_meta = package.meta.get("calibration")
        if calibration_meta:
            from .dispatch import CalibrationTable

            self.calibration = CalibrationTable.from_meta(calibration_meta)

    def add_state(self, state: PackedState) -> None:
        state.manager = self
        self.states[state.name] = state

    def use_csr(self, state: PackedState) -> bool:
        return state.route == "csr"

    @property
    def frozen(self) -> bool:
        return True

    def freeze(self) -> "PackedManager":
        return self

    def thaw(self) -> "PackedManager":
        raise RuntimeError(
            "a packed serving session is immutable; re-train from a "
            "checkpoint instead of thawing a .reprom artifact"
        )

    def explain_dispatch(self, name: str) -> Dict:
        from .dispatch import matrix_shape

        state = self.states[name]
        return {
            "layer": name,
            "shape": matrix_shape(state.shape),
            "density": round(state.density(), 4),
            "cutoff": None,
            "cutoff_source": "package",
            "execution": f"packed-{self.precision}",
            "route": state.route,
        }

    def sparsity(self) -> float:
        total = sum(state.size for state in self.states.values())
        nnz = sum(state.pattern.nnz for state in self.states.values())
        return 1.0 - nnz / total if total else 0.0


def _decode_layer_indices(package: PackedModel, entry: Dict) -> Tuple[np.ndarray, np.ndarray]:
    indptr = np.asarray(package.tensor(entry["tensors"]["indptr"]), dtype=np.int32)
    deltas = varint_decode(
        package.tensor(entry["tensors"]["indices"]), entry["nnz"]
    )
    indices = delta_decode_indices(deltas, indptr, entry["shape"][1])
    return indices, indptr


def _layer_values_f32(package: PackedModel, entry: Dict) -> Tuple[np.ndarray, bool]:
    """Float32 values of one layer; second value: aliases the map."""
    stored = package.tensor(entry["tensors"]["values"])
    if package.precision == "f32":
        return stored, True
    if package.precision == "f16":
        return stored.astype(np.float32), False
    scales = package.tensor(entry["tensors"]["scales"])
    indptr = package.tensor(entry["tensors"]["indptr"])
    return dequantize_rows(stored, scales, indptr), False


def _assign_dense_entries(package: PackedModel, model) -> None:
    """Wire the package's dense tensors (f16 biases etc.) into the model.

    Float entries stay float16 **views into the map** — stored and
    served at f16 end-to-end; numpy upcasts them on use.  Integer
    buffers keep their dtype.
    """
    parameters = dict(model.named_parameters())
    buffer_owners = {}
    for module_name, module in model.named_modules():
        for buffer_name in module._buffers:
            full = f"{module_name}.{buffer_name}" if module_name else buffer_name
            buffer_owners[full] = (module, buffer_name)
    for entry in package.meta["dense"]:
        view = package.tensor(entry["tensor"])
        name = entry["name"]
        if entry["kind"] == "param":
            if name not in parameters:
                raise KeyError(f"package dense entry {name!r} not in model")
            parameters[name].data = view
            parameters[name].requires_grad = False
        else:
            if name not in buffer_owners:
                raise KeyError(f"package buffer {name!r} not in model")
            module, buffer_name = buffer_owners[name]
            module.update_buffer(buffer_name, view)


def _module_index(model) -> Dict[str, Tuple[object, str, object]]:
    """weight-parameter name -> (parent module, attr name, module)."""
    index = {}
    named = dict(model.named_modules())
    for module_name, module in named.items():
        if "weight" not in module._parameters:
            continue
        weight_name = f"{module_name}.weight" if module_name else "weight"
        if module_name and "." in module_name:
            parent_name, attr = module_name.rsplit(".", 1)
        else:
            parent_name, attr = "", module_name
        index[weight_name] = (named[parent_name], attr, module)
    return index


def _dense_from_pattern(pattern, values: np.ndarray) -> np.ndarray:
    """Materialize a dense float32 weight from CSR (dense-routed layers)."""
    rows, cols = pattern.shape
    dense = np.zeros((rows, cols), dtype=np.float32)
    row_of = np.repeat(np.arange(rows), np.diff(pattern.indptr))
    dense[row_of, pattern.indices] = values
    return dense.reshape(pattern.orig_shape)


def build_packed_runtime(
    package: PackedModel, precision: Optional[str] = None
):
    """``(model, manager)`` serving pair from an mmap'd package.

    ``precision`` picks the runtime:

    * ``"f32"`` (the default) — the engine fast path: quantized values
      are pre-scaled into float32 CSR buffers at load (f32 artifacts
      alias the map outright) and forwards run through the scipy-backed
      :class:`~repro.sparse.storage.CSRPattern` kernels at frozen-f32
      speed.
    * ``"f16"`` / ``"int8"`` — memory-minimal: layers are replaced with
      :class:`~repro.sparse.inference.CSRLinear` /
      :class:`~repro.sparse.inference.CSRConv2d` whose value buffers
      stay mapped at the stored precision and are dequantized
      row-block by row-block during the forward (requires a matching
      artifact precision).
    """
    runtime = precision or "f32"
    if runtime not in PRECISIONS:
        raise ValueError(f"unknown precision {runtime!r} (choose from {PRECISIONS})")
    if runtime != "f32" and runtime != package.precision:
        raise ValueError(
            f"runtime precision {runtime!r} needs a {runtime} artifact; "
            f"{package.path} stores {package.precision!r} values "
            "(re-export, or serve at f32 which pre-scales at load)"
        )
    model = build_spec_model(package.meta["model_spec"])
    model.eval()
    _assign_dense_entries(package, model)
    manager = PackedManager(package, runtime)
    modules = _module_index(model)
    for entry in package.meta["layers"]:
        name = entry["name"]
        if name not in modules:
            raise KeyError(f"package layer {name!r} not in model")
        parent, attr, module = modules[name]
        indices, indptr = _decode_layer_indices(package, entry)
        if runtime == "f32":
            values, aliased = _layer_values_f32(package, entry)
            pattern = CSRPattern.from_arrays(
                indices, indptr, entry["shape"], entry["orig_shape"], values=values
            )
            pattern.freeze()
            state = PackedState(name, entry["route"], pattern)
            manager.add_state(state)
            if entry["route"] == "csr":
                object.__setattr__(module, "weight_state", state)
            else:
                module.weight.data = _dense_from_pattern(pattern, pattern.values)
                module.weight.requires_grad = False
        else:
            from .inference import CSRConv2d, CSRLinear

            stored = package.tensor(entry["tensors"]["values"])
            matrix = CSRMatrix(
                data=stored,
                indices=indices.astype(np.int64),
                indptr=indptr.astype(np.int64),
                shape=tuple(entry["shape"]),
                orig_shape=tuple(entry["orig_shape"]),
            )
            scales = (
                package.tensor(entry["tensors"]["scales"])
                if runtime == "int8" else None
            )
            bias = module.bias.data if module.bias is not None else None
            if isinstance(module, Conv2d):
                replacement = CSRConv2d(
                    matrix, bias,
                    kernel_size=module.kernel_size,
                    stride=module.stride,
                    padding=module.padding,
                    in_channels=module.in_channels,
                    scales=scales,
                )
            elif isinstance(module, Linear):
                replacement = CSRLinear(matrix, bias, scales=scales)
            else:
                raise TypeError(
                    f"layer {name!r} is neither Linear nor Conv2d"
                )
            setattr(parent, attr, replacement)
            pattern = CSRPattern.from_arrays(
                indices, indptr, entry["shape"], entry["orig_shape"],
                values=stored,
            )
            pattern.frozen = True
            manager.add_state(PackedState(name, entry["route"], pattern))
    return model, manager
