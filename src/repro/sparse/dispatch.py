"""Measured per-shape dispatch calibration for ``auto`` execution.

The fixed density threshold that historically drove dense-vs-CSR
dispatch is a single number for every layer shape, but the real
crossover moves with the matrix geometry (BLAS tile efficiency, cache
footprint, scipy kernel overhead).  This module measures it: for a
given 2-D weight shape it times the dense masked matmul against the
CSR kernel over a grid of density buckets and derives the highest
density at which CSR still wins with a safety margin.

Determinism contract
--------------------
Measured timings differ run to run, but the *dispatch decisions* of a
training run must be reproducible — the sweep queue's crash-resume and
local-vs-queue bit-identity tests compare results byte for byte.  Two
mechanisms guarantee it:

* **Shared write-once cache.**  When ``REPRO_CALIBRATION_DIR`` is set
  (the test suite and the sweep queue do so), the first process to
  calibrate a shape publishes its cutoff with an ``O_CREAT | O_EXCL``
  create; every later measurement of that shape — in this process or
  any other sharing the directory — adopts the published value instead
  of its own timing.
* **Checkpoint persistence.**  A training checkpoint stores the run's
  calibration table (see ``repro.train.checkpoint``), and a resumed run
  restores it verbatim, overriding anything freshly measured.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..tensor.functional import STATIC_CSR_DENSITY_CUTOFF
from .storage import CSRPattern

#: Environment variable naming a directory for the shared write-once
#: calibration cache.  Unset → per-process memory cache only.
CALIBRATION_ENV = "REPRO_CALIBRATION_DIR"

#: Density buckets measured per shape, ascending.  The derived cutoff
#: is the largest *prefix* of winning buckets, so one noisy win at high
#: density cannot drag losing densities onto the CSR path.
DENSITY_GRID = (0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50)

#: CSR must beat dense by this factor at a bucket to count as a win;
#: absorbs timing noise and the (amortized) write-through refresh cost.
WIN_MARGIN = 1.10

#: Batch (columns of the dense operand) used for calibration timings —
#: representative of the reproduction's training batches.
CALIBRATION_BATCH = 32

_PROCESS_CACHE: Dict[Tuple[Optional[str], int, int], float] = {}


def matrix_shape(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Reduce a weight-tensor shape to the paper's 2-D convention."""
    if len(shape) == 2:
        return (int(shape[0]), int(shape[1]))
    return (int(shape[0]), int(np.prod(shape[1:])))


def measure_crossover(
    rows: int,
    cols: int,
    batch: int = CALIBRATION_BATCH,
    repeats: int = 3,
    grid: Iterable[float] = DENSITY_GRID,
    seed: int = 0,
) -> Dict[str, float]:
    """Time dense vs CSR at each density bucket for one shape.

    Returns ``{"cutoff": float, "buckets": {density: speedup}}`` where
    ``cutoff`` is the highest grid density such that CSR beats dense
    (by :data:`WIN_MARGIN`) at it *and every sparser bucket*.  A shape
    where CSR never wins gets cutoff 0.0 (always dense).

    Uses a private RNG and ``time.perf_counter`` only — calibration
    must never perturb a training run's random streams.
    """
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((rows, cols)).astype(np.float32)
    x = rng.standard_normal((cols, batch)).astype(np.float32)
    total = rows * cols

    def best_of(fn) -> float:
        fn()  # warm-up
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    buckets: Dict[float, float] = {}
    cutoff = 0.0
    prefix_winning = True
    for density in sorted(grid):
        keep = max(1, int(round(density * total)))
        mask_flat = np.zeros(total, dtype=np.float32)
        mask_flat[rng.choice(total, size=keep, replace=False)] = 1.0
        mask = mask_flat.reshape(rows, cols)
        masked = weight * mask
        pattern = CSRPattern.from_mask(mask)
        values = pattern.gather(masked)
        dense_s = best_of(lambda: masked @ x)
        csr_s = best_of(lambda: pattern.matmul(values, x))
        speedup = dense_s / csr_s if csr_s > 0 else 0.0
        buckets[density] = speedup
        if prefix_winning and speedup >= WIN_MARGIN:
            cutoff = density
        else:
            prefix_winning = False
    return {"cutoff": cutoff, "buckets": buckets}


def _cache_dir() -> Optional[str]:
    return os.environ.get(CALIBRATION_ENV) or None


def _cache_path(directory: str, rows: int, cols: int) -> str:
    return os.path.join(directory, f"calibration-{rows}x{cols}.json")


def _publish(directory: str, rows: int, cols: int, measured: Dict) -> float:
    """Write-once publish; on collision adopt the winner's cutoff."""
    path = _cache_path(directory, rows, cols)
    payload = {
        "rows": rows,
        "cols": cols,
        "cutoff": float(measured["cutoff"]),
        "buckets": {f"{d:.2f}": float(s) for d, s in measured["buckets"].items()},
    }
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        with open(path) as handle:
            return float(json.load(handle)["cutoff"])
    except OSError:
        return float(measured["cutoff"])  # unwritable dir: keep our own
    with os.fdopen(fd, "w") as handle:
        json.dump(payload, handle, indent=2)
    return float(measured["cutoff"])


def get_cutoff(rows: int, cols: int, measure=measure_crossover) -> float:
    """Calibrated density cutoff for one 2-D shape (cached).

    Lookup order: process memory cache → shared on-disk cache
    (:data:`CALIBRATION_ENV`) → fresh measurement, which is then
    published write-once so concurrent processes converge on a single
    value.  ``measure`` is injectable for tests.
    """
    directory = _cache_dir()
    key = (directory, int(rows), int(cols))
    cached = _PROCESS_CACHE.get(key)
    if cached is not None:
        return cached
    if directory is not None:
        os.makedirs(directory, exist_ok=True)
        path = _cache_path(directory, rows, cols)
        if os.path.exists(path):
            with open(path) as handle:
                cutoff = float(json.load(handle)["cutoff"])
            _PROCESS_CACHE[key] = cutoff
            return cutoff
    measured = measure(rows, cols)
    if directory is not None:
        cutoff = _publish(directory, rows, cols, measured)
    else:
        cutoff = float(measured["cutoff"])
    _PROCESS_CACHE[key] = cutoff
    return cutoff


def clear_process_cache() -> None:
    """Forget memoized cutoffs (tests that re-point the cache dir)."""
    _PROCESS_CACHE.clear()


class CalibrationTable:
    """Per-shape measured density cutoffs driving ``auto`` dispatch.

    Maps a reduced 2-D weight shape to the highest density at which the
    CSR kernels are worth taking on this machine.  Layers whose shape
    is absent fall back to the static
    :data:`~repro.tensor.functional.STATIC_CSR_DENSITY_CUTOFF`.
    """

    def __init__(self, cutoffs: Optional[Dict[Tuple[int, int], float]] = None) -> None:
        self.cutoffs: Dict[Tuple[int, int], float] = dict(cutoffs or {})

    def __len__(self) -> int:
        return len(self.cutoffs)

    def cutoff_for(self, shape: Tuple[int, ...]) -> Optional[float]:
        """Cutoff for a weight shape (any rank), or None if unmeasured."""
        return self.cutoffs.get(matrix_shape(shape))

    def calibrate_shapes(self, shapes: Iterable[Tuple[int, ...]], measure=measure_crossover) -> "CalibrationTable":
        """Measure (or look up) every shape; idempotent, chainable."""
        for shape in shapes:
            rows, cols = matrix_shape(shape)
            if (rows, cols) not in self.cutoffs:
                self.cutoffs[(rows, cols)] = get_cutoff(rows, cols, measure=measure)
        return self

    # -- checkpoint round-trip -----------------------------------------
    def to_meta(self) -> Dict[str, float]:
        """JSON-able form, keys ``"<rows>x<cols>"``."""
        return {f"{r}x{c}": float(v) for (r, c), v in sorted(self.cutoffs.items())}

    @classmethod
    def from_meta(cls, meta: Optional[Dict[str, float]]) -> Optional["CalibrationTable"]:
        if not meta:
            return None
        cutoffs = {}
        for key, value in meta.items():
            rows, cols = key.split("x")
            cutoffs[(int(rows), int(cols))] = float(value)
        return cls(cutoffs)

    def __repr__(self) -> str:
        entries = ", ".join(f"{r}x{c}:{v:.2f}" for (r, c), v in sorted(self.cutoffs.items()))
        return f"CalibrationTable({entries})"
