"""Sparse inference: run trained sparse models from CSR storage.

Deployment counterpart of the §III-D memory analysis: after NDSNN
training, the surviving weights are packed into CSR (values + column
indices + row pointers) and inference runs directly off that compressed
representation — no dense weight tensor is materialized.  This is how
the model would ship to an edge target.

Currently linear layers execute via CSR matvec; convolutions execute
via the equivalent CSR matmul over im2col patches.  Outputs are
bit-identical to the dense masked model (verified by tests).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..nn.module import Module
from ..nn.layers import Conv2d, Linear
from ..tensor import Tensor, im2col
from .storage import CSRMatrix, csr_encode


class CSRLinear(Module):
    """Inference-only linear layer backed by a CSR weight matrix.

    ``matrix.data`` may be float32, float16, or int8; int8 needs the
    per-row ``scales`` (from the packed artifact's absmax calibration)
    and is dequantized row-block by row-block during the forward, so
    the mapped int8 buffer is never expanded wholesale.  The bias keeps
    its stored dtype (f16 in packed artifacts) — numpy upcasts on use.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        bias: np.ndarray = None,
        scales: np.ndarray = None,
    ) -> None:
        super().__init__()
        self.matrix = matrix
        self.bias_value = None if bias is None else np.asarray(bias)
        self.scales = scales

    @classmethod
    def from_layer(cls, layer: Linear) -> "CSRLinear":
        bias = layer.bias.data if layer.bias is not None else None
        return cls(csr_encode(layer.weight.data), bias)

    def _row_values(self, start: int, stop: int, row: int) -> np.ndarray:
        values = self.matrix.data[start:stop]
        if self.scales is not None:
            return values.astype(np.float32) * self.scales[row]
        if values.dtype != np.float32:
            return values.astype(np.float32)
        return values

    def forward(self, x: Tensor) -> Tensor:
        # y = x W^T: compute row-wise via the CSR structure.
        data = x.data
        out = np.zeros((data.shape[0], self.matrix.shape[0]), dtype=np.float32)
        indptr, indices = self.matrix.indptr, self.matrix.indices
        for row in range(self.matrix.shape[0]):
            start, stop = indptr[row], indptr[row + 1]
            if start == stop:
                continue
            out[:, row] = data[:, indices[start:stop]] @ self._row_values(start, stop, row)
        if self.bias_value is not None:
            out += self.bias_value
        return Tensor(out)

    def storage_bits(self, value_bits: int = 32, index_bits: int = 32) -> int:
        return self.matrix.storage_bits(value_bits=value_bits, index_bits=index_bits)


class CSRConv2d(Module):
    """Inference-only convolution backed by a CSR filter matrix.

    Filters are stored as a CSR ``(F, C*kh*kw)`` matrix; the forward
    pass lowers input patches with im2col and multiplies row-by-row.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        bias: np.ndarray,
        kernel_size: int,
        stride: int,
        padding: int,
        in_channels: int,
        scales: np.ndarray = None,
    ) -> None:
        super().__init__()
        self.matrix = matrix
        self.bias_value = None if bias is None else np.asarray(bias)
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.in_channels = in_channels
        self.scales = scales

    @classmethod
    def from_layer(cls, layer: Conv2d) -> "CSRConv2d":
        bias = layer.bias.data if layer.bias is not None else None
        return cls(
            csr_encode(layer.weight.data),
            bias,
            kernel_size=layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
            in_channels=layer.in_channels,
        )

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.padding
        cols = im2col(x.data, (k, k), (s, s), (p, p))  # (N, C*k*k, L)
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        f = self.matrix.shape[0]
        out = np.zeros((n, f, cols.shape[2]), dtype=np.float32)
        indptr, indices, values = self.matrix.indptr, self.matrix.indices, self.matrix.data
        for row in range(f):
            start, stop = indptr[row], indptr[row + 1]
            if start == stop:
                continue
            row_values = values[start:stop]
            if self.scales is not None:
                row_values = row_values.astype(np.float32) * self.scales[row]
            elif row_values.dtype != np.float32:
                row_values = row_values.astype(np.float32)
            out[:, row, :] = np.einsum(
                "k,nkl->nl", row_values, cols[:, indices[start:stop], :],
                optimize=True,
            )
        out = out.reshape(n, f, out_h, out_w)
        if self.bias_value is not None:
            out += self.bias_value.reshape(1, f, 1, 1)
        return Tensor(out)

    def storage_bits(self, value_bits: int = 32, index_bits: int = 32) -> int:
        return self.matrix.storage_bits(value_bits=value_bits, index_bits=index_bits)


def compress_model(model: Module) -> Module:
    """Replace every Linear/Conv2d in ``model`` with its CSR twin, in place.

    Returns the same model object for chaining.  The model should be in
    eval mode; training through CSR layers is unsupported.
    """
    for module in model.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, Linear):
                setattr(module, name, CSRLinear.from_layer(child))
            elif isinstance(child, Conv2d):
                setattr(module, name, CSRConv2d.from_layer(child))
    model.eval()
    return model


def compressed_storage_bits(model: Module, value_bits: int = 32, index_bits: int = 32) -> int:
    """Total CSR storage of a compressed model's weight layers."""
    total = 0
    for module in model.modules():
        if isinstance(module, (CSRLinear, CSRConv2d)):
            total += module.storage_bits(value_bits=value_bits, index_bits=index_bits)
    return total


def serving_storage_report(manager, precision: str = None) -> Dict[str, object]:
    """Per-layer storage/dispatch summary of a (frozen) serving engine.

    For every masked layer: the route its next forward takes, its
    density, the exact CSR storage bits of the cached pattern (values +
    column indices + row pointers) versus the dense weight bits — the
    §III-D accounting applied to the live serving engine — **and** the
    actual bytes the layer costs in the packed ``.reprom`` format
    (delta+varint indices, quantized values), computed by running the
    real codec so the theoretical and on-disk numbers cannot silently
    diverge.  ``precision`` picks the packed value precision; it
    defaults to the artifact's stored precision for packed sessions and
    ``"f32"`` otherwise.  Sessions served from a package also get a
    ``"packed"`` section with the measured file size.
    """
    from .packaging import packed_layer_bytes

    package = getattr(manager, "package", None)
    stored = precision or (package.precision if package is not None else "f32")
    layers = []
    for name, state in manager.states.items():
        pattern = state.csr_pattern()
        rows = pattern.shape[0]
        csr_bits = pattern.nnz * 32 + pattern.nnz * 32 + (rows + 1) * 32
        layers.append({
            "layer": name,
            "route": "csr" if manager.use_csr(state) else "dense",
            "density": round(state.density(), 4),
            "nonzeros": pattern.nnz,
            "csr_bits": csr_bits,
            "dense_bits": state.size * 32,
            "packed_bytes": packed_layer_bytes(pattern, stored)["total_bytes"],
            "frozen": state.frozen,
        })
    report = {
        "layers": layers,
        "total_csr_bits": sum(item["csr_bits"] for item in layers),
        "total_dense_bits": sum(item["dense_bits"] for item in layers),
        "total_packed_bytes": sum(item["packed_bytes"] for item in layers),
        "packed_precision": stored,
        "frozen": all(item["frozen"] for item in layers),
    }
    if package is not None:
        report["packed"] = {
            "path": str(package.path),
            "precision": package.precision,
            "file_bytes": package.file_bytes,
        }
    return report


def compression_report(model: Module) -> Dict[str, float]:
    """Summary stats of a compressed model (layer count, bits, density)."""
    layers: List = [
        module for module in model.modules() if isinstance(module, (CSRLinear, CSRConv2d))
    ]
    nnz = sum(layer.matrix.nnz for layer in layers)
    total = sum(layer.matrix.shape[0] * layer.matrix.shape[1] for layer in layers)
    return {
        "num_compressed_layers": len(layers),
        "nonzeros": nnz,
        "dense_weights": total,
        "density": nnz / total if total else 0.0,
        "storage_bits": compressed_storage_bits(model),
    }
