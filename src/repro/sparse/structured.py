"""Structured (filter-level) pruning — hardware-friendly extension.

Unstructured sparsity (the paper's setting) needs index storage and
gather hardware; structured pruning removes whole convolution filters /
output neurons so the dense kernels shrink directly.  This module adds
a filter-magnitude structured pruner with the same cubic-ramp schedule,
giving the repository a deployment-oriented ablation axis:
unstructured NDSNN vs structured ramps at equal sparsity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import BatchNorm1d, BatchNorm2d, Conv2d, Linear
from .engine import SparseTrainingMethod, SparsityManager
from .schedule import SparsityRamp


def filter_norms(weight: np.ndarray) -> np.ndarray:
    """L2 norm of each filter (row) of a 2-D/4-D weight tensor."""
    if weight.ndim == 2:
        return np.linalg.norm(weight, axis=1)
    if weight.ndim == 4:
        return np.linalg.norm(weight.reshape(weight.shape[0], -1), axis=1)
    raise ValueError(f"unsupported weight rank {weight.ndim}")


class StructuredFilterPruning(SparseTrainingMethod):
    """Gradually deactivate the lowest-norm filters along an Eq. 4 ramp.

    Sparsity is measured in *weights*, but pruning granularity is whole
    filters (output channels for conv, output neurons for linear).  The
    final layer (classifier) keeps all of its output units: removing a
    class row would change the task.

    Parameters
    ----------
    final_sparsity:
        Target fraction of weights removed (approximate — quantized to
        whole filters).
    """

    name = "structured"

    def __init__(
        self,
        final_sparsity: float = 0.5,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        ramp_power: float = 3.0,
        protect_last_layer: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < final_sparsity < 1.0:
            raise ValueError(f"final_sparsity must be in (0, 1), got {final_sparsity}")
        self.final_sparsity = float(final_sparsity)
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.ramp_power = float(ramp_power)
        self.protect_last_layer = protect_last_layer
        self._rng = rng
        self.ramp: Optional[SparsityRamp] = None
        self.pruned_filters: Dict[str, List[int]] = {}

    def setup(self) -> None:
        if self.update_frequency >= self.total_iterations:
            self.update_frequency = max(1, self.total_iterations - 1)
        self.masks = SparsityManager(self.model, rng=self._rng)
        num_rounds = max(1, self.total_iterations // self.update_frequency)
        self.ramp = SparsityRamp(
            0.0,
            self.final_sparsity,
            t_start=0,
            num_rounds=num_rounds,
            update_frequency=self.update_frequency,
            power=self.ramp_power,
        )
        self.pruned_filters = {name: [] for name in self.masks.masks}

    def _prunable_layers(self) -> List[str]:
        names = list(self.masks.masks)
        if self.protect_last_layer and names:
            names = names[:-1]
        return names

    def after_backward(self, iteration: int) -> None:
        if (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration < self.total_iterations
        ):
            self._prune_filters(iteration)
        self.masks.apply_to_gradients()

    def _prune_filters(self, iteration: int) -> None:
        target = self.ramp.sparsity_at(iteration)
        for name in self._prunable_layers():
            parameter = self.masks.parameters[name]
            num_filters = parameter.shape[0]
            weights_per_filter = parameter.size // num_filters
            target_pruned = int(target * num_filters)
            # Always keep at least one filter alive.
            target_pruned = min(target_pruned, num_filters - 1)
            already = len(self.pruned_filters[name])
            extra = target_pruned - already
            if extra <= 0:
                continue
            norms = filter_norms(parameter.data)
            norms[self.pruned_filters[name]] = np.inf  # never re-rank dead filters
            victims = np.argsort(norms)[:extra]
            state = self.masks.states[name]
            for victim in victims:
                state.mask[victim] = 0.0
                self.pruned_filters[name].append(int(victim))
            state.touch()
        self.masks.apply_masks()
        self._record_mask_update()

    def filter_sparsity(self) -> Dict[str, float]:
        """Fraction of filters removed per layer."""
        out = {}
        for name in self.masks.masks:
            total = self.masks.parameters[name].shape[0]
            out[name] = len(self.pruned_filters[name]) / total
        return out

    def __repr__(self) -> str:
        return f"StructuredFilterPruning(final_sparsity={self.final_sparsity})"


# ----------------------------------------------------------------------
# Deploy-time compaction: physically remove dead filters/neurons
# ----------------------------------------------------------------------
#
# Training-time structured pruning only zeroes mask rows, so the dense
# kernels still pay full FLOPs for pruned filters.  The functions below
# turn that masked sparsity into genuinely smaller layers at bind time:
#
# 1. ``sever_dead_channels`` canonicalises the model so a dead output
#    channel contributes *exactly nothing* downstream: its bias and any
#    following batch-norm affine/running entries are zeroed (a BN over a
#    zeroed channel would otherwise inject the constant
#    ``gamma*(0-mean)/sqrt(var+eps)+beta``), and the consumer layer's
#    weight and mask columns fed by the channel are zeroed.
# 2. ``compact_model`` slices the severed model: dead rows leave the
#    producer, the matching columns leave the consumer, batch-norms
#    shrink with their layer, and a fresh ``SparsityManager`` is bound
#    over the compacted shapes.
#
# Compact output equals the *severed* model's output exactly (and the
# raw masked model's whenever no batch-norm or bias constant rides on a
# dead channel); the invariant suite pins this to 1e-6.


def dead_output_rows(mask: np.ndarray) -> np.ndarray:
    """Indices of all-zero rows (dead filters / neurons) of a mask."""
    rows = mask.shape[0]
    return np.flatnonzero(mask.reshape(rows, -1).sum(axis=1) == 0)


def _structured_chain(model, manager: SparsityManager) -> List[list]:
    """Masked modules in forward order, each with its batch-norms.

    Returns ``[state, module, [bn, ...]]`` entries and validates that
    the module walk matches the manager's state order — compaction only
    supports straight chains (Sequential-style models) where every
    masked layer feeds the next.
    """
    by_parameter = {id(state.parameter): state for state in manager.states.values()}
    entries: List[list] = []
    for module in model.modules():
        weight = module._parameters.get("weight")
        if weight is not None and id(weight) in by_parameter:
            if not isinstance(module, (Linear, Conv2d)):
                raise ValueError(
                    f"cannot compact: unsupported masked module {type(module).__name__}"
                )
            entries.append([by_parameter[id(weight)], module, []])
        elif isinstance(module, (BatchNorm1d, BatchNorm2d)):
            if not entries:
                raise ValueError("cannot compact: batch-norm precedes the first masked layer")
            producer = entries[-1][1]
            if module.num_features != producer.weight.shape[0]:
                raise ValueError(
                    "cannot compact: batch-norm width "
                    f"{module.num_features} does not match the preceding "
                    f"layer's {producer.weight.shape[0]} outputs"
                )
            entries[-1][2].append(module)
    if [entry[0] for entry in entries] != list(manager.states.values()):
        raise ValueError(
            "cannot compact: module traversal order does not match the "
            "manager's state order (non-chain models are unsupported)"
        )
    return entries


def _consumer_columns(
    producer_is_conv: bool,
    producer_out: int,
    channels: np.ndarray,
    consumer,
) -> np.ndarray:
    """Map producer output channels to consumer weight column indices.

    For conv consumers the column axis *is* the channel axis; for a
    linear consumer after a conv the flatten convention is channel-major
    (``c * spatial + s``), so each channel expands to a contiguous block
    of columns.
    """
    if isinstance(consumer, Conv2d):
        if not producer_is_conv or consumer.in_channels != producer_out:
            raise ValueError(
                "cannot compact: consumer Conv2d input channels "
                f"({consumer.in_channels}) do not match the producer's "
                f"{producer_out} outputs"
            )
        return channels
    if producer_is_conv:
        if consumer.in_features % producer_out:
            raise ValueError(
                "cannot compact: Linear in_features "
                f"({consumer.in_features}) is not a multiple of the "
                f"producing conv's {producer_out} channels"
            )
        spatial = consumer.in_features // producer_out
        return (channels[:, None] * spatial + np.arange(spatial)).reshape(-1)
    if consumer.in_features != producer_out:
        raise ValueError(
            "cannot compact: consumer Linear in_features "
            f"({consumer.in_features}) do not match the producer's "
            f"{producer_out} outputs"
        )
    return channels


def sever_dead_channels(model, manager: SparsityManager) -> Dict[str, np.ndarray]:
    """Zero every side-channel through which a dead filter still leaks.

    Iterates to a fixpoint: zeroing a consumer's columns can kill
    consumer rows whose only live weights read dead channels, and those
    newly-dead rows must be severed too before :func:`compact_model`
    may slice them out.  Returns the dead row indices per layer.
    """
    chain = _structured_chain(model, manager)
    severed: Dict[str, np.ndarray] = {
        entry[0].name: np.empty(0, dtype=np.int64) for entry in chain
    }
    changed = True
    while changed:
        changed = False
        for position, (state, module, bns) in enumerate(chain):
            dead = dead_output_rows(state.mask)
            fresh = np.setdiff1d(dead, severed[state.name], assume_unique=True)
            if fresh.size == 0:
                continue
            changed = True
            severed[state.name] = dead
            if module.bias is not None:
                module.bias.data[fresh] = 0.0
            for bn in bns:
                bn.weight.data[fresh] = 0.0
                bn.bias.data[fresh] = 0.0
                bn.running_mean[fresh] = 0.0
                bn.running_var[fresh] = 1.0
            if position + 1 < len(chain):
                next_state, next_module, _ = chain[position + 1]
                columns = _consumer_columns(
                    isinstance(module, Conv2d), module.weight.shape[0],
                    fresh, next_module,
                )
                next_module.weight.data[:, columns] = 0.0
                next_state.mask[:, columns] = 0.0
                next_state.touch()
    manager.apply_masks()
    return severed


def compact_model(model, manager: SparsityManager) -> SparsityManager:
    """Slice dead filters/neurons out of a structurally pruned model.

    Severs first (:func:`sever_dead_channels`), then physically removes
    every dead output row from its layer, the matching input columns
    from the next layer, and the matching entries from interposed
    batch-norms.  The final layer keeps all of its outputs (they are
    the task's classes).  Returns a fresh :class:`SparsityManager`
    bound over the compacted shapes, carrying over the sliced masks,
    execution mode, dispatch threshold, and calibration table — so
    ``auto`` execution keeps CSR for layers that stay unstructured-
    sparse while the compacted dense kernels shrink for real.
    """
    sever_dead_channels(model, manager)
    chain = _structured_chain(model, manager)
    new_masks: Dict[str, np.ndarray] = {}
    previous: Optional[Tuple[bool, int, np.ndarray]] = None
    for position, (state, module, bns) in enumerate(chain):
        mask = state.mask
        if position + 1 < len(chain):
            keep_out = np.flatnonzero(
                mask.reshape(mask.shape[0], -1).sum(axis=1) > 0
            )
            if keep_out.size == 0:
                raise ValueError(f"layer {state.name!r} has no live filters left")
        else:
            keep_out = None
        keep_in = None
        if previous is not None:
            producer_is_conv, producer_out, producer_keep = previous
            keep_in = _consumer_columns(
                producer_is_conv, producer_out, producer_keep, module
            )
        sliced = mask
        if keep_out is not None:
            sliced = sliced[keep_out]
        if keep_in is not None:
            sliced = sliced[:, keep_in]
        new_masks[state.name] = np.ascontiguousarray(sliced)
        if keep_out is not None:
            previous = (isinstance(module, Conv2d), module.weight.shape[0], keep_out)
            for bn in bns:
                bn.compact(keep_out)
        module.compact(keep_out=keep_out, keep_in=keep_in)
    compacted = SparsityManager(model, rng=manager.rng)
    for name, state in compacted.states.items():
        state.set_mask(new_masks[name])
        state.density_target = manager.states[name].density_target
    compacted.apply_masks()
    compacted.execution = manager.execution
    compacted.csr_threshold = manager.csr_threshold
    compacted.calibration = manager.calibration
    compacted.bind_layers()
    return compacted
