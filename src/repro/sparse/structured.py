"""Structured (filter-level) pruning — hardware-friendly extension.

Unstructured sparsity (the paper's setting) needs index storage and
gather hardware; structured pruning removes whole convolution filters /
output neurons so the dense kernels shrink directly.  This module adds
a filter-magnitude structured pruner with the same cubic-ramp schedule,
giving the repository a deployment-oriented ablation axis:
unstructured NDSNN vs structured ramps at equal sparsity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .engine import SparseTrainingMethod, SparsityManager
from .schedule import SparsityRamp


def filter_norms(weight: np.ndarray) -> np.ndarray:
    """L2 norm of each filter (row) of a 2-D/4-D weight tensor."""
    if weight.ndim == 2:
        return np.linalg.norm(weight, axis=1)
    if weight.ndim == 4:
        return np.linalg.norm(weight.reshape(weight.shape[0], -1), axis=1)
    raise ValueError(f"unsupported weight rank {weight.ndim}")


class StructuredFilterPruning(SparseTrainingMethod):
    """Gradually deactivate the lowest-norm filters along an Eq. 4 ramp.

    Sparsity is measured in *weights*, but pruning granularity is whole
    filters (output channels for conv, output neurons for linear).  The
    final layer (classifier) keeps all of its output units: removing a
    class row would change the task.

    Parameters
    ----------
    final_sparsity:
        Target fraction of weights removed (approximate — quantized to
        whole filters).
    """

    name = "structured"

    def __init__(
        self,
        final_sparsity: float = 0.5,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        ramp_power: float = 3.0,
        protect_last_layer: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < final_sparsity < 1.0:
            raise ValueError(f"final_sparsity must be in (0, 1), got {final_sparsity}")
        self.final_sparsity = float(final_sparsity)
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.ramp_power = float(ramp_power)
        self.protect_last_layer = protect_last_layer
        self._rng = rng
        self.ramp: Optional[SparsityRamp] = None
        self.pruned_filters: Dict[str, List[int]] = {}

    def setup(self) -> None:
        if self.update_frequency >= self.total_iterations:
            self.update_frequency = max(1, self.total_iterations - 1)
        self.masks = SparsityManager(self.model, rng=self._rng)
        num_rounds = max(1, self.total_iterations // self.update_frequency)
        self.ramp = SparsityRamp(
            0.0,
            self.final_sparsity,
            t_start=0,
            num_rounds=num_rounds,
            update_frequency=self.update_frequency,
            power=self.ramp_power,
        )
        self.pruned_filters = {name: [] for name in self.masks.masks}

    def _prunable_layers(self) -> List[str]:
        names = list(self.masks.masks)
        if self.protect_last_layer and names:
            names = names[:-1]
        return names

    def after_backward(self, iteration: int) -> None:
        if (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration < self.total_iterations
        ):
            self._prune_filters(iteration)
        self.masks.apply_to_gradients()

    def _prune_filters(self, iteration: int) -> None:
        target = self.ramp.sparsity_at(iteration)
        for name in self._prunable_layers():
            parameter = self.masks.parameters[name]
            num_filters = parameter.shape[0]
            weights_per_filter = parameter.size // num_filters
            target_pruned = int(target * num_filters)
            # Always keep at least one filter alive.
            target_pruned = min(target_pruned, num_filters - 1)
            already = len(self.pruned_filters[name])
            extra = target_pruned - already
            if extra <= 0:
                continue
            norms = filter_norms(parameter.data)
            norms[self.pruned_filters[name]] = np.inf  # never re-rank dead filters
            victims = np.argsort(norms)[:extra]
            state = self.masks.states[name]
            for victim in victims:
                state.mask[victim] = 0.0
                self.pruned_filters[name].append(int(victim))
            state.touch()
        self.masks.apply_masks()
        self._record_mask_update()

    def filter_sparsity(self) -> Dict[str, float]:
        """Fraction of filters removed per layer."""
        out = {}
        for name in self.masks.masks:
            total = self.masks.parameters[name].shape[0]
            out[name] = len(self.pruned_filters[name]) / total
        return out

    def __repr__(self) -> str:
        return f"StructuredFilterPruning(final_sparsity={self.final_sparsity})"
