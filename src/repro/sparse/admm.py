"""ADMM pruning baseline (Deng et al., TNNLS 2021 — paper Table II).

Alternating Direction Method of Multipliers pruning trains *dense*
weights under an augmented-Lagrangian penalty that pulls them towards a
sparse auxiliary variable ``Z``:

    min_W  L(W) + (rho/2) ||W - Z + U||^2
    Z <- Pi_S(W + U)        (projection onto the sparsity constraint)
    U <- U + W - Z           (dual ascent)

After the ADMM phase, weights are hard-pruned by magnitude to the
target per-layer sparsity and the surviving weights are fine-tuned
under a static mask (the classic train-prune-retrain shape of Fig. 1's
orange curve).

A thin strategy over the sparsity engine: the dual variables live
here, the hard prune is the engine's magnitude initialisation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .engine import SparseTrainingMethod, SparsityManager
from .erk import build_distribution


class ADMMPruner(SparseTrainingMethod):
    """Train-prune-retrain with ADMM regularization.

    Parameters
    ----------
    sparsity:
        Target global sparsity after hard pruning.
    total_iterations:
        Length of the full run; the first ``admm_fraction`` of it is the
        ADMM (dense) phase, the rest is masked fine-tuning.
    rho:
        Penalty coefficient of the augmented Lagrangian.
    update_frequency:
        Iterations between ``Z``/``U`` updates.
    """

    name = "admm"

    def __init__(
        self,
        sparsity: float = 0.9,
        total_iterations: int = 1000,
        admm_fraction: float = 0.5,
        rho: float = 1e-2,
        update_frequency: int = 50,
        distribution: str = "erk",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < sparsity < 1.0:
            raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
        if not 0.0 < admm_fraction < 1.0:
            raise ValueError(f"admm_fraction must be in (0, 1), got {admm_fraction}")
        self.target_sparsity = float(sparsity)
        self.total_iterations = int(total_iterations)
        self.admm_fraction = float(admm_fraction)
        self.rho = float(rho)
        self.update_frequency = int(update_frequency)
        self.distribution = distribution
        self._rng = rng
        self.Z: Dict[str, np.ndarray] = {}
        self.U: Dict[str, np.ndarray] = {}
        self.densities: Dict[str, float] = {}
        self.pruned = False
        self.sparsity_trace: List[float] = []

    @property
    def admm_end(self) -> int:
        """Iteration at which hard pruning happens."""
        return int(self.total_iterations * self.admm_fraction)

    def setup(self) -> None:
        self.masks = SparsityManager(self.model, rng=self._rng)
        self.densities = build_distribution(
            self.distribution, self.masks.shapes, 1.0 - self.target_sparsity
        )
        self.Z = {}
        self.U = {}
        for name, parameter in self.masks.parameters.items():
            self.U[name] = np.zeros(parameter.shape, dtype=np.float32)
            self.Z[name] = self._project(parameter.data, self.densities[name])
        self.pruned = False
        self.sparsity_trace = []

    @staticmethod
    def _project(weights: np.ndarray, density: float) -> np.ndarray:
        """Euclidean projection onto the k-sparse set (keep top-|w|)."""
        flat = weights.reshape(-1)
        keep = max(1, int(round(density * flat.size)))
        projected = np.zeros_like(flat)
        order = np.argpartition(np.abs(flat), flat.size - keep)[flat.size - keep:]
        projected[order] = flat[order]
        return projected.reshape(weights.shape)

    def after_backward(self, iteration: int) -> None:
        if self.pruned:
            self.masks.apply_to_gradients()
            return
        if iteration >= self.admm_end:
            self._hard_prune()
            self.masks.apply_to_gradients()
            return
        # ADMM phase: dense training with the augmented-Lagrangian pull.
        for name, parameter in self.masks.parameters.items():
            if parameter.grad is None:
                continue
            parameter.grad += self.rho * (parameter.data - self.Z[name] + self.U[name])
        if iteration > 0 and iteration % self.update_frequency == 0:
            self._dual_update()

    def _dual_update(self) -> None:
        for name, parameter in self.masks.parameters.items():
            self.Z[name] = self._project(parameter.data + self.U[name], self.densities[name])
            self.U[name] += parameter.data - self.Z[name]

    def _hard_prune(self) -> None:
        """Magnitude-prune to the target distribution, freeze the mask."""
        self.masks.init_from_magnitude(self.densities)
        self.pruned = True
        self._record_mask_update()

    def after_step(self, iteration: int) -> None:
        if self.pruned:
            self.masks.apply_masks()
        self.sparsity_trace.append(self.sparsity())

    def sparsity(self) -> float:
        if not self.pruned:
            return 0.0
        return self.masks.sparsity()

    def state_arrays(self) -> Dict[str, np.ndarray]:
        # The duals only drive the ADMM (pre-prune) phase; after the
        # hard prune the checkpointed mask carries everything.
        if self.pruned:
            return {}
        arrays = {}
        for name, value in self.Z.items():
            arrays[f"Z.{name}"] = value
        for name, value in self.U.items():
            arrays[f"U.{name}"] = value
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        for key, value in arrays.items():
            if key.startswith("Z."):
                self.Z[key[len("Z."):]] = np.array(value, copy=True)
            elif key.startswith("U."):
                self.U[key[len("U."):]] = np.array(value, copy=True)

    def state_meta(self) -> Dict:
        meta = super().state_meta()
        meta["pruned"] = self.pruned
        meta["sparsity_trace"] = [float(s) for s in self.sparsity_trace]
        return meta

    def load_state_meta(self, meta: Dict) -> None:
        super().load_state_meta(meta)
        self.pruned = bool(meta.get("pruned", self.pruned))
        self.sparsity_trace = list(meta.get("sparsity_trace", self.sparsity_trace))

    def __repr__(self) -> str:
        return (
            f"ADMMPruner(sparsity={self.target_sparsity}, rho={self.rho}, "
            f"admm_fraction={self.admm_fraction})"
        )
