"""Topology analysis of sparse masks.

Dynamic sparse training is topology search; these utilities quantify
what the drop-and-grow process discovers — degree distributions, dead
units, and input-to-output connectivity — in the spirit of the analyses
in the SET/RigL literature.  Useful for diagnosing why one growth
criterion beats another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import networkx as nx
import numpy as np


def _as_matrix(mask: np.ndarray) -> np.ndarray:
    """Collapse a conv mask (F, C, kh, kw) to (F, C*kh*kw)."""
    if mask.ndim == 2:
        return mask
    if mask.ndim == 4:
        return mask.reshape(mask.shape[0], -1)
    raise ValueError(f"unsupported mask rank {mask.ndim}")


@dataclass
class DegreeStats:
    """In/out degree summary of one sparse layer."""

    mean_in: float
    mean_out: float
    std_in: float
    std_out: float
    dead_outputs: int
    dead_inputs: int

    @property
    def has_dead_units(self) -> bool:
        return self.dead_outputs > 0 or self.dead_inputs > 0


def degree_statistics(mask: np.ndarray) -> DegreeStats:
    """Degree statistics of one layer's mask.

    Rows are output units (filters/neurons), columns input connections.
    """
    matrix = _as_matrix(np.asarray(mask))
    out_degree = matrix.sum(axis=1)
    in_degree = matrix.sum(axis=0)
    return DegreeStats(
        mean_in=float(in_degree.mean()),
        mean_out=float(out_degree.mean()),
        std_in=float(in_degree.std()),
        std_out=float(out_degree.std()),
        dead_outputs=int((out_degree == 0).sum()),
        dead_inputs=int((in_degree == 0).sum()),
    )


def mask_bipartite_graph(mask: np.ndarray) -> nx.Graph:
    """Bipartite graph of one layer: inputs <-> outputs via active weights.

    Output nodes are ``("out", i)``, input nodes ``("in", j)``.
    """
    matrix = _as_matrix(np.asarray(mask))
    graph = nx.Graph()
    graph.add_nodes_from([("out", i) for i in range(matrix.shape[0])], bipartite=0)
    graph.add_nodes_from([("in", j) for j in range(matrix.shape[1])], bipartite=1)
    rows, cols = np.nonzero(matrix)
    graph.add_edges_from((("out", int(r)), ("in", int(c))) for r, c in zip(rows, cols))
    return graph


def layer_chain_graph(masks: Sequence[np.ndarray]) -> nx.DiGraph:
    """Directed unit graph of a chain of layers.

    Node ``(k, i)`` is unit ``i`` at interface ``k`` (interface 0 is the
    network input).  For conv masks, "units" are channels: an edge
    exists if any kernel element connecting the channels is active.
    """
    graph = nx.DiGraph()
    for k, mask in enumerate(masks):
        mask = np.asarray(mask)
        if mask.ndim == 4:
            channel_mask = mask.reshape(mask.shape[0], mask.shape[1], -1).max(axis=2)
        else:
            channel_mask = mask
        rows, cols = np.nonzero(channel_mask)
        graph.add_edges_from(((k, int(c)), (k + 1, int(r))) for r, c in zip(rows, cols))
    return graph


def input_output_connectivity(masks: Sequence[np.ndarray]) -> float:
    """Fraction of output units reachable from at least one input unit.

    A unit with no active path back to the input can never be driven;
    drop-and-grow should keep this near 1.0.
    """
    if not masks:
        raise ValueError("need at least one mask")
    graph = layer_chain_graph(masks)
    depth = len(masks)
    first = np.asarray(masks[0])
    last = np.asarray(masks[-1])
    num_inputs = first.shape[1] if first.ndim == 2 else first.shape[1]
    num_outputs = last.shape[0]
    reachable = set()
    for j in range(num_inputs):
        source = (0, j)
        if source in graph:
            reachable |= nx.descendants(graph, source)
    connected = sum(1 for i in range(num_outputs) if (depth, i) in reachable)
    return connected / num_outputs if num_outputs else 0.0


def analyze_masks(masks: Dict[str, np.ndarray]) -> Dict[str, DegreeStats]:
    """Per-layer degree statistics for a whole mask dict."""
    return {name: degree_statistics(mask) for name, mask in masks.items()}


def topology_change(before: Dict[str, np.ndarray], after: Dict[str, np.ndarray]) -> Dict[str, float]:
    """Jaccard-style churn per layer: fraction of active positions changed.

    0.0 means identical topology; 1.0 means completely disjoint.
    """
    out: Dict[str, float] = {}
    for name in before:
        a = np.asarray(before[name]).reshape(-1) > 0
        b = np.asarray(after[name]).reshape(-1) > 0
        union = np.logical_or(a, b).sum()
        if union == 0:
            out[name] = 0.0
            continue
        intersection = np.logical_and(a, b).sum()
        out[name] = 1.0 - intersection / union
    return out
