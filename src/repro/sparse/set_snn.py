"""SET-SNN baseline: Sparse Evolutionary Training on spiking networks.

SET (Mocanu et al., Nature Communications 2018) keeps sparsity constant:
every update round it drops a fixed fraction ``zeta`` of the smallest-
magnitude active weights per layer and regrows the *same number* of
connections at random inactive positions.

A thin strategy over :class:`~repro.sparse.engine.DropGrowMethod`:
drop ``zeta * n_active``, grow the same count at random.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .engine import DropGrowMethod
from .erk import build_distribution


class SETSNN(DropGrowMethod):
    """Constant-sparsity drop-and-grow with random regrowth.

    Parameters
    ----------
    sparsity:
        Constant global sparsity maintained throughout training.
    prune_rate:
        Fraction ``zeta`` of active weights replaced per round (SET
        uses a constant rate; 0.3 is the conventional default).
    """

    name = "set"

    def __init__(
        self,
        sparsity: float = 0.9,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        prune_rate: float = 0.3,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        if not 0.0 < prune_rate < 1.0:
            raise ValueError(f"prune_rate must be in (0, 1), got {prune_rate}")
        super().__init__(
            total_iterations=total_iterations,
            update_frequency=update_frequency,
            stop_fraction=stop_fraction,
            distribution=distribution,
            rng=rng,
        )
        self.target_sparsity = float(sparsity)
        self.prune_rate = float(prune_rate)

    def initial_densities(self) -> Dict[str, float]:
        return build_distribution(
            self.distribution, self.masks.shapes, 1.0 - self.target_sparsity
        )

    def _is_update_step(self, iteration: int) -> bool:
        # SET's historical horizon is the raw stop iteration, not the
        # round-quantized (and min-one-round clamped) base-class one:
        # with stop_fraction < update_frequency/total the topology must
        # stay frozen for the whole run.
        horizon = int(self.total_iterations * self.stop_fraction)
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration <= horizon
            and iteration < self.total_iterations
        )

    def round_death_rate(self, iteration: int) -> float:
        return self.prune_rate

    def drop_count(self, name: str, iteration: int) -> int:
        n_active = self.masks.nonzero_count(name)
        count = int(self.prune_rate * n_active)
        return min(count, max(0, n_active - 1))

    def grow_count(self, name: str, iteration: int, dropped: int) -> int:
        return dropped

    def growth_scores(self, name: str) -> None:
        return None  # random regrowth

    def __repr__(self) -> str:
        return f"SETSNN(sparsity={self.target_sparsity}, zeta={self.prune_rate})"
