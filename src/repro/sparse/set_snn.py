"""SET-SNN baseline: Sparse Evolutionary Training on spiking networks.

SET (Mocanu et al., Nature Communications 2018) keeps sparsity constant:
every update round it drops a fixed fraction ``zeta`` of the smallest-
magnitude active weights per layer and regrows the *same number* of
connections at random inactive positions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import SparseTrainingMethod
from .erk import build_distribution
from .mask import MaskManager
from .ndsnn import UpdateRecord


class SETSNN(SparseTrainingMethod):
    """Constant-sparsity drop-and-grow with random regrowth.

    Parameters
    ----------
    sparsity:
        Constant global sparsity maintained throughout training.
    prune_rate:
        Fraction ``zeta`` of active weights replaced per round (SET
        uses a constant rate; 0.3 is the conventional default).
    """

    name = "set"

    def __init__(
        self,
        sparsity: float = 0.9,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        prune_rate: float = 0.3,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        if not 0.0 < prune_rate < 1.0:
            raise ValueError(f"prune_rate must be in (0, 1), got {prune_rate}")
        self.target_sparsity = float(sparsity)
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.prune_rate = float(prune_rate)
        self.stop_fraction = float(stop_fraction)
        self.distribution = distribution
        self._rng = rng
        self.history: List[UpdateRecord] = []

    def setup(self) -> None:
        self.masks = MaskManager(self.model, rng=self._rng)
        densities = build_distribution(
            self.distribution, self.masks.shapes, 1.0 - self.target_sparsity
        )
        self.masks.init_random(densities)
        self.history = []

    def _is_update_step(self, iteration: int) -> bool:
        horizon = int(self.total_iterations * self.stop_fraction)
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration <= horizon
            and iteration < self.total_iterations
        )

    def after_backward(self, iteration: int) -> None:
        if self._is_update_step(iteration):
            self._replace_connections(iteration)
        self.masks.apply_to_gradients()

    def _replace_connections(self, iteration: int) -> None:
        record = UpdateRecord(iteration=iteration, death_rate=self.prune_rate)
        for name in self.masks.masks:
            n_active = self.masks.nonzero_count(name)
            count = int(self.prune_rate * n_active)
            count = min(count, max(0, n_active - 1))
            dropped = self.masks.drop_by_magnitude(name, count)
            grown = self.masks.grow_random(name, dropped.size)
            self._reset_momentum(name, grown)
            record.dropped[name] = int(dropped.size)
            record.grown[name] = int(grown.size)
        self.masks.apply_masks()
        record.sparsity_after = self.masks.sparsity()
        self.history.append(record)

    def __repr__(self) -> str:
        return f"SETSNN(sparsity={self.target_sparsity}, zeta={self.prune_rate})"
