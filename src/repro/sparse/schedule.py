"""Sparsity and death-ratio schedules (paper Eqs. 4 and 5).

Two schedules drive NDSNN:

* :class:`SparsityRamp` — Eq. 4, the per-layer *training sparsity*
  ramps from the initial distribution ``theta_i`` to the final
  distribution ``theta_f`` along a cubic curve, so the model spends
  most of training already very sparse (the green curve of Fig. 1).

* :class:`CosineDeathSchedule` — Eq. 5, the *death ratio* (fraction of
  active weights dropped at each update round) anneals from ``d0`` to
  ``d_min`` with a half cosine, mirroring SGDR-style annealing.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping


class SparsityRamp:
    """Paper Eq. 4: cubic interpolation between two sparsity levels.

    ``theta(t) = theta_f + (theta_i - theta_f) * (1 - (t - t0)/(n*dT))^p``

    with ``p = 3`` in the paper (``power`` exposes the ablation knob).
    Outside the ramp window the schedule clamps to its endpoints.
    """

    def __init__(
        self,
        initial_sparsity: float,
        final_sparsity: float,
        t_start: int,
        num_rounds: int,
        update_frequency: int,
        power: float = 3.0,
    ) -> None:
        if not 0.0 <= initial_sparsity <= final_sparsity < 1.0:
            raise ValueError(
                "need 0 <= initial_sparsity <= final_sparsity < 1, got "
                f"{initial_sparsity} and {final_sparsity}"
            )
        if num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        if update_frequency < 1:
            raise ValueError("update_frequency must be >= 1")
        self.initial_sparsity = float(initial_sparsity)
        self.final_sparsity = float(final_sparsity)
        self.t_start = int(t_start)
        self.num_rounds = int(num_rounds)
        self.update_frequency = int(update_frequency)
        self.power = float(power)

    @property
    def t_end(self) -> int:
        """Iteration at which the ramp reaches the final sparsity."""
        return self.t_start + self.num_rounds * self.update_frequency

    def sparsity_at(self, iteration: int) -> float:
        """Training sparsity at ``iteration`` (clamped outside the ramp)."""
        if iteration <= self.t_start:
            return self.initial_sparsity
        if iteration >= self.t_end:
            return self.final_sparsity
        progress = (iteration - self.t_start) / (self.num_rounds * self.update_frequency)
        gap = self.initial_sparsity - self.final_sparsity
        return self.final_sparsity + gap * (1.0 - progress) ** self.power

    def __call__(self, iteration: int) -> float:
        return self.sparsity_at(iteration)

    def __repr__(self) -> str:
        return (
            f"SparsityRamp({self.initial_sparsity:.2f} -> {self.final_sparsity:.2f}, "
            f"rounds={self.num_rounds}, dT={self.update_frequency}, power={self.power})"
        )


class LayerwiseSparsityRamp:
    """Eq. 4 applied per layer, between two sparsity *distributions*.

    The initial and final distributions normally come from ERK at the
    global ``theta_i`` and ``theta_f`` respectively (paper §III-C step 1,
    "following the same scaling proportion distribution").
    """

    def __init__(
        self,
        initial: Mapping[str, float],
        final: Mapping[str, float],
        t_start: int,
        num_rounds: int,
        update_frequency: int,
        power: float = 3.0,
    ) -> None:
        if set(initial) != set(final):
            raise ValueError("initial/final distributions cover different layers")
        self.ramps: Dict[str, SparsityRamp] = {}
        for name in initial:
            init_s = min(initial[name], final[name])
            self.ramps[name] = SparsityRamp(
                init_s,
                final[name],
                t_start=t_start,
                num_rounds=num_rounds,
                update_frequency=update_frequency,
                power=power,
            )

    def sparsity_at(self, iteration: int) -> Dict[str, float]:
        """Per-layer sparsity targets at ``iteration``."""
        return {name: ramp.sparsity_at(iteration) for name, ramp in self.ramps.items()}

    def __getitem__(self, name: str) -> SparsityRamp:
        return self.ramps[name]


class CosineDeathSchedule:
    """Paper Eq. 5: cosine-annealed death (drop) ratio.

    ``d(t) = d_min + 0.5 (d0 - d_min) (1 + cos(pi t / (n dT)))``

    At ``t = 0`` the ratio is ``d0``; at ``t = n*dT`` it reaches
    ``d_min`` and stays there.
    """

    def __init__(
        self,
        initial_rate: float,
        minimum_rate: float,
        num_rounds: int,
        update_frequency: int,
    ) -> None:
        if not 0.0 <= minimum_rate <= initial_rate <= 1.0:
            raise ValueError(
                f"need 0 <= d_min <= d0 <= 1, got d0={initial_rate}, d_min={minimum_rate}"
            )
        self.initial_rate = float(initial_rate)
        self.minimum_rate = float(minimum_rate)
        self.num_rounds = int(num_rounds)
        self.update_frequency = int(update_frequency)

    def rate_at(self, iteration: int) -> float:
        """Death ratio ``d_t`` at a training iteration (clamped)."""
        horizon = self.num_rounds * self.update_frequency
        if iteration <= 0:
            return self.initial_rate
        if iteration >= horizon:
            return self.minimum_rate
        cosine = math.cos(math.pi * iteration / horizon)
        return self.minimum_rate + 0.5 * (self.initial_rate - self.minimum_rate) * (1.0 + cosine)

    def __call__(self, iteration: int) -> float:
        return self.rate_at(iteration)

    def __repr__(self) -> str:
        return (
            f"CosineDeathSchedule(d0={self.initial_rate}, d_min={self.minimum_rate}, "
            f"rounds={self.num_rounds}, dT={self.update_frequency})"
        )


class ConstantDeathSchedule:
    """Fixed death ratio (the SET baseline's behaviour)."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def rate_at(self, iteration: int) -> float:
        return self.rate

    def __call__(self, iteration: int) -> float:
        return self.rate

    def __repr__(self) -> str:
        return f"ConstantDeathSchedule(rate={self.rate})"
