"""Unified sparsity engine shared by every sparse-training method.

Two layers live here:

* :class:`MaskedParameter` — the per-layer unit of sparse state: the
  parameter itself, its binary mask, the density target, and cached CSR
  pattern/regrowth bookkeeping.  All topology edits (drop by magnitude,
  grow by score, grow random) are methods of this object, so every
  training method manipulates sparsity through exactly one code path.

* :class:`SparsityManager` — owns one :class:`MaskedParameter` per
  sparsifiable weight tensor of a model and provides network-level
  operations: distribution initialisation, mask/gradient enforcement,
  global magnitude pruning, sparsity reporting, and (optionally) layer
  binding so the forward pass can take the CSR fast path.

On top of the manager, :class:`DropGrowMethod` factors the shared
structure of the drop-and-grow family (NDSNN, SET, RigL, GMP): the
update clock, the per-round record keeping, and the momentum reset at
grown connections.  Concrete methods reduce to a handful of lines that
define per-layer drop/grow counts and growth scores.

The engine preserves the exact numerical behaviour (including RNG call
order) of the pre-refactor per-method implementations; the golden-mask
regression test pins this down for all eight methods.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..nn.module import Module, Parameter
from ..tensor.functional import STATIC_CSR_DENSITY_CUTOFF
from .erk import build_distribution

#: Execution modes for masked layers.  ``dense`` always multiplies the
#: (already masked) dense weights; ``auto`` picks CSR when the measured
#: layer density drops below the dispatch cutoff (per-shape calibrated
#: when a :class:`~repro.sparse.dispatch.CalibrationTable` is present,
#: static otherwise); ``csr`` forces the sparse kernels.
EXECUTION_MODES = ("dense", "auto", "csr")

#: Static fallback density threshold for ``auto`` execution when no
#: calibration table is attached.  Aliases the conservative cutoff in
#: :mod:`repro.tensor.functional` so uncalibrated dispatch never takes
#: a known-losing density through CSR (see ``benchmarks/bench_kernels``).
DEFAULT_CSR_THRESHOLD = STATIC_CSR_DENSITY_CUTOFF


def sparsifiable_parameters(model: Module, exclude: Iterable[str] = ()) -> List[Tuple[str, Parameter]]:
    """Named weight tensors that take part in sparsification.

    Selects parameters with ndim >= 2 (conv filters and linear weights);
    1-D parameters (biases, batch-norm scales) are left dense.
    """
    excluded = set(exclude)
    selected = []
    for name, parameter in model.named_parameters():
        if parameter.ndim >= 2 and name not in excluded:
            selected.append((name, parameter))
    return selected


class MaskedParameter:
    """Per-layer sparse state: parameter, mask, target, CSR cache.

    The mask array is shared by reference with the owning manager's
    ``masks`` dict, so in-place edits through either handle stay
    consistent.  ``pattern_version`` increments whenever the sparsity
    pattern may have changed; the CSR fast path uses it to invalidate
    its cached column-index/row-pointer structure.
    """

    __slots__ = (
        "name",
        "parameter",
        "mask",
        "density_target",
        "pattern_version",
        "_csr_cache",
        "_count_cache",
        "_count_version",
        "_values_dirty",
        "frozen",
        "manager",
    )

    def __init__(self, name: str, parameter: Parameter) -> None:
        self.name = name
        self.parameter = parameter
        self.mask: np.ndarray = np.ones(parameter.shape, dtype=np.float32)
        self.density_target: Optional[float] = None
        self.pattern_version = 0
        self._csr_cache = None
        self._count_cache: Optional[int] = None
        self._count_version = -1
        self._values_dirty = True
        self.frozen = False
        self.manager: Optional["SparsityManager"] = None
        # Back-reference so code that mutates the raw parameter (the
        # optimizer step, checkpoint restore, fault injection) can keep
        # the CSR value cache coherent without knowing about managers.
        try:
            parameter._masked_state = self
        except AttributeError:  # plain Tensor with __slots__: no cache
            pass

    # ------------------------------------------------------------------
    # Counts / reporting
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.parameter.size

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.parameter.shape

    def nonzero_count(self) -> int:
        # Cached per pattern version: the count only changes at topology
        # edits (all of which call touch), and auto-mode dispatch asks
        # for it on every forward.
        if self._count_version != self.pattern_version:
            self._count_cache = int(self.mask.sum())
            self._count_version = self.pattern_version
        return self._count_cache

    def density(self) -> float:
        return self.nonzero_count() / self.size

    def sparsity(self) -> float:
        return 1.0 - self.density()

    # ------------------------------------------------------------------
    # Mask replacement / enforcement
    # ------------------------------------------------------------------
    def set_mask(self, mask: np.ndarray) -> None:
        """Replace the mask (shape-checked); invalidates the CSR cache."""
        if mask.shape != self.parameter.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match parameter "
                f"{self.name!r} shape {self.parameter.shape}"
            )
        self.mask[...] = mask.astype(np.float32)
        self.touch()

    def _frozen_error(self, action: str) -> RuntimeError:
        return RuntimeError(
            f"parameter {self.name!r} is frozen for inference: {action} "
            "would invalidate the read-only CSR value buffer a server may "
            "be reading concurrently; call thaw() (or "
            "SparsityManager.thaw()) before mutating weights or topology"
        )

    def touch(self) -> None:
        """Mark the sparsity pattern as changed."""
        if self.frozen:
            raise self._frozen_error("a topology edit")
        self.pattern_version += 1
        self._csr_cache = None
        self._values_dirty = True

    def apply_mask(self) -> None:
        """Zero out masked weight entries (idempotent)."""
        self.parameter.data *= self.mask

    def apply_grad_mask(self) -> None:
        """Zero gradients of inactive weights."""
        if self.parameter.grad is not None:
            self.parameter.grad *= self.mask

    # ------------------------------------------------------------------
    # Topology edits
    # ------------------------------------------------------------------
    def drop_by_magnitude(self, count: int) -> np.ndarray:
        """Deactivate the ``count`` active weights closest to zero.

        Returns the flat indices that were dropped.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        mask_flat = self.mask.reshape(-1)
        weight_flat = self.parameter.data.reshape(-1)
        active = np.flatnonzero(mask_flat)
        count = min(count, active.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        magnitudes = np.abs(weight_flat[active])
        chosen = active[np.argpartition(magnitudes, count - 1)[:count]]
        mask_flat[chosen] = 0.0
        weight_flat[chosen] = 0.0
        self.touch()
        return chosen

    def drop_by_score(self, count: int, scores: np.ndarray) -> np.ndarray:
        """Deactivate the ``count`` active positions with the lowest score.

        ``scores`` is a dense array over the full weight tensor; the
        streaming adaptation layer passes activity-weighted magnitudes
        where training-time methods use raw magnitude (which
        :meth:`drop_by_magnitude` keeps computing itself — this is the
        generalized variant, not a replacement).  Returns the dropped
        flat indices.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        mask_flat = self.mask.reshape(-1)
        weight_flat = self.parameter.data.reshape(-1)
        active = np.flatnonzero(mask_flat)
        count = min(count, active.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        score_flat = np.abs(scores.reshape(-1)[active])
        chosen = active[np.argpartition(score_flat, count - 1)[:count]]
        mask_flat[chosen] = 0.0
        weight_flat[chosen] = 0.0
        self.touch()
        return chosen

    def grow_by_score(self, count: int, scores: np.ndarray) -> np.ndarray:
        """Activate the ``count`` inactive positions with the highest score.

        ``scores`` is a dense array over the full weight tensor (e.g.
        gradient magnitude for RigL/NDSNN).  New weights start at zero,
        following the RigL convention.  Returns the grown flat indices.
        """
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        mask_flat = self.mask.reshape(-1)
        weight_flat = self.parameter.data.reshape(-1)
        inactive = np.flatnonzero(mask_flat == 0.0)
        count = min(count, inactive.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        score_flat = np.abs(scores.reshape(-1)[inactive])
        chosen = inactive[np.argpartition(score_flat, score_flat.size - count)[-count:]]
        mask_flat[chosen] = 1.0
        weight_flat[chosen] = 0.0
        self.touch()
        return chosen

    def grow_random(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Activate ``count`` random inactive positions (SET growth)."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        mask_flat = self.mask.reshape(-1)
        weight_flat = self.parameter.data.reshape(-1)
        inactive = np.flatnonzero(mask_flat == 0.0)
        count = min(count, inactive.size)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        chosen = rng.choice(inactive, size=count, replace=False)
        mask_flat[chosen] = 1.0
        weight_flat[chosen] = 0.0
        self.touch()
        return chosen

    # ------------------------------------------------------------------
    # CSR fast path support
    # ------------------------------------------------------------------
    def csr_pattern(self):
        """Cached CSR pattern of the current mask (lazy).

        Returns a :class:`~repro.sparse.storage.CSRPattern` keyed to the
        current ``pattern_version``.  Weight *values* live in the
        pattern's persistent buffer, maintained write-through by the
        optimizer step (:meth:`write_through`); topology edits are the
        only event that rebuilds the index structure.
        """
        if self._csr_cache is None:
            from .storage import CSRPattern

            self._csr_cache = CSRPattern.from_mask(self.mask)
            self._values_dirty = True
        return self._csr_cache

    def csr_values(self) -> np.ndarray:
        """Active weight values in CSR order, refreshed only when stale.

        On the steady-state training path the optimizer's write-through
        hook keeps the buffer current, so this is a flag check plus a
        buffer return — the per-forward re-gather the historical CSR
        path paid is gone.
        """
        pattern = self.csr_pattern()
        if self._values_dirty:
            pattern.gather(self.parameter.data)
            self._values_dirty = False
        return pattern.values

    def mark_values_dirty(self) -> None:
        """Note an out-of-band weight mutation (checkpoint restore,
        fault injection); the next :meth:`csr_values` re-gathers.

        Raises on a frozen state: out-of-band mutations (e.g.
        ``load_state_dict`` into a serving model, fault injection) must
        fail loudly instead of silently dirtying a buffer the inference
        path will never refresh.
        """
        if self.frozen:
            raise self._frozen_error("an out-of-band weight mutation")
        self._values_dirty = True

    # ------------------------------------------------------------------
    # Inference freezing
    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Enter inference-frozen mode: values current, buffer read-only.

        Gathers the active values one final time, locks the CSR value
        buffer, and disables gradient tracking on the parameter.  Every
        subsequent mutation path — topology edits, write-through,
        ``load_state_dict``, fault injection — raises a clear error
        instead of corrupting what a serving thread is reading.
        Idempotent.
        """
        if self.frozen:
            return
        self.apply_mask()
        pattern = self.csr_pattern()
        if self._values_dirty:
            pattern.gather(self.parameter.data)
            self._values_dirty = False
        pattern.freeze()
        self.parameter.requires_grad = False
        self.frozen = True

    def thaw(self) -> None:
        """Leave inference-frozen mode; the state is trainable again."""
        if not self.frozen:
            return
        if self._csr_cache is not None:
            self._csr_cache.thaw()
        self.parameter.requires_grad = True
        self.frozen = False

    def write_through(self) -> None:
        """Refresh the cached CSR values after an in-place weight update.

        Called by ``Optimizer.step`` right after it updates this
        parameter.  When the layer is currently routed through the CSR
        kernels the active values are written straight into the cached
        buffer (one gather per *step*, amortized over every timestep
        forward and input-gradient product); otherwise the refresh is
        deferred with a dirty flag so dense-mode training pays nothing.
        """
        if self.frozen:
            raise self._frozen_error("an optimizer step")
        self._values_dirty = True
        cache = self._csr_cache
        if cache is None:
            return
        manager = self.manager
        if manager is None or not manager.use_csr(self):
            return
        cache.gather(self.parameter.data)
        self._values_dirty = False

    def __repr__(self) -> str:
        return (
            f"MaskedParameter({self.name!r}, shape={self.shape}, "
            f"density={self.density():.3f})"
        )


class SparsityManager:
    """Owns the :class:`MaskedParameter` states of a sparse model.

    Drop-in successor of the historical ``MaskManager``: the ``masks``
    and ``parameters`` dict attributes are kept (sharing storage with
    the per-layer states) so method code and tests written against the
    old interface keep working unchanged.

    Parameters
    ----------
    model:
        The network whose weight tensors are masked.
    exclude:
        Parameter names exempt from sparsification.
    rng:
        Random generator used for topology initialisation and random
        growth (SET).
    """

    def __init__(
        self,
        model: Module,
        exclude: Iterable[str] = (),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        selected = sparsifiable_parameters(model, exclude)
        if not selected:
            raise ValueError("model has no sparsifiable parameters")
        self.states: "OrderedDict[str, MaskedParameter]" = OrderedDict()
        for name, parameter in selected:
            state = MaskedParameter(name, parameter)
            state.manager = self
            self.states[name] = state
        self.parameters: Dict[str, Parameter] = {
            name: state.parameter for name, state in self.states.items()
        }
        self.masks: Dict[str, np.ndarray] = {
            name: state.mask for name, state in self.states.items()
        }
        self.rng = rng if rng is not None else np.random.default_rng()
        self.execution = "dense"
        self.csr_threshold = DEFAULT_CSR_THRESHOLD
        #: Optional per-shape measured dispatch table
        #: (:class:`~repro.sparse.dispatch.CalibrationTable`); when
        #: present it overrides ``csr_threshold`` under ``auto``.
        self.calibration = None
        self._bound = False

    # ------------------------------------------------------------------
    # Shapes / counts
    # ------------------------------------------------------------------
    @property
    def shapes(self) -> Dict[str, Tuple[int, ...]]:
        return {name: state.shape for name, state in self.states.items()}

    def layer_size(self, name: str) -> int:
        return self.states[name].size

    @property
    def total_weights(self) -> int:
        return sum(state.size for state in self.states.values())

    def nonzero_count(self, name: str) -> int:
        return self.states[name].nonzero_count()

    @property
    def total_nonzero(self) -> int:
        return sum(state.nonzero_count() for state in self.states.values())

    # ------------------------------------------------------------------
    # Sparsity reporting
    # ------------------------------------------------------------------
    def layer_sparsity(self, name: str) -> float:
        return self.states[name].sparsity()

    def sparsity(self) -> float:
        """Global sparsity over all sparsifiable weights."""
        return 1.0 - self.total_nonzero / self.total_weights

    def density(self) -> float:
        return 1.0 - self.sparsity()

    def sparsity_distribution(self) -> Dict[str, float]:
        return {name: state.sparsity() for name, state in self.states.items()}

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def init_random(self, densities: Dict[str, float]) -> None:
        """Random topology at the requested per-layer densities.

        The number of active weights per layer is the rounded density
        times the layer size, clamped to at least one active weight.
        """
        for name, state in self.states.items():
            density = densities[name]
            size = state.size
            keep = int(round(density * size))
            keep = max(1, min(size, keep))
            mask = np.zeros(size, dtype=np.float32)
            active = self.rng.choice(size, size=keep, replace=False)
            mask[active] = 1.0
            state.set_mask(mask.reshape(state.shape))
            state.density_target = density
        self.apply_masks()

    def init_from_magnitude(self, densities: Dict[str, float]) -> None:
        """Keep the largest-magnitude weights per layer (pruning init)."""
        for name, state in self.states.items():
            density = densities[name]
            size = state.size
            keep = max(1, min(size, int(round(density * size))))
            flat = np.abs(state.parameter.data.reshape(-1))
            threshold_index = size - keep
            order = np.argpartition(flat, threshold_index)[threshold_index:]
            mask = np.zeros(size, dtype=np.float32)
            mask[order] = 1.0
            state.set_mask(mask.reshape(state.shape))
            state.density_target = density
        self.apply_masks()

    def init_distribution(self, kind: str, density: float) -> Dict[str, float]:
        """Random topology from a named distribution (``erk``/``uniform``).

        Returns the per-layer densities that were applied.
        """
        densities = build_distribution(kind, self.shapes, density)
        self.init_random(densities)
        return densities

    def set_mask(self, name: str, mask: np.ndarray) -> None:
        """Replace one layer's mask (shape-checked)."""
        self.states[name].set_mask(mask)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def apply_masks(self) -> None:
        """Zero out every masked weight (idempotent)."""
        for state in self.states.values():
            state.apply_mask()

    def apply_to_gradients(self) -> None:
        """Zero gradients of inactive weights (only active weights train)."""
        for state in self.states.values():
            state.apply_grad_mask()

    def copy_masks(self) -> Dict[str, np.ndarray]:
        return {name: state.mask.copy() for name, state in self.states.items()}

    def load_masks(self, masks: Dict[str, np.ndarray]) -> None:
        for name, mask in masks.items():
            self.set_mask(name, mask)
        self.apply_masks()

    # ------------------------------------------------------------------
    # Topology edits (per-layer delegates, kept for API compatibility)
    # ------------------------------------------------------------------
    def drop_by_magnitude(self, name: str, count: int) -> np.ndarray:
        return self.states[name].drop_by_magnitude(count)

    def drop_by_score(self, name: str, count: int, scores: np.ndarray) -> np.ndarray:
        return self.states[name].drop_by_score(count, scores)

    def grow_by_score(self, name: str, count: int, scores: np.ndarray) -> np.ndarray:
        return self.states[name].grow_by_score(count, scores)

    def grow_random(self, name: str, count: int) -> np.ndarray:
        return self.states[name].grow_random(count, self.rng)

    # ------------------------------------------------------------------
    # Network-level pruning
    # ------------------------------------------------------------------
    def global_magnitude_threshold(
        self, sparsity: float, scores: Optional[Dict[str, np.ndarray]] = None
    ) -> float:
        """Score threshold keeping the global top-(1 - sparsity) fraction.

        ``scores`` defaults to weight magnitudes over *active* entries;
        SNIP passes sensitivity scores, LTH uses the default.
        """
        chunks = []
        for name, state in self.states.items():
            if scores is not None:
                chunks.append(np.asarray(scores[name]).reshape(-1))
            else:
                flat = state.mask.reshape(-1) > 0
                chunks.append(np.abs(state.parameter.data.reshape(-1)[flat]))
        all_scores = np.concatenate(chunks)
        total = self.total_weights
        keep = max(1, int(round((1.0 - sparsity) * total)))
        keep = min(keep, all_scores.size)
        return float(
            np.partition(all_scores, all_scores.size - keep)[all_scores.size - keep]
        )

    # ------------------------------------------------------------------
    # Layer binding / execution dispatch
    # ------------------------------------------------------------------
    def bind_layers(
        self,
        execution: Optional[str] = None,
        threshold: Optional[float] = None,
        calibrate: bool = False,
    ) -> int:
        """Attach per-layer state to the owning nn modules.

        After binding, ``Linear``/``Conv2d`` forward passes consult the
        state and (under ``auto``/``csr`` execution) run the CSR fast
        path.  ``calibrate=True`` additionally builds the measured
        per-shape dispatch table for ``auto`` execution (opt-in: plain
        binds keep the static threshold so cheap test harnesses never
        pay for timing runs).  Returns the number of layers bound.
        """
        if execution is not None:
            self.set_execution(execution)
        if threshold is not None:
            self.csr_threshold = float(threshold)
        by_parameter = {id(state.parameter): state for state in self.states.values()}
        bound = 0
        for module in self.model.modules():
            weight = module._parameters.get("weight")
            if weight is not None and id(weight) in by_parameter:
                object.__setattr__(module, "weight_state", by_parameter[id(weight)])
                bound += 1
        self._bound = True
        if calibrate and self.execution == "auto":
            self.calibrate()
        return bound

    def unbind_layers(self) -> None:
        """Detach layer state (layers fall back to the dense path)."""
        for module in self.model.modules():
            if getattr(module, "weight_state", None) is not None:
                object.__setattr__(module, "weight_state", None)
        self._bound = False

    def set_execution(self, execution: str, calibrate: bool = False) -> None:
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {execution!r} (choose from {EXECUTION_MODES})"
            )
        self.execution = execution
        if execution != "dense" and not self._bound:
            self.bind_layers()
        if calibrate and execution == "auto":
            self.calibrate()

    def calibrate(self, measure=None):
        """Build (or extend) the measured per-shape dispatch table.

        Cutoffs come from :func:`repro.sparse.dispatch.get_cutoff`,
        which consults the shared write-once cache so every process of
        a sweep converges on identical dispatch decisions.  ``measure``
        is injectable for tests.  Returns the table.
        """
        from .dispatch import CalibrationTable, measure_crossover

        table = self.calibration if self.calibration is not None else CalibrationTable()
        table.calibrate_shapes(
            (state.shape for state in self.states.values()),
            measure=measure if measure is not None else measure_crossover,
        )
        self.calibration = table
        return table

    def use_csr(self, state: MaskedParameter) -> bool:
        """Dispatch decision for one layer, by measured density."""
        if self.execution == "csr":
            return True
        if self.execution == "auto":
            return state.density() <= self._cutoff_for(state)
        return False

    def _cutoff_for(self, state: MaskedParameter) -> float:
        if self.calibration is not None:
            cutoff = self.calibration.cutoff_for(state.shape)
            if cutoff is not None:
                return cutoff
        return self.csr_threshold

    def explain_dispatch(self, name: str) -> Dict:
        """Inspectable dispatch decision for one layer.

        Returns shape, measured density, the effective density cutoff
        and where it came from (``calibrated`` table or ``static``
        fallback), and the route the next forward will take.
        """
        from .dispatch import matrix_shape

        state = self.states[name]
        calibrated = (
            self.calibration.cutoff_for(state.shape)
            if self.calibration is not None
            else None
        )
        cutoff = calibrated if calibrated is not None else self.csr_threshold
        if self.execution == "auto":
            route = "csr" if state.density() <= cutoff else "dense"
        else:
            route = "csr" if self.execution == "csr" else "dense"
        return {
            "layer": name,
            "shape": matrix_shape(state.shape),
            "density": round(state.density(), 4),
            "cutoff": round(float(cutoff), 4),
            "cutoff_source": "calibrated" if calibrated is not None else "static",
            "execution": self.execution,
            "route": route,
        }

    # ------------------------------------------------------------------
    # Inference freezing
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """True when every layer state is inference-frozen."""
        return all(state.frozen for state in self.states.values())

    def freeze(self) -> "SparsityManager":
        """Lock the whole model for inference serving.

        Applies the masks one final time, binds the layers if needed
        (so the CSR fast path is reachable), then freezes every layer
        state: CSR values are gathered and their buffers made
        read-only, dense gradient tracking is switched off, and any
        further mutation — optimizer steps, ``load_state_dict``,
        topology edits, fault injection — raises a clear error.
        Idempotent; reversed by :meth:`thaw`.
        """
        self.apply_masks()
        if not self._bound:
            self.bind_layers()
        for state in self.states.values():
            state.freeze()
        return self

    def thaw(self) -> "SparsityManager":
        """Reverse :meth:`freeze`; the model is trainable again."""
        for state in self.states.values():
            state.thaw()
        return self

    def refresh_values(self) -> None:
        """Eagerly rebuild CSR values for layers on the CSR route.

        Called after topology edits so the index rebuild and the value
        gather happen at the mask-update site, not on the next forward.
        """
        if self.execution == "dense":
            return
        for state in self.states.values():
            if self.use_csr(state):
                state.csr_values()

    def __repr__(self) -> str:
        return (
            f"SparsityManager(layers={len(self.states)}, "
            f"sparsity={self.sparsity():.3f}, execution={self.execution!r})"
        )


@dataclass
class UpdateRecord:
    """Audit record of one drop-and-grow round (used by tests/benches)."""

    iteration: int
    death_rate: float
    dropped: Dict[str, int] = field(default_factory=dict)
    grown: Dict[str, int] = field(default_factory=dict)
    sparsity_after: float = 0.0

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    @property
    def total_grown(self) -> int:
        return sum(self.grown.values())


class SparseTrainingMethod:
    """Base class for everything in the Table I method column.

    The :class:`~repro.train.trainer.Trainer` drives methods through
    hooks per iteration:

    1. ``after_backward(iteration)`` — gradients for *all* weights
       (active and inactive) are available; dynamic methods may update
       topology here (gradient-based growth needs the dense gradient)
       and must mask gradients so only active weights are updated.
    2. (optimizer step happens)
    3. ``after_step(iteration)`` — re-enforce masks (momentum terms can
       perturb pruned weights).

    Epoch-level hooks support methods with coarse phase structure
    (ADMM's dual updates, LTH's round boundaries live outside single
    runs).  Topology changes are announced through
    :attr:`mask_update_count` / :attr:`last_update` so trainer callbacks
    can observe ``on_mask_update`` events.
    """

    name = "base"

    def __init__(self) -> None:
        self.model: Optional[Module] = None
        self.optimizer = None
        self.masks: Optional[SparsityManager] = None
        self.last_update: Optional[UpdateRecord] = None
        self.mask_update_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, model: Module, optimizer) -> None:
        """Attach the method to a model/optimizer pair before training."""
        self.model = model
        self.optimizer = optimizer
        self.setup()

    def setup(self) -> None:
        """Initialise masks; called once from :meth:`bind`."""

    def set_execution(
        self,
        execution: str,
        threshold: Optional[float] = None,
        calibrate: bool = False,
    ) -> None:
        """Select dense/auto/csr execution for the masked layers.

        ``calibrate=True`` builds the measured per-shape dispatch table
        when ``execution`` is ``auto`` (the experiment runners pass it;
        direct engine users opt in explicitly).
        """
        if self.masks is not None:
            if threshold is not None:
                self.masks.csr_threshold = float(threshold)
            self.masks.set_execution(execution, calibrate=calibrate)

    # ------------------------------------------------------------------
    # Per-iteration hooks
    # ------------------------------------------------------------------
    def after_backward(self, iteration: int) -> None:
        """Called when gradients are available, before the optimizer step."""
        if self.masks is not None:
            self.masks.apply_to_gradients()

    def after_step(self, iteration: int) -> None:
        """Called after the optimizer step."""
        if self.masks is not None:
            self.masks.apply_masks()

    # ------------------------------------------------------------------
    # Per-epoch hooks
    # ------------------------------------------------------------------
    def on_epoch_begin(self, epoch: int) -> None:
        """Called at the start of every epoch."""

    def on_epoch_end(self, epoch: int) -> None:
        """Called at the end of every epoch."""

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Method-specific arrays to checkpoint (masks are saved separately).

        Methods carrying dense auxiliary tensors (ADMM duals, SNIP
        sensitivity scores) override this; the drop-and-grow family has
        no array state beyond the masks.
        """
        return {}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore arrays saved by :meth:`state_arrays`."""

    def state_meta(self) -> Dict:
        """JSON-able method state: RNG position and counters.

        Restoring this (plus the masks and :meth:`state_arrays`) into a
        freshly bound method puts it exactly where it was at the
        checkpointed epoch boundary, so a resumed run replays the same
        topology-update and growth decisions bit for bit.
        """
        meta: Dict = {"mask_update_count": self.mask_update_count}
        if self.masks is not None:
            meta["rng_state"] = self.masks.rng.bit_generator.state
        return meta

    def load_state_meta(self, meta: Dict) -> None:
        """Restore state saved by :meth:`state_meta`."""
        self.mask_update_count = int(meta.get("mask_update_count", self.mask_update_count))
        rng_state = meta.get("rng_state")
        if rng_state is not None and self.masks is not None:
            self.masks.rng.bit_generator.state = rng_state

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def sparsity(self) -> float:
        """Current global sparsity of the sparsifiable weights."""
        if self.masks is None:
            return 0.0
        return self.masks.sparsity()

    def density(self) -> float:
        return 1.0 - self.sparsity()

    def sparsity_distribution(self) -> Dict[str, float]:
        if self.masks is None:
            return {}
        return self.masks.sparsity_distribution()

    def _record_mask_update(self, record: Optional[UpdateRecord] = None) -> None:
        """Announce a topology change to trainer callbacks."""
        self.last_update = record
        self.mask_update_count += 1

    def _reset_momentum(self, name: str, flat_indices: np.ndarray) -> None:
        """Zero optimizer state at newly-grown weight positions."""
        if self.optimizer is None or flat_indices.size == 0 or self.masks is None:
            return
        parameter = self.masks.parameters[name]
        reset = getattr(self.optimizer, "reset_state_entries", None)
        if reset is not None:
            reset(parameter, flat_indices)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class DenseMethod(SparseTrainingMethod):
    """No sparsification at all — the paper's dense baseline."""

    name = "dense"

    def after_backward(self, iteration: int) -> None:  # no masks to apply
        return

    def after_step(self, iteration: int) -> None:
        return

    def sparsity(self) -> float:
        return 0.0


class StaticMaskMethod(SparseTrainingMethod):
    """Train under a fixed mask (used for LTH retraining rounds).

    Parameters
    ----------
    masks:
        Optional dict of layer name to binary mask.  If omitted, a
        random topology at ``densities`` is drawn at setup.
    """

    name = "static"

    def __init__(
        self,
        masks: Optional[Dict[str, np.ndarray]] = None,
        densities: Optional[Dict[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self._initial_masks = masks
        self._densities = densities
        self._rng = rng

    def setup(self) -> None:
        self.masks = SparsityManager(self.model, rng=self._rng)
        if self._initial_masks is not None:
            self.masks.load_masks(self._initial_masks)
        elif self._densities is not None:
            self.masks.init_random(self._densities)
        self.masks.apply_masks()


class DropGrowMethod(SparseTrainingMethod):
    """Shared engine of the drop-and-grow family (NDSNN/SET/RigL/GMP).

    Subclasses customise four small hooks:

    * :meth:`initial_densities` — topology at setup;
    * :meth:`drop_count` — how many active weights one layer loses at
      an update round;
    * :meth:`grow_count` — how many connections it regains;
    * :meth:`growth_scores` — dense score array ranking the inactive
      positions (``None`` requests random growth).

    Everything else — the update clock, the per-round bookkeeping, the
    momentum reset at grown positions, mask re-application and the
    :class:`UpdateRecord` history — lives here once.
    """

    #: Ramp-based methods (NDSNN, GMP) shrink ``update_frequency`` at
    #: setup so very short runs still fit one update round; the
    #: constant-sparsity baselines (SET, RigL) historically do not.
    shrink_update_frequency = False

    def __init__(
        self,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if update_frequency < 1:
            raise ValueError("update_frequency must be >= 1")
        if not 0.0 < stop_fraction <= 1.0:
            raise ValueError("stop_fraction must be in (0, 1]")
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.stop_fraction = float(stop_fraction)
        self.distribution = distribution
        self._rng = rng
        self.history: List[UpdateRecord] = []

    # -- schedule geometry ---------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Number of topology-update rounds in the schedule horizon."""
        horizon = int(self.total_iterations * self.stop_fraction)
        return max(1, horizon // self.update_frequency)

    @property
    def horizon(self) -> int:
        """Iteration after which the topology freezes."""
        return self.num_rounds * self.update_frequency

    def _is_update_step(self, iteration: int) -> bool:
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration <= self.horizon
            and iteration < self.total_iterations
        )

    # -- lifecycle ------------------------------------------------------
    def setup(self) -> None:
        # Guarantee at least one update round on very short runs.
        if self.shrink_update_frequency and self.update_frequency >= self.total_iterations:
            self.update_frequency = max(1, self.total_iterations - 1)
        self.masks = SparsityManager(self.model, rng=self._rng)
        self.configure_schedules()
        densities = self.initial_densities()
        if densities is not None:
            self.masks.init_random(densities)
        self.history = []

    def configure_schedules(self) -> None:
        """Build per-method schedules; masks/shapes are available."""

    def initial_densities(self) -> Optional[Dict[str, float]]:
        """Per-layer densities for the random topology at setup.

        Return ``None`` to start dense (GMP with zero initial sparsity).
        """
        raise NotImplementedError

    # -- per-round strategy hooks --------------------------------------
    def begin_round(self, iteration: int) -> None:
        """Called once per update round before any layer is edited.

        Strategies cache round-level schedule values (death rate,
        sparsity targets) here instead of recomputing them per layer.
        """

    def drop_count(self, name: str, iteration: int) -> int:
        """Active weights layer ``name`` should lose this round."""
        raise NotImplementedError

    def grow_count(self, name: str, iteration: int, dropped: int) -> int:
        """Connections layer ``name`` regains after dropping ``dropped``."""
        raise NotImplementedError

    def growth_scores(self, name: str) -> Optional[np.ndarray]:
        """Dense score array for growth, or ``None`` for random growth."""
        raise NotImplementedError

    def drop_scores(self, name: str) -> Optional[np.ndarray]:
        """Dense score array for dropping, or ``None`` for magnitude.

        Every published method in this repo drops by weight magnitude
        (the default); the streaming adaptation layer overrides this
        with activity-weighted scores.  Lowest score is dropped first.
        """
        return None

    def round_death_rate(self, iteration: int) -> float:
        """Death/update fraction recorded on the round's audit record."""
        return 0.0

    # -- the one shared drop-and-grow loop ------------------------------
    def after_backward(self, iteration: int) -> None:
        if self._is_update_step(iteration):
            self.update_topology(iteration)
        self.masks.apply_to_gradients()

    def update_topology(self, iteration: int) -> UpdateRecord:
        """One drop-and-grow round across all layers."""
        self.begin_round(iteration)
        record = UpdateRecord(
            iteration=iteration, death_rate=self.round_death_rate(iteration)
        )
        for name, state in self.masks.states.items():
            drop_scores = self.drop_scores(name)
            if drop_scores is None:
                dropped = state.drop_by_magnitude(self.drop_count(name, iteration))
            else:
                dropped = state.drop_by_score(
                    self.drop_count(name, iteration), drop_scores
                )
            grow = self.grow_count(name, iteration, dropped.size)
            grown = np.empty(0, dtype=np.int64)
            if grow > 0:
                scores = self.growth_scores(name)
                if scores is None:
                    grown = state.grow_random(grow, self.masks.rng)
                else:
                    grown = state.grow_by_score(grow, scores)
                self._reset_momentum(name, grown)
            record.dropped[name] = int(dropped.size)
            record.grown[name] = int(grown.size)
        self.masks.apply_masks()
        # Write-through at the mask-update site: rebuild the CSR index
        # and values here (the only index-rebuild event) so the next
        # forward starts warm.
        self.masks.refresh_values()
        record.sparsity_after = self.masks.sparsity()
        self.history.append(record)
        self._record_mask_update(record)
        return record

    # Historical names for one explicit topology round, kept so tests and
    # benches that poke a single round directly keep working.
    _drop_and_grow = update_topology
    _replace_connections = update_topology
