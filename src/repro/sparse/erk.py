"""Sparsity distributions across layers: ERK and uniform.

The paper allocates per-layer sparsity with the Erdős–Rényi-Kernel
(ERK) rule of Evci et al. (RigL, ICML 2020): the *density* of a
convolutional layer with weight shape ``(F, C, kh, kw)`` is scaled
proportionally to

    (C + F + kh + kw) / (C * F * kh * kw)

and a fully-connected layer ``(out, in)`` to ``(in + out) / (in*out)``,
so small/thin layers stay denser than wide ones.  A global scale factor
``epsilon`` is solved so that the network-wide density matches the
requested value, capping any layer whose raw density would exceed 1.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

Shape = Tuple[int, ...]


def _raw_erk_probability(shape: Shape, power_scale: float = 1.0) -> float:
    """Unnormalized ERK density for one layer."""
    numerator = float(sum(shape))
    denominator = float(np.prod(shape))
    return (numerator / denominator) ** power_scale


def erk_densities(
    shapes: Mapping[str, Shape],
    density: float,
    power_scale: float = 1.0,
) -> Dict[str, float]:
    """Per-layer densities under ERK at a given global ``density``.

    Parameters
    ----------
    shapes:
        Mapping of layer name to weight shape (2-D or 4-D).
    density:
        Target global density (``1 - sparsity``) in ``(0, 1]``.
    power_scale:
        Exponent on the raw ERK probability (1.0 = standard ERK,
        0.0 = uniform).

    Returns
    -------
    Mapping of layer name to density in ``(0, 1]``; the weighted mean
    density equals ``density`` up to the capping of dense layers.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if not shapes:
        raise ValueError("no layers given")
    if density == 1.0:
        return {name: 1.0 for name in shapes}

    total_params = sum(int(np.prod(s)) for s in shapes.values())
    target_nonzero = density * total_params

    dense_layers: set = set()
    while True:
        # Solve for epsilon over the still-sparse layers.
        divisor = 0.0
        rhs = target_nonzero
        raw: Dict[str, float] = {}
        for name, shape in shapes.items():
            n_param = int(np.prod(shape))
            if name in dense_layers:
                rhs -= n_param
            else:
                raw[name] = _raw_erk_probability(shape, power_scale)
                divisor += raw[name] * n_param
        if divisor <= 0:
            raise ValueError("cannot satisfy the requested density")
        epsilon = rhs / divisor
        # Cap any layer that would exceed density 1.
        overflow = [name for name, prob in raw.items() if prob * epsilon > 1.0]
        if not overflow:
            break
        dense_layers.update(overflow)

    densities: Dict[str, float] = {}
    for name, shape in shapes.items():
        if name in dense_layers:
            densities[name] = 1.0
        else:
            densities[name] = float(np.clip(raw[name] * epsilon, 0.0, 1.0))
    return densities


def uniform_densities(shapes: Mapping[str, Shape], density: float) -> Dict[str, float]:
    """Every layer at the same density (the trivial distribution)."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    return {name: density for name in shapes}


def erk_sparsities(
    shapes: Mapping[str, Shape], sparsity: float, power_scale: float = 1.0
) -> Dict[str, float]:
    """Convenience wrapper returning *sparsities* instead of densities."""
    densities = erk_densities(shapes, 1.0 - sparsity, power_scale=power_scale)
    return {name: 1.0 - d for name, d in densities.items()}


def global_density(shapes: Mapping[str, Shape], densities: Mapping[str, float]) -> float:
    """Parameter-weighted mean density of a distribution."""
    total = sum(int(np.prod(s)) for s in shapes.values())
    nonzero = sum(densities[name] * int(np.prod(shape)) for name, shape in shapes.items())
    return nonzero / total


def build_distribution(
    kind: str, shapes: Mapping[str, Shape], density: float, **kwargs
) -> Dict[str, float]:
    """Factory over distribution kinds: ``erk`` or ``uniform``."""
    if kind == "erk":
        return erk_densities(shapes, density, **kwargs)
    if kind == "uniform":
        return uniform_densities(shapes, density)
    raise ValueError(f"unknown sparsity distribution {kind!r}")
