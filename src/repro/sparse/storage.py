"""Compressed sparse row (CSR) storage for weight tensors.

Section III-D of the paper counts training memory assuming CSR storage
of the sparse weight matrices (one column index per non-zero plus one
row pointer per filter row).  This module provides an actual CSR
implementation so the footprint model is backed by working code: 4-D
convolution filters are stored as ``(F, C*kh*kw)`` matrices, matching
the paper's reshaping convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class CSRMatrix:
    """A 2-D sparse matrix in CSR form.

    Attributes
    ----------
    data:
        Non-zero values, row-major.
    indices:
        Column index of each non-zero.
    indptr:
        Row pointers: row ``i`` occupies ``data[indptr[i]:indptr[i+1]]``.
    shape:
        Dense ``(rows, cols)`` shape.
    orig_shape:
        Original tensor shape (e.g. 4-D conv filters) for round-trips.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: Tuple[int, int]
    orig_shape: Tuple[int, ...]

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def storage_bits(self, value_bits: int = 32, index_bits: int = 32) -> int:
        """Exact storage cost in bits (paper §III-D accounting).

        ``nnz`` values + ``nnz`` column indices + ``rows + 1`` pointers.
        """
        return self.nnz * value_bits + self.nnz * index_bits + (self.shape[0] + 1) * index_bits

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tensor in its original shape."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols), dtype=self.data.dtype)
        for row in range(rows):
            start, stop = self.indptr[row], self.indptr[row + 1]
            dense[row, self.indices[start:stop]] = self.data[start:stop]
        return dense.reshape(self.orig_shape)

    def row(self, index: int) -> np.ndarray:
        """One dense row (a filter's flattened weights)."""
        dense_row = np.zeros(self.shape[1], dtype=self.data.dtype)
        start, stop = self.indptr[index], self.indptr[index + 1]
        dense_row[self.indices[start:stop]] = self.data[start:stop]
        return dense_row

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product (inference-style usage)."""
        if x.shape[0] != self.shape[1]:
            raise ValueError(f"vector length {x.shape[0]} != cols {self.shape[1]}")
        out = np.zeros(self.shape[0], dtype=np.result_type(self.data, x))
        for row in range(self.shape[0]):
            start, stop = self.indptr[row], self.indptr[row + 1]
            out[row] = self.data[start:stop] @ x[self.indices[start:stop]]
        return out


def _as_matrix(tensor: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Reshape a weight tensor to the paper's 2-D convention."""
    if tensor.ndim == 2:
        return tensor, tensor.shape
    if tensor.ndim == 4:
        f = tensor.shape[0]
        matrix = tensor.reshape(f, -1)
        return matrix, matrix.shape
    raise ValueError(f"unsupported tensor rank {tensor.ndim} (need 2-D or 4-D)")


def csr_encode(tensor: np.ndarray) -> CSRMatrix:
    """Encode a (possibly 4-D) weight tensor as CSR."""
    matrix, shape = _as_matrix(np.asarray(tensor))
    rows, _ = shape
    data_chunks = []
    index_chunks = []
    indptr = np.zeros(rows + 1, dtype=np.int64)
    for row in range(rows):
        nonzero = np.flatnonzero(matrix[row])
        data_chunks.append(matrix[row, nonzero])
        index_chunks.append(nonzero)
        indptr[row + 1] = indptr[row] + nonzero.size
    data = np.concatenate(data_chunks) if data_chunks else np.empty(0, dtype=matrix.dtype)
    indices = np.concatenate(index_chunks) if index_chunks else np.empty(0, dtype=np.int64)
    return CSRMatrix(
        data=data.astype(matrix.dtype),
        indices=indices.astype(np.int64),
        indptr=indptr,
        shape=shape,
        orig_shape=tuple(np.asarray(tensor).shape),
    )


def csr_decode(matrix: CSRMatrix) -> np.ndarray:
    """Inverse of :func:`csr_encode`."""
    return matrix.to_dense()


def model_csr_storage_bits(
    model, value_bits: int = 32, index_bits: int = 32
) -> int:
    """Exact CSR storage of every sparsifiable weight in a model.

    This is the measured counterpart of the §III-D analytic formula;
    tests verify the two agree.
    """
    from .mask import sparsifiable_parameters

    total = 0
    for _, parameter in sparsifiable_parameters(model):
        encoded = csr_encode(parameter.data)
        total += encoded.storage_bits(value_bits=value_bits, index_bits=index_bits)
    return total
