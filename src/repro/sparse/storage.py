"""Compressed sparse row (CSR) storage and compute kernels.

Section III-D of the paper counts training memory assuming CSR storage
of the sparse weight matrices (one column index per non-zero plus one
row pointer per filter row).  This module provides an actual CSR
implementation so the footprint model is backed by working code: 4-D
convolution filters are stored as ``(F, C*kh*kw)`` matrices, matching
the paper's reshaping convention.

Beyond storage, :class:`CSRPattern` is the compute side of the CSR
fast path: it caches the index structure of a *mask* (which only
changes at drop-and-grow rounds) separately from the weight *values*
(which change every optimizer step), and exposes the two products the
training step needs — ``W @ X`` for the forward pass and ``W^T @ G``
for the input gradient.  SciPy's sparse kernels are used when present;
a vectorized ``reduceat``-based pure-numpy fallback keeps the path
alive without the dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly by the kernel tests
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover
    _scipy_sparse = None

HAVE_SCIPY = _scipy_sparse is not None


@dataclass
class CSRMatrix:
    """A 2-D sparse matrix in CSR form.

    Attributes
    ----------
    data:
        Non-zero values, row-major.
    indices:
        Column index of each non-zero.
    indptr:
        Row pointers: row ``i`` occupies ``data[indptr[i]:indptr[i+1]]``.
    shape:
        Dense ``(rows, cols)`` shape.
    orig_shape:
        Original tensor shape (e.g. 4-D conv filters) for round-trips.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: Tuple[int, int]
    orig_shape: Tuple[int, ...]

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def storage_bits(self, value_bits: int = 32, index_bits: int = 32) -> int:
        """Exact storage cost in bits (paper §III-D accounting).

        ``nnz`` values + ``nnz`` column indices + ``rows + 1`` pointers.
        """
        return self.nnz * value_bits + self.nnz * index_bits + (self.shape[0] + 1) * index_bits

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tensor in its original shape."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols), dtype=self.data.dtype)
        for row in range(rows):
            start, stop = self.indptr[row], self.indptr[row + 1]
            dense[row, self.indices[start:stop]] = self.data[start:stop]
        return dense.reshape(self.orig_shape)

    def row(self, index: int) -> np.ndarray:
        """One dense row (a filter's flattened weights)."""
        dense_row = np.zeros(self.shape[1], dtype=self.data.dtype)
        start, stop = self.indptr[index], self.indptr[index + 1]
        dense_row[self.indices[start:stop]] = self.data[start:stop]
        return dense_row

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product (inference-style usage)."""
        if x.shape[0] != self.shape[1]:
            raise ValueError(f"vector length {x.shape[0]} != cols {self.shape[1]}")
        out = np.zeros(self.shape[0], dtype=np.result_type(self.data, x))
        for row in range(self.shape[0]):
            start, stop = self.indptr[row], self.indptr[row + 1]
            out[row] = self.data[start:stop] @ x[self.indices[start:stop]]
        return out


def _as_matrix(tensor: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Reshape a weight tensor to the paper's 2-D convention."""
    if tensor.ndim == 2:
        return tensor, tensor.shape
    if tensor.ndim == 4:
        f = tensor.shape[0]
        matrix = tensor.reshape(f, -1)
        return matrix, matrix.shape
    raise ValueError(f"unsupported tensor rank {tensor.ndim} (need 2-D or 4-D)")


def csr_encode(tensor: np.ndarray) -> CSRMatrix:
    """Encode a (possibly 4-D) weight tensor as CSR."""
    matrix, shape = _as_matrix(np.asarray(tensor))
    rows, _ = shape
    # np.nonzero scans row-major, which is exactly CSR data order.
    row_idx, col_idx = np.nonzero(matrix)
    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(row_idx, minlength=rows), out=indptr[1:])
    return CSRMatrix(
        data=matrix[row_idx, col_idx].astype(matrix.dtype),
        indices=col_idx.astype(np.int64),
        indptr=indptr,
        shape=shape,
        orig_shape=tuple(np.asarray(tensor).shape),
    )


class CSRPattern:
    """Cached CSR index structure of a binary mask.

    The pattern (column indices + row pointers + flat gather indices)
    is built once per topology change.  Weight values live in the
    persistent ``values`` buffer: :meth:`gather` refreshes it from the
    dense weights, and with write-through maintenance (the optimizer
    step updates it directly, see
    :meth:`~repro.sparse.engine.MaskedParameter.write_through`) the
    kernels run without any per-call re-gather.  With SciPy present the
    cached ``csr_matrix`` and its transpose view share ``values`` as
    their data buffer, so forward and input-gradient products both run
    at sparse cost from a single refresh.
    """

    __slots__ = ("shape", "orig_shape", "indices", "indptr", "flat_index", "nnz",
                 "values", "frozen", "_sp", "_sp_t", "_row_of_nz")

    def __init__(self, mask: np.ndarray) -> None:
        matrix, shape = _as_matrix(np.asarray(mask))
        row_idx, col_idx = np.nonzero(matrix)
        rows, cols = shape
        self.shape = shape
        self.orig_shape = tuple(np.asarray(mask).shape)
        self.indices = col_idx.astype(np.int32)
        self.indptr = np.zeros(rows + 1, dtype=np.int32)
        np.cumsum(np.bincount(row_idx, minlength=rows), out=self.indptr[1:])
        # Gather indices stay at the platform index width: np.take casts
        # narrower dtypes to intp on every call, which costs more than
        # the saved index traffic (measured ~25% slower per refresh).
        self.flat_index = (row_idx * cols + col_idx).astype(np.intp)
        self.nnz = int(self.flat_index.size)
        self.values = np.empty(self.nnz, dtype=np.float32)
        self.frozen = False
        self._sp = None
        self._sp_t = None
        self._row_of_nz: Optional[np.ndarray] = None

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "CSRPattern":
        return cls(mask)

    @classmethod
    def from_arrays(
        cls,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
        orig_shape: Tuple[int, ...],
        values: Optional[np.ndarray] = None,
    ) -> "CSRPattern":
        """Build a pattern directly from CSR arrays (no dense mask).

        The package loader (:mod:`repro.sparse.packaging`) uses this to
        reconstruct serving patterns without ever materializing a dense
        mask: ``values`` may be any float32 buffer — including a
        read-only view into an mmap'd artifact, which the pattern then
        aliases instead of copying.  ``flat_index`` (only needed by
        :meth:`gather`, which frozen serving never calls) is built
        lazily.
        """
        self = object.__new__(cls)
        rows, cols = (int(shape[0]), int(shape[1]))
        self.shape = (rows, cols)
        self.orig_shape = tuple(int(d) for d in orig_shape)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        if self.indptr.size != rows + 1:
            raise ValueError(
                f"indptr has {self.indptr.size} entries for {rows} rows"
            )
        self.flat_index = None
        self.nnz = int(self.indices.size)
        if values is not None:
            if values.size != self.nnz:
                raise ValueError(
                    f"values buffer has {values.size} entries, pattern has "
                    f"{self.nnz} non-zeros"
                )
            self.values = values
        else:
            self.values = np.empty(self.nnz, dtype=np.float32)
        self.frozen = False
        self._sp = None
        self._sp_t = None
        self._row_of_nz = None
        return self

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    # ------------------------------------------------------------------
    # Inference freezing
    # ------------------------------------------------------------------
    def freeze(self) -> "CSRPattern":
        """Lock the value buffer for inference serving.

        A frozen pattern's ``values`` are read-only at the numpy level:
        :meth:`gather` and any in-place refresh raise instead of
        silently mutating the weights a server is concurrently reading.
        The index structure was already immutable.  Idempotent.
        """
        self.values.setflags(write=False)
        self.frozen = True
        return self

    def thaw(self) -> "CSRPattern":
        """Reverse :meth:`freeze`; the pattern is trainable again."""
        self.values.setflags(write=True)
        self.frozen = False
        return self

    # ------------------------------------------------------------------
    # Value refresh
    # ------------------------------------------------------------------
    def gather(self, weight: np.ndarray) -> np.ndarray:
        """Refresh ``values`` from the dense weights (CSR order).

        The persistent buffer is returned; with SciPy it doubles as the
        cached matrix's data buffer, so no further copy happens when a
        kernel runs.
        """
        if self.frozen:
            raise RuntimeError(
                "cannot gather into a frozen CSRPattern: the value buffer "
                "is read-only for inference; call thaw() first"
            )
        if self.flat_index is None:
            # Patterns built via from_arrays defer this (serving never
            # gathers); rebuild it on the first trainable use.
            rows = np.repeat(
                np.arange(self.shape[0]), np.diff(self.indptr)
            )
            self.flat_index = (
                rows * self.shape[1] + self.indices.astype(np.intp)
            ).astype(np.intp)
        flat = np.ascontiguousarray(weight).reshape(-1)
        values = self._values_buffer(flat.dtype)
        np.take(flat, self.flat_index, out=values)
        return values

    def _values_buffer(self, dtype) -> np.ndarray:
        if self.values.dtype != dtype:
            if self.frozen:
                raise RuntimeError(
                    "cannot reallocate a frozen CSRPattern's value buffer"
                )
            self.values = np.empty(self.nnz, dtype=dtype)
            self._sp = None
            self._sp_t = None
        return self.values

    @staticmethod
    def _aliases(cached: np.ndarray, data: np.ndarray) -> bool:
        """True when ``cached`` already is (a view of) ``data``.

        SciPy wraps the data array it is constructed around in a view,
        so an identity check alone misses the shared-buffer case — and
        would both waste a copy per kernel call and fault on frozen
        (read-only) value buffers.  The base chain is not reliable
        either (views of ``np.memmap``-backed package buffers re-root
        it), so fall back to comparing the raw data pointers.
        """
        if cached is data or cached.base is data:
            return True
        return (
            cached.dtype == data.dtype
            and cached.nbytes == data.nbytes
            and cached.__array_interface__["data"][0]
            == data.__array_interface__["data"][0]
        )

    def _scipy_matrix(self, dtype):
        if self._sp is None or self._sp.data.dtype != dtype:
            data = self._values_buffer(dtype)
            self._sp = _scipy_sparse.csr_matrix(
                (data, self.indices, self.indptr), shape=self.shape
            )
            # Transpose view shares the data buffer: one gather feeds
            # both the forward and the transposed product.
            self._sp_t = self._sp.T
        return self._sp

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matmul(self, data: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``W @ dense`` where ``W`` is this pattern with ``data`` values.

        ``dense`` has shape ``(cols, m)``; returns ``(rows, m)``.
        """
        if HAVE_SCIPY:
            sp = self._scipy_matrix(data.dtype)
            if not self._aliases(sp.data, data):
                sp.data[:] = data
            return np.asarray(sp @ dense)
        prod = data[:, None] * dense[self.indices]
        out = np.zeros((self.shape[0], dense.shape[1]), dtype=prod.dtype)
        counts = np.diff(self.indptr)
        nonempty = counts > 0
        if prod.size:
            out[nonempty] = np.add.reduceat(prod, self.indptr[:-1][nonempty], axis=0)
        return out

    def t_matmul(self, data: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``W^T @ dense``; ``dense`` is ``(rows, m)``, returns ``(cols, m)``."""
        if HAVE_SCIPY:
            sp = self._scipy_matrix(data.dtype)
            if not self._aliases(sp.data, data):
                sp.data[:] = data
            return np.asarray(self._sp_t @ dense)
        if self._row_of_nz is None:
            self._row_of_nz = np.repeat(
                np.arange(self.shape[0]), np.diff(self.indptr)
            ).astype(np.int64)
        out = np.zeros((self.shape[1], dense.shape[1]),
                       dtype=np.result_type(data, dense))
        np.add.at(out, self.indices.astype(np.int64),
                  data[:, None] * dense[self._row_of_nz])
        return out


def csr_decode(matrix: CSRMatrix) -> np.ndarray:
    """Inverse of :func:`csr_encode`."""
    return matrix.to_dense()


def model_csr_storage_bits(
    model, value_bits: int = 32, index_bits: int = 32
) -> int:
    """Exact CSR storage of every sparsifiable weight in a model.

    This is the measured counterpart of the §III-D analytic formula;
    tests verify the two agree.
    """
    from .mask import sparsifiable_parameters

    total = 0
    for _, parameter in sparsifiable_parameters(model):
        encoded = csr_encode(parameter.data)
        total += encoded.storage_bits(value_bits=value_bits, index_bits=index_bits)
    return total
