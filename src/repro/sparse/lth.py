"""LTH-SNN baseline: Lottery Ticket Hypothesis via iterative magnitude
pruning (IMP) with weight rewinding.

Following Kim et al. (ECCV 2022, the paper's LTH-SNN reference) and
Frankle & Carlin (ICLR 2019): the model is trained to completion,
the smallest-magnitude surviving weights are pruned globally so that
round ``r`` of ``R`` reaches sparsity

    s_r = 1 - (1 - s_target)^(r / R)

the surviving weights are *rewound* to their initialization values, and
training restarts under the new mask.  The expensive part — and the
inefficiency NDSNN attacks — is that early rounds train at low sparsity
(the orange/blue curves of Fig. 1), and the procedure needs ``R`` full
training runs.

Mask state and the global magnitude threshold come from the shared
:class:`~repro.sparse.engine.SparsityManager`; this controller only
owns the round schedule and the rewind logic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..nn.module import Module
from .engine import SparsityManager, StaticMaskMethod


class LTHSNN:
    """Controller for iterative-magnitude-pruning experiments.

    This is a *meta*-method: each round produces a
    :class:`StaticMaskMethod` to hand to a fresh training run.

    Parameters
    ----------
    model:
        The network; its state at construction time is the rewinding
        point.
    target_sparsity:
        Final sparsity after all rounds.
    rounds:
        Number of prune-rewind-retrain rounds ``R``.
    scope:
        ``global`` ranks weights across all layers jointly (standard
        LTH); ``layerwise`` prunes each layer at the same rate.
    """

    name = "lth"

    def __init__(
        self,
        model: Module,
        target_sparsity: float,
        rounds: int = 3,
        scope: str = "global",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < target_sparsity < 1.0:
            raise ValueError(f"target_sparsity must be in (0, 1), got {target_sparsity}")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if scope not in ("global", "layerwise"):
            raise ValueError(f"unknown pruning scope {scope!r}")
        self.model = model
        self.target_sparsity = float(target_sparsity)
        self.rounds = int(rounds)
        self.scope = scope
        self.rng = rng if rng is not None else np.random.default_rng()
        self.initial_state = model.state_dict()
        self.manager = SparsityManager(model, rng=self.rng)
        # Dict views shared with the manager's per-layer states.
        self.parameters = self.manager.parameters
        self.masks: Dict[str, np.ndarray] = self.manager.masks
        self.sparsity_trace: List[float] = []

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------
    def sparsity_for_round(self, round_index: int) -> float:
        """Sparsity reached after pruning at the end of ``round_index``.

        Rounds are 1-based; round ``R`` reaches the target sparsity.
        """
        if not 1 <= round_index <= self.rounds:
            raise ValueError(f"round index {round_index} out of range [1, {self.rounds}]")
        keep = (1.0 - self.target_sparsity) ** (round_index / self.rounds)
        return 1.0 - keep

    def training_sparsity_for_round(self, round_index: int) -> float:
        """Sparsity the model *trains at* during round ``round_index``.

        Round 1 trains dense; round ``r`` trains under the mask produced
        after round ``r - 1``.
        """
        if round_index <= 1:
            return 0.0
        return self.sparsity_for_round(round_index - 1)

    # ------------------------------------------------------------------
    # Prune / rewind
    # ------------------------------------------------------------------
    def prune(self, round_index: int) -> Dict[str, np.ndarray]:
        """Magnitude-prune the trained weights to the round's sparsity."""
        sparsity = self.sparsity_for_round(round_index)
        if self.scope == "global":
            self._prune_global(sparsity)
        else:
            self._prune_layerwise(sparsity)
        return self.manager.copy_masks()

    def _prune_global(self, sparsity: float) -> None:
        threshold = self.manager.global_magnitude_threshold(sparsity)
        for state in self.manager.states.values():
            survives = (np.abs(state.parameter.data) >= threshold) & (state.mask > 0)
            state.set_mask(survives.astype(np.float32))

    def _prune_layerwise(self, sparsity: float) -> None:
        for state in self.manager.states.values():
            flat = np.abs(state.parameter.data.reshape(-1))
            active = state.mask.reshape(-1) > 0
            keep = max(1, int(round((1.0 - sparsity) * flat.size)))
            values = flat.copy()
            values[~active] = -np.inf
            order = np.argpartition(values, flat.size - keep)[flat.size - keep:]
            mask = np.zeros(flat.size, dtype=np.float32)
            mask[order] = 1.0
            state.set_mask(
                (mask.reshape(state.shape) * active.reshape(state.shape)).astype(np.float32)
            )

    def rewind(self) -> None:
        """Reset weights to initialization and re-apply the current mask."""
        self.model.load_state_dict(self.initial_state)
        self.manager.apply_masks()

    def method_for_round(self, round_index: int) -> StaticMaskMethod:
        """Static-mask training method for round ``round_index`` (1-based)."""
        if round_index == 1:
            masks = {
                name: np.ones(state.shape, dtype=np.float32)
                for name, state in self.manager.states.items()
            }
        else:
            masks = self.manager.copy_masks()
        return StaticMaskMethod(masks=masks, rng=self.rng)

    def current_sparsity(self) -> float:
        return self.manager.sparsity()

    def __repr__(self) -> str:
        return (
            f"LTHSNN(target={self.target_sparsity}, rounds={self.rounds}, scope={self.scope!r})"
        )
