"""NDSNN: Neurogenesis Dynamics-inspired sparse training (the paper's
primary contribution, Algorithm 1).

The method trains from scratch at high sparsity and *increases*
sparsity over time through an asymmetric drop-and-grow schedule:

* every ``update_frequency`` (``dT``) iterations, layer ``l`` drops the
  ``D_q^l = d_t * N_pre`` active weights of least magnitude — *neuron
  death* — where ``d_t`` follows the cosine schedule of Eq. 5;
* it then grows ``G_q^l = N^l - N_post^l - theta_t^l * N^l`` connections
  at the inactive positions with the largest gradient magnitude —
  *neuron birth* (Eq. 9) — where ``theta_t^l`` is the cubic sparsity
  ramp of Eq. 4.

Because ``G < D`` while the ramp is rising, the live-connection count
decays from the ERK distribution at ``theta_i`` to the ERK distribution
at ``theta_f``, mirroring the declining neuron population of adult
hippocampal neurogenesis.

Implemented as a thin strategy over the shared
:class:`~repro.sparse.engine.DropGrowMethod` engine: this class only
supplies the Eq. 4/5 schedules and the per-layer death/birth counts.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .engine import DropGrowMethod, UpdateRecord
from .erk import build_distribution
from .schedule import CosineDeathSchedule, LayerwiseSparsityRamp

__all__ = ["NDSNN", "UpdateRecord"]


class NDSNN(DropGrowMethod):
    """Drop-and-grow sparse training with decreasing connection count.

    Parameters
    ----------
    initial_sparsity:
        Global sparsity ``theta_i`` at the start of training (paper uses
        0.5–0.9; §IV-D picks from {0.6, 0.7, 0.8}).
    final_sparsity:
        Target global sparsity ``theta_f`` (0.9–0.99 in Table I).
    total_iterations:
        Length of the training run ``T_end`` in iterations.
    update_frequency:
        ``dT``; a drop-and-grow round runs every this many iterations.
    initial_death_rate / minimum_death_rate:
        Endpoints ``d0`` and ``d_min`` of the Eq. 5 cosine schedule.
    stop_fraction:
        Fraction of ``total_iterations`` after which topology freezes
        (the ramp horizon ``n*dT``); 1.0 reproduces the paper.
    distribution:
        Per-layer sparsity allocation (``erk`` as in the paper, or
        ``uniform``).
    growth_mode:
        ``gradient`` (paper / RigL-style), ``random`` or ``momentum``
        — exposed for the ablation bench.
    ramp_power:
        Exponent of Eq. 4 (3.0 in the paper; ablation knob).
    """

    name = "ndsnn"
    shrink_update_frequency = True

    def __init__(
        self,
        initial_sparsity: float = 0.8,
        final_sparsity: float = 0.95,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        initial_death_rate: float = 0.5,
        minimum_death_rate: float = 0.05,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        growth_mode: str = "gradient",
        ramp_power: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= initial_sparsity <= final_sparsity < 1.0:
            raise ValueError(
                f"need 0 <= theta_i <= theta_f < 1, got {initial_sparsity}, {final_sparsity}"
            )
        if growth_mode not in ("gradient", "random", "momentum"):
            raise ValueError(f"unknown growth mode {growth_mode!r}")
        super().__init__(
            total_iterations=total_iterations,
            update_frequency=update_frequency,
            stop_fraction=stop_fraction,
            distribution=distribution,
            rng=rng,
        )
        self.initial_sparsity = float(initial_sparsity)
        self.final_sparsity = float(final_sparsity)
        self.initial_death_rate = float(initial_death_rate)
        self.minimum_death_rate = float(minimum_death_rate)
        self.growth_mode = growth_mode
        self.ramp_power = float(ramp_power)
        self.ramp: Optional[LayerwiseSparsityRamp] = None
        self.death_schedule: Optional[CosineDeathSchedule] = None
        self._round_targets: Dict[str, float] = {}
        self._round_rate = 0.0

    # ------------------------------------------------------------------
    # Schedules (Eqs. 4 and 5)
    # ------------------------------------------------------------------
    def configure_schedules(self) -> None:
        shapes = self.masks.shapes
        self._initial_distribution = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.initial_sparsity
            ).items()
        }
        final = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.final_sparsity
            ).items()
        }
        self.ramp = LayerwiseSparsityRamp(
            self._initial_distribution,
            final,
            t_start=0,
            num_rounds=self.num_rounds,
            update_frequency=self.update_frequency,
            power=self.ramp_power,
        )
        self.death_schedule = CosineDeathSchedule(
            self.initial_death_rate,
            self.minimum_death_rate,
            num_rounds=self.num_rounds,
            update_frequency=self.update_frequency,
        )

    def initial_densities(self) -> Dict[str, float]:
        return {name: 1.0 - s for name, s in self._initial_distribution.items()}

    # ------------------------------------------------------------------
    # Per-round strategy (Eqs. 5–9)
    # ------------------------------------------------------------------
    def begin_round(self, iteration: int) -> None:
        self._round_rate = self.death_schedule.rate_at(iteration)
        self._round_targets = self.ramp.sparsity_at(iteration)

    def round_death_rate(self, iteration: int) -> float:
        return self._round_rate

    def _target_active(self, name: str) -> int:
        layer_size = self.masks.layer_size(name)
        return max(1, int(round((1.0 - self._round_targets[name]) * layer_size)))

    def drop_count(self, name: str, iteration: int) -> int:
        n_pre = self.masks.nonzero_count(name)  # Eq. 6
        drop = int(self._round_rate * n_pre)  # Eq. 7
        # Never drop below the target active count: the sparsity ramp
        # dominates when the cosine death rate gets small (Eq. 9 must
        # yield G >= 0).
        drop = max(drop, n_pre - self._target_active(name))
        return min(drop, n_pre - 1) if n_pre > 1 else 0

    def grow_count(self, name: str, iteration: int, dropped: int) -> int:
        n_post = self.masks.nonzero_count(name)  # Eq. 8
        return self._target_active(name) - n_post  # Eq. 9

    def growth_scores(self, name: str) -> np.ndarray:
        parameter = self.masks.parameters[name]
        if self.growth_mode == "gradient":
            if parameter.grad is None:
                raise RuntimeError(
                    "gradient growth requires gradients; call backward() first"
                )
            return np.abs(parameter.grad)
        if self.growth_mode == "momentum":
            buffer = None
            get_state = getattr(self.optimizer, "state_for", None)
            if get_state is not None:
                buffer = get_state(parameter)
            if buffer is None:
                buffer = parameter.grad if parameter.grad is not None else np.zeros(parameter.shape)
            return np.abs(buffer)
        # random growth: a random permutation as scores
        return self.masks.rng.random(parameter.shape)

    def __repr__(self) -> str:
        return (
            f"NDSNN(theta_i={self.initial_sparsity}, theta_f={self.final_sparsity}, "
            f"dT={self.update_frequency}, d0={self.initial_death_rate}, "
            f"growth={self.growth_mode!r})"
        )
