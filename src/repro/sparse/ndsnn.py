"""NDSNN: Neurogenesis Dynamics-inspired sparse training (the paper's
primary contribution, Algorithm 1).

The method trains from scratch at high sparsity and *increases*
sparsity over time through an asymmetric drop-and-grow schedule:

* every ``update_frequency`` (``dT``) iterations, layer ``l`` drops the
  ``D_q^l = d_t * N_pre`` active weights of least magnitude — *neuron
  death* — where ``d_t`` follows the cosine schedule of Eq. 5;
* it then grows ``G_q^l = N^l - N_post^l - theta_t^l * N^l`` connections
  at the inactive positions with the largest gradient magnitude —
  *neuron birth* (Eq. 9) — where ``theta_t^l`` is the cubic sparsity
  ramp of Eq. 4.

Because ``G < D`` while the ramp is rising, the live-connection count
decays from the ERK distribution at ``theta_i`` to the ERK distribution
at ``theta_f``, mirroring the declining neuron population of adult
hippocampal neurogenesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .base import SparseTrainingMethod
from .erk import build_distribution
from .mask import MaskManager
from .schedule import CosineDeathSchedule, LayerwiseSparsityRamp


@dataclass
class UpdateRecord:
    """Audit record of one drop-and-grow round (used by tests/benches)."""

    iteration: int
    death_rate: float
    dropped: Dict[str, int] = field(default_factory=dict)
    grown: Dict[str, int] = field(default_factory=dict)
    sparsity_after: float = 0.0

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    @property
    def total_grown(self) -> int:
        return sum(self.grown.values())


class NDSNN(SparseTrainingMethod):
    """Drop-and-grow sparse training with decreasing connection count.

    Parameters
    ----------
    initial_sparsity:
        Global sparsity ``theta_i`` at the start of training (paper uses
        0.5–0.9; §IV-D picks from {0.6, 0.7, 0.8}).
    final_sparsity:
        Target global sparsity ``theta_f`` (0.9–0.99 in Table I).
    total_iterations:
        Length of the training run ``T_end`` in iterations.
    update_frequency:
        ``dT``; a drop-and-grow round runs every this many iterations.
    initial_death_rate / minimum_death_rate:
        Endpoints ``d0`` and ``d_min`` of the Eq. 5 cosine schedule.
    stop_fraction:
        Fraction of ``total_iterations`` after which topology freezes
        (the ramp horizon ``n*dT``); 1.0 reproduces the paper.
    distribution:
        Per-layer sparsity allocation (``erk`` as in the paper, or
        ``uniform``).
    growth_mode:
        ``gradient`` (paper / RigL-style), ``random`` or ``momentum``
        — exposed for the ablation bench.
    ramp_power:
        Exponent of Eq. 4 (3.0 in the paper; ablation knob).
    """

    name = "ndsnn"

    def __init__(
        self,
        initial_sparsity: float = 0.8,
        final_sparsity: float = 0.95,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        initial_death_rate: float = 0.5,
        minimum_death_rate: float = 0.05,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        growth_mode: str = "gradient",
        ramp_power: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= initial_sparsity <= final_sparsity < 1.0:
            raise ValueError(
                f"need 0 <= theta_i <= theta_f < 1, got {initial_sparsity}, {final_sparsity}"
            )
        if update_frequency < 1:
            raise ValueError("update_frequency must be >= 1")
        if not 0.0 < stop_fraction <= 1.0:
            raise ValueError("stop_fraction must be in (0, 1]")
        if growth_mode not in ("gradient", "random", "momentum"):
            raise ValueError(f"unknown growth mode {growth_mode!r}")
        self.initial_sparsity = float(initial_sparsity)
        self.final_sparsity = float(final_sparsity)
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.initial_death_rate = float(initial_death_rate)
        self.minimum_death_rate = float(minimum_death_rate)
        self.stop_fraction = float(stop_fraction)
        self.distribution = distribution
        self.growth_mode = growth_mode
        self.ramp_power = float(ramp_power)
        self._rng = rng
        self.ramp: Optional[LayerwiseSparsityRamp] = None
        self.death_schedule: Optional[CosineDeathSchedule] = None
        self.history: List[UpdateRecord] = []

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Number of drop-and-grow rounds ``n`` in the ramp horizon."""
        horizon = int(self.total_iterations * self.stop_fraction)
        return max(1, horizon // self.update_frequency)

    def setup(self) -> None:
        # Guarantee at least one drop-and-grow round on very short runs.
        if self.update_frequency >= self.total_iterations:
            self.update_frequency = max(1, self.total_iterations - 1)
        self.masks = MaskManager(self.model, rng=self._rng)
        shapes = self.masks.shapes
        initial = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.initial_sparsity
            ).items()
        }
        final = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.final_sparsity
            ).items()
        }
        self.ramp = LayerwiseSparsityRamp(
            initial,
            final,
            t_start=0,
            num_rounds=self.num_rounds,
            update_frequency=self.update_frequency,
            power=self.ramp_power,
        )
        self.death_schedule = CosineDeathSchedule(
            self.initial_death_rate,
            self.minimum_death_rate,
            num_rounds=self.num_rounds,
            update_frequency=self.update_frequency,
        )
        self.masks.init_random({name: 1.0 - s for name, s in initial.items()})
        self.history = []

    # ------------------------------------------------------------------
    # Per-iteration behaviour
    # ------------------------------------------------------------------
    def _is_update_step(self, iteration: int) -> bool:
        horizon = self.num_rounds * self.update_frequency
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration <= horizon
            and iteration < self.total_iterations
        )

    def after_backward(self, iteration: int) -> None:
        if self._is_update_step(iteration):
            self._drop_and_grow(iteration)
        self.masks.apply_to_gradients()

    def _growth_scores(self, name: str) -> np.ndarray:
        parameter = self.masks.parameters[name]
        if self.growth_mode == "gradient":
            if parameter.grad is None:
                raise RuntimeError(
                    "gradient growth requires gradients; call backward() first"
                )
            return np.abs(parameter.grad)
        if self.growth_mode == "momentum":
            buffer = None
            get_state = getattr(self.optimizer, "state_for", None)
            if get_state is not None:
                buffer = get_state(parameter)
            if buffer is None:
                buffer = parameter.grad if parameter.grad is not None else np.zeros(parameter.shape)
            return np.abs(buffer)
        # random growth: a random permutation as scores
        return self.masks.rng.random(parameter.shape)

    def _drop_and_grow(self, iteration: int) -> None:
        """One round of Eqs. 5–9 across all layers."""
        death_rate = self.death_schedule.rate_at(iteration)
        targets = self.ramp.sparsity_at(iteration)
        record = UpdateRecord(iteration=iteration, death_rate=death_rate)
        for name in self.masks.masks:
            layer_size = self.masks.layer_size(name)
            n_pre = self.masks.nonzero_count(name)  # Eq. 6
            target_active = max(1, int(round((1.0 - targets[name]) * layer_size)))
            drop = int(death_rate * n_pre)  # Eq. 7
            # Never drop below the target active count: the sparsity ramp
            # dominates when the cosine death rate gets small (Eq. 9 must
            # yield G >= 0).
            drop = max(drop, n_pre - target_active)
            drop = min(drop, n_pre - 1) if n_pre > 1 else 0
            dropped = self.masks.drop_by_magnitude(name, drop)
            n_post = n_pre - dropped.size  # Eq. 8
            grow = target_active - n_post  # Eq. 9
            grown = np.empty(0, dtype=np.int64)
            if grow > 0:
                if self.growth_mode == "random":
                    grown = self.masks.grow_random(name, grow)
                else:
                    grown = self.masks.grow_by_score(name, grow, self._growth_scores(name))
                self._reset_momentum(name, grown)
            record.dropped[name] = int(dropped.size)
            record.grown[name] = int(grown.size)
        self.masks.apply_masks()
        record.sparsity_after = self.masks.sparsity()
        self.history.append(record)

    def __repr__(self) -> str:
        return (
            f"NDSNN(theta_i={self.initial_sparsity}, theta_f={self.final_sparsity}, "
            f"dT={self.update_frequency}, d0={self.initial_death_rate}, "
            f"growth={self.growth_mode!r})"
        )
