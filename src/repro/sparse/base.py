"""Method base classes (compatibility shim).

The method interface moved into :mod:`repro.sparse.engine` as part of
the unified sparsity engine; this module keeps the historical import
path alive for external code and tests.
"""

from __future__ import annotations

from .engine import DenseMethod, SparseTrainingMethod, StaticMaskMethod

__all__ = ["SparseTrainingMethod", "DenseMethod", "StaticMaskMethod"]
