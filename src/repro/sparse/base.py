"""Common interface for sparse-training methods.

The :class:`~repro.train.trainer.Trainer` drives methods through three
hooks per iteration:

1. ``after_backward(iteration)`` — gradients for *all* weights (active
   and inactive) are available; dynamic methods may update topology
   here (gradient-based growth needs the dense gradient) and must mask
   gradients so only active weights are updated.
2. (optimizer step happens)
3. ``after_step(iteration)`` — re-enforce masks (momentum terms can
   perturb pruned weights).

Epoch-level hooks support methods with coarse phase structure (ADMM's
dual updates, LTH's round boundaries live outside single runs).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn.module import Module
from .mask import MaskManager


class SparseTrainingMethod:
    """Base class for everything in the Table I method column."""

    name = "base"

    def __init__(self) -> None:
        self.model: Optional[Module] = None
        self.optimizer = None
        self.masks: Optional[MaskManager] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, model: Module, optimizer) -> None:
        """Attach the method to a model/optimizer pair before training."""
        self.model = model
        self.optimizer = optimizer
        self.setup()

    def setup(self) -> None:
        """Initialise masks; called once from :meth:`bind`."""

    # ------------------------------------------------------------------
    # Per-iteration hooks
    # ------------------------------------------------------------------
    def after_backward(self, iteration: int) -> None:
        """Called when gradients are available, before the optimizer step."""
        if self.masks is not None:
            self.masks.apply_to_gradients()

    def after_step(self, iteration: int) -> None:
        """Called after the optimizer step."""
        if self.masks is not None:
            self.masks.apply_masks()

    # ------------------------------------------------------------------
    # Per-epoch hooks
    # ------------------------------------------------------------------
    def on_epoch_begin(self, epoch: int) -> None:
        """Called at the start of every epoch."""

    def on_epoch_end(self, epoch: int) -> None:
        """Called at the end of every epoch."""

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def sparsity(self) -> float:
        """Current global sparsity of the sparsifiable weights."""
        if self.masks is None:
            return 0.0
        return self.masks.sparsity()

    def density(self) -> float:
        return 1.0 - self.sparsity()

    def sparsity_distribution(self) -> Dict[str, float]:
        if self.masks is None:
            return {}
        return self.masks.sparsity_distribution()

    def _reset_momentum(self, name: str, flat_indices: np.ndarray) -> None:
        """Zero optimizer state at newly-grown weight positions."""
        if self.optimizer is None or flat_indices.size == 0 or self.masks is None:
            return
        parameter = self.masks.parameters[name]
        reset = getattr(self.optimizer, "reset_state_entries", None)
        if reset is not None:
            reset(parameter, flat_indices)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class DenseMethod(SparseTrainingMethod):
    """No sparsification at all — the paper's dense baseline."""

    name = "dense"

    def after_backward(self, iteration: int) -> None:  # no masks to apply
        return

    def after_step(self, iteration: int) -> None:
        return

    def sparsity(self) -> float:
        return 0.0


class StaticMaskMethod(SparseTrainingMethod):
    """Train under a fixed mask (used for LTH retraining rounds).

    Parameters
    ----------
    masks:
        Optional dict of layer name to binary mask.  If omitted, a
        random topology at ``densities`` is drawn at setup.
    """

    name = "static"

    def __init__(
        self,
        masks: Optional[Dict[str, np.ndarray]] = None,
        densities: Optional[Dict[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self._initial_masks = masks
        self._densities = densities
        self._rng = rng

    def setup(self) -> None:
        self.masks = MaskManager(self.model, rng=self._rng)
        if self._initial_masks is not None:
            self.masks.load_masks(self._initial_masks)
        elif self._densities is not None:
            self.masks.init_random(self._densities)
        self.masks.apply_masks()
