"""RigL-SNN baseline: gradient-guided constant-sparsity training.

RigL (Evci et al., ICML 2020) drops the smallest-magnitude active
weights and regrows the same count at inactive positions with the
largest gradient magnitude, with the update fraction cosine-annealed to
zero over the schedule horizon:

    f(t) = (alpha / 2) * (1 + cos(pi * t / T_horizon))
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from .base import SparseTrainingMethod
from .erk import build_distribution
from .mask import MaskManager
from .ndsnn import UpdateRecord


class RigLSNN(SparseTrainingMethod):
    """Constant-sparsity drop-and-grow with gradient-based regrowth.

    Parameters
    ----------
    sparsity:
        Constant global sparsity maintained throughout training.
    alpha:
        Initial update fraction of the cosine decay (RigL default 0.3).
    stop_fraction:
        Fraction of training after which topology freezes (RigL's
        ``T_end``; the original uses 0.75).
    """

    name = "rigl"

    def __init__(
        self,
        sparsity: float = 0.9,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        alpha: float = 0.3,
        stop_fraction: float = 0.75,
        distribution: str = "erk",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.target_sparsity = float(sparsity)
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.alpha = float(alpha)
        self.stop_fraction = float(stop_fraction)
        self.distribution = distribution
        self._rng = rng
        self.history: List[UpdateRecord] = []

    def setup(self) -> None:
        self.masks = MaskManager(self.model, rng=self._rng)
        densities = build_distribution(
            self.distribution, self.masks.shapes, 1.0 - self.target_sparsity
        )
        self.masks.init_random(densities)
        self.history = []

    @property
    def horizon(self) -> int:
        return max(1, int(self.total_iterations * self.stop_fraction))

    def update_fraction(self, iteration: int) -> float:
        """Cosine-annealed fraction of connections replaced per round."""
        if iteration >= self.horizon:
            return 0.0
        return (self.alpha / 2.0) * (1.0 + math.cos(math.pi * iteration / self.horizon))

    def _is_update_step(self, iteration: int) -> bool:
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration < self.horizon
        )

    def after_backward(self, iteration: int) -> None:
        if self._is_update_step(iteration):
            self._replace_connections(iteration)
        self.masks.apply_to_gradients()

    def _replace_connections(self, iteration: int) -> None:
        fraction = self.update_fraction(iteration)
        record = UpdateRecord(iteration=iteration, death_rate=fraction)
        for name in self.masks.masks:
            parameter = self.masks.parameters[name]
            n_active = self.masks.nonzero_count(name)
            count = int(fraction * n_active)
            count = min(count, max(0, n_active - 1))
            dropped = self.masks.drop_by_magnitude(name, count)
            if parameter.grad is None:
                raise RuntimeError("RigL growth requires gradients")
            grown = self.masks.grow_by_score(name, dropped.size, np.abs(parameter.grad))
            self._reset_momentum(name, grown)
            record.dropped[name] = int(dropped.size)
            record.grown[name] = int(grown.size)
        self.masks.apply_masks()
        record.sparsity_after = self.masks.sparsity()
        self.history.append(record)

    def __repr__(self) -> str:
        return f"RigLSNN(sparsity={self.target_sparsity}, alpha={self.alpha})"
