"""RigL-SNN baseline: gradient-guided constant-sparsity training.

RigL (Evci et al., ICML 2020) drops the smallest-magnitude active
weights and regrows the same count at inactive positions with the
largest gradient magnitude, with the update fraction cosine-annealed to
zero over the schedule horizon:

    f(t) = (alpha / 2) * (1 + cos(pi * t / T_horizon))

A thin strategy over :class:`~repro.sparse.engine.DropGrowMethod`:
the cosine update fraction sets the drop count, gradient magnitude
scores the regrowth.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from .engine import DropGrowMethod
from .erk import build_distribution


class RigLSNN(DropGrowMethod):
    """Constant-sparsity drop-and-grow with gradient-based regrowth.

    Parameters
    ----------
    sparsity:
        Constant global sparsity maintained throughout training.
    alpha:
        Initial update fraction of the cosine decay (RigL default 0.3).
    stop_fraction:
        Fraction of training after which topology freezes (RigL's
        ``T_end``; the original uses 0.75).
    """

    name = "rigl"

    def __init__(
        self,
        sparsity: float = 0.9,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        alpha: float = 0.3,
        stop_fraction: float = 0.75,
        distribution: str = "erk",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        super().__init__(
            total_iterations=total_iterations,
            update_frequency=update_frequency,
            stop_fraction=stop_fraction,
            distribution=distribution,
            rng=rng,
        )
        self.target_sparsity = float(sparsity)
        self.alpha = float(alpha)
        self._round_fraction = 0.0

    def initial_densities(self) -> Dict[str, float]:
        return build_distribution(
            self.distribution, self.masks.shapes, 1.0 - self.target_sparsity
        )

    @property
    def horizon(self) -> int:
        """RigL's ``T_end``: the raw stop iteration (not round-quantized)."""
        return max(1, int(self.total_iterations * self.stop_fraction))

    def update_fraction(self, iteration: int) -> float:
        """Cosine-annealed fraction of connections replaced per round."""
        if iteration >= self.horizon:
            return 0.0
        return (self.alpha / 2.0) * (1.0 + math.cos(math.pi * iteration / self.horizon))

    def _is_update_step(self, iteration: int) -> bool:
        # RigL freezes strictly *at* the horizon, unlike the ramp methods
        # which still update on the horizon iteration itself.
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration < self.horizon
        )

    def begin_round(self, iteration: int) -> None:
        self._round_fraction = self.update_fraction(iteration)

    def round_death_rate(self, iteration: int) -> float:
        return self._round_fraction

    def drop_count(self, name: str, iteration: int) -> int:
        n_active = self.masks.nonzero_count(name)
        count = int(self._round_fraction * n_active)
        return min(count, max(0, n_active - 1))

    def grow_count(self, name: str, iteration: int, dropped: int) -> int:
        return dropped

    def growth_scores(self, name: str) -> np.ndarray:
        parameter = self.masks.parameters[name]
        if parameter.grad is None:
            raise RuntimeError("RigL growth requires gradients")
        return np.abs(parameter.grad)

    def __repr__(self) -> str:
        return f"RigLSNN(sparsity={self.target_sparsity}, alpha={self.alpha})"
