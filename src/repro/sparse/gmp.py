"""Gradual Magnitude Pruning (GMP) — extension baseline.

Zhu & Gupta (2017): sparsity rises from 0 to the target along the same
cubic ramp as Eq. 4 but with *no regrowth* — weights are pruned by
magnitude at each update step and never return.  Including it isolates
the value of NDSNN's grow step: GMP shares the ramp, NDSNN adds
gradient-guided regrowth.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import SparseTrainingMethod
from .erk import build_distribution
from .mask import MaskManager
from .schedule import LayerwiseSparsityRamp


class GMPSNN(SparseTrainingMethod):
    """Cubic-ramp magnitude pruning without regrowth.

    Parameters mirror :class:`~repro.sparse.ndsnn.NDSNN` minus the
    death/growth knobs.
    """

    name = "gmp"

    def __init__(
        self,
        initial_sparsity: float = 0.0,
        final_sparsity: float = 0.9,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        ramp_power: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= initial_sparsity <= final_sparsity < 1.0:
            raise ValueError(
                f"need 0 <= theta_i <= theta_f < 1, got {initial_sparsity}, {final_sparsity}"
            )
        self.initial_sparsity = float(initial_sparsity)
        self.final_sparsity = float(final_sparsity)
        self.total_iterations = int(total_iterations)
        self.update_frequency = int(update_frequency)
        self.stop_fraction = float(stop_fraction)
        self.distribution = distribution
        self.ramp_power = float(ramp_power)
        self._rng = rng
        self.ramp: Optional[LayerwiseSparsityRamp] = None
        self.prune_trace: List[float] = []

    @property
    def num_rounds(self) -> int:
        horizon = int(self.total_iterations * self.stop_fraction)
        return max(1, horizon // self.update_frequency)

    def setup(self) -> None:
        # Guarantee at least one pruning round on very short runs.
        if self.update_frequency >= self.total_iterations:
            self.update_frequency = max(1, self.total_iterations - 1)
        self.masks = MaskManager(self.model, rng=self._rng)
        shapes = self.masks.shapes
        initial = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.initial_sparsity
            ).items()
        } if self.initial_sparsity > 0 else {name: 0.0 for name in shapes}
        final = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.final_sparsity
            ).items()
        }
        self.ramp = LayerwiseSparsityRamp(
            initial, final,
            t_start=0, num_rounds=self.num_rounds,
            update_frequency=self.update_frequency, power=self.ramp_power,
        )
        if self.initial_sparsity > 0:
            self.masks.init_random({name: 1.0 - s for name, s in initial.items()})
        self.prune_trace = []

    def _is_update_step(self, iteration: int) -> bool:
        horizon = self.num_rounds * self.update_frequency
        return (
            iteration > 0
            and iteration % self.update_frequency == 0
            and iteration <= horizon
            and iteration < self.total_iterations
        )

    def after_backward(self, iteration: int) -> None:
        if self._is_update_step(iteration):
            self._prune_to_schedule(iteration)
        self.masks.apply_to_gradients()

    def _prune_to_schedule(self, iteration: int) -> None:
        targets = self.ramp.sparsity_at(iteration)
        for name in self.masks.masks:
            layer_size = self.masks.layer_size(name)
            target_active = max(1, int(round((1.0 - targets[name]) * layer_size)))
            current = self.masks.nonzero_count(name)
            excess = current - target_active
            if excess > 0:
                self.masks.drop_by_magnitude(name, excess)
        self.masks.apply_masks()
        self.prune_trace.append(self.masks.sparsity())

    def __repr__(self) -> str:
        return f"GMPSNN(theta_f={self.final_sparsity}, dT={self.update_frequency})"
