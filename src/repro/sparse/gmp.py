"""Gradual Magnitude Pruning (GMP) — extension baseline.

Zhu & Gupta (2017): sparsity rises from 0 to the target along the same
cubic ramp as Eq. 4 but with *no regrowth* — weights are pruned by
magnitude at each update step and never return.  Including it isolates
the value of NDSNN's grow step: GMP shares the ramp, NDSNN adds
gradient-guided regrowth.

A thin strategy over :class:`~repro.sparse.engine.DropGrowMethod` with
the grow count pinned to zero.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .engine import DropGrowMethod, UpdateRecord
from .erk import build_distribution
from .schedule import LayerwiseSparsityRamp


class GMPSNN(DropGrowMethod):
    """Cubic-ramp magnitude pruning without regrowth.

    Parameters mirror :class:`~repro.sparse.ndsnn.NDSNN` minus the
    death/growth knobs.
    """

    name = "gmp"
    shrink_update_frequency = True

    def __init__(
        self,
        initial_sparsity: float = 0.0,
        final_sparsity: float = 0.9,
        total_iterations: int = 1000,
        update_frequency: int = 100,
        stop_fraction: float = 1.0,
        distribution: str = "erk",
        ramp_power: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= initial_sparsity <= final_sparsity < 1.0:
            raise ValueError(
                f"need 0 <= theta_i <= theta_f < 1, got {initial_sparsity}, {final_sparsity}"
            )
        super().__init__(
            total_iterations=total_iterations,
            update_frequency=update_frequency,
            stop_fraction=stop_fraction,
            distribution=distribution,
            rng=rng,
        )
        self.initial_sparsity = float(initial_sparsity)
        self.final_sparsity = float(final_sparsity)
        self.ramp_power = float(ramp_power)
        self.ramp: Optional[LayerwiseSparsityRamp] = None
        self.prune_trace: List[float] = []
        self._round_targets: Dict[str, float] = {}

    def configure_schedules(self) -> None:
        shapes = self.masks.shapes
        self._initial_distribution = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.initial_sparsity
            ).items()
        } if self.initial_sparsity > 0 else {name: 0.0 for name in shapes}
        final = {
            name: 1.0 - d
            for name, d in build_distribution(
                self.distribution, shapes, 1.0 - self.final_sparsity
            ).items()
        }
        self.ramp = LayerwiseSparsityRamp(
            self._initial_distribution, final,
            t_start=0, num_rounds=self.num_rounds,
            update_frequency=self.update_frequency, power=self.ramp_power,
        )
        self.prune_trace = []

    def initial_densities(self) -> Optional[Dict[str, float]]:
        if self.initial_sparsity > 0:
            return {name: 1.0 - s for name, s in self._initial_distribution.items()}
        return None  # start dense

    def begin_round(self, iteration: int) -> None:
        self._round_targets = self.ramp.sparsity_at(iteration)

    def drop_count(self, name: str, iteration: int) -> int:
        layer_size = self.masks.layer_size(name)
        target_active = max(1, int(round((1.0 - self._round_targets[name]) * layer_size)))
        return self.masks.nonzero_count(name) - target_active

    def grow_count(self, name: str, iteration: int, dropped: int) -> int:
        return 0  # pruned weights never return

    def growth_scores(self, name: str) -> None:
        return None

    def update_topology(self, iteration: int) -> UpdateRecord:
        record = super().update_topology(iteration)
        self.prune_trace.append(record.sparsity_after)
        return record

    def __repr__(self) -> str:
        return f"GMPSNN(theta_f={self.final_sparsity}, dT={self.update_frequency})"
