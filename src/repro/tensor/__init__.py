"""Numpy-backed autograd tensor engine.

This subpackage is the computational substrate of the NDSNN
reproduction: a reverse-mode autodiff engine with the operations needed
to train convolutional spiking neural networks with BPTT.
"""

from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack, where
from .conv import (
    avg_pool2d,
    col2im,
    col2im_t,
    conv2d,
    conv_output_shape,
    im2col,
    im2col_t,
    max_pool2d,
)
from .functional import (
    DISPATCH_COUNTS,
    STATIC_CSR_DENSITY_CUTOFF,
    accuracy,
    cross_entropy,
    log_softmax,
    masked_conv2d,
    masked_linear,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)
from .gradcheck import check_gradients, numeric_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "stack",
    "concatenate",
    "where",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "im2col",
    "im2col_t",
    "col2im",
    "col2im_t",
    "conv_output_shape",
    "STATIC_CSR_DENSITY_CUTOFF",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "masked_linear",
    "masked_conv2d",
    "DISPATCH_COUNTS",
    "mse_loss",
    "nll_loss",
    "accuracy",
    "one_hot",
    "check_gradients",
    "numeric_gradient",
]
