"""Finite-difference gradient verification used across the test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must re-evaluate the computation from ``tensor.data`` each
    call (a closure over the tensor), and must return a scalar Tensor.
    """
    flat = tensor.data.reshape(-1)
    grad = np.zeros_like(flat, dtype=np.float64)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        grad[i] = (plus - minus) / (2.0 * eps)
    return grad.reshape(tensor.shape)


def check_gradients(
    fn: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-3,
    atol: float = 1e-2,
    rtol: float = 5e-2,
) -> None:
    """Assert analytic gradients of scalar ``fn()`` match finite differences.

    Raises ``AssertionError`` with a readable report on mismatch.
    """
    for tensor in tensors:
        tensor.zero_grad()
    loss = fn()
    loss.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros(tensor.shape)
        numeric = numeric_gradient(fn, tensor, eps=eps)
        # Absolute tolerance scales with the gradient magnitude: central
        # differences on float32 forward passes carry noise proportional
        # to the objective's scale.
        scale = max(1.0, float(np.abs(numeric).max()))
        if not np.allclose(analytic, numeric, atol=atol * scale, rtol=rtol):
            diff = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for tensor #{index} (shape {tensor.shape}): "
                f"max abs diff {diff:.3e}\nanalytic={analytic}\nnumeric={numeric}"
            )
