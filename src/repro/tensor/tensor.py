"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, a small but complete
autograd engine in the spirit of PyTorch's eager autograd.  It supports
broadcasting, reductions, matrix multiplication and the elementwise
operations needed to train spiking neural networks with backpropagation
through time (BPTT).

The engine records a dynamic tape: every differentiable operation
produces a new :class:`Tensor` holding a backward closure and references
to its parents.  Calling :meth:`Tensor.backward` topologically sorts the
tape and accumulates gradients into every tensor with
``requires_grad=True``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

# Grad mode is per-thread: inference-server worker threads evaluate
# under no_grad() concurrently with training in other threads, and a
# process-global flag would race between them.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Inside the block, operations on tensors do not build the autograd
    tape, which saves memory during evaluation.  The switch is
    thread-local, so evaluation on one thread never disables gradients
    on another.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return True if operations are currently recorded on the tape."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that its shape matches ``shape``.

    Numpy broadcasting may have expanded an operand; the gradient of a
    broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype)
    return array


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array data (anything convertible to a numpy float32 array).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward = _backward
        self._prev = _prev if self.requires_grad or _prev else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, requires_grad: bool = False, rng: Optional[np.random.Generator] = None) -> "Tensor":
        gen = rng if rng is not None else np.random.default_rng()
        return Tensor(gen.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.asarray(array, dtype=np.float32), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the tape."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a differentiable copy of this tensor."""
        out = self._make(self.data.copy(), (self,), "clone")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        out._backward = backward
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...], op: str) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _prev=parents if requires else (), _op=op)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the objective with respect to this tensor.
            Defaults to ``1.0`` for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only "
                    "supported for scalar tensors"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float32)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            # Free intermediate gradients and graph references eagerly for
            # non-leaf nodes to bound BPTT memory.
            if node._prev and node is not self:
                node.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data + other_t.data, (self, other_t), "add")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        out._backward = backward
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,), "neg")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        out._backward = backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data - other_t.data, (self, other_t), "sub")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        out._backward = backward
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data * other_t.data, (self, other_t), "mul")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        out._backward = backward
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data / other_t.data, (self, other_t), "div")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        out._backward = backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make(self.data ** exponent, (self,), "pow")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = self._make(value, (self,), "exp")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * value)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,), "log")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        out = self._make(value, (self,), "sqrt")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / value)

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,), "abs")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make(self.data * mask, (self,), "relu")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(value, (self,), "sigmoid")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * value * (1.0 - value))

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make(value, (self,), "tanh")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - value ** 2))

        out._backward = backward
        return out

    def maximum(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        value = np.maximum(self.data, other_t.data)
        out = self._make(value, (self, other_t), "maximum")

        def backward(grad: np.ndarray) -> None:
            self_wins = (self.data >= other_t.data).astype(np.float32)
            self._accumulate(_unbroadcast(grad * self_wins, self.shape))
            other_t._accumulate(_unbroadcast(grad * (1.0 - self_wins), other_t.shape))

        out._backward = backward
        return out

    def clip(self, low: Number, high: Number) -> "Tensor":
        value = np.clip(self.data, low, high)
        inside = ((self.data >= low) & (self.data <= high)).astype(np.float32)
        out = self._make(value, (self,), "clip")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * inside)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        out = self._make(np.asarray(value, dtype=np.float32), (self,), "sum")

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(np.float32))

        out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(np.asarray(value, dtype=np.float32), (self,), "max")

        def backward(grad: np.ndarray) -> None:
            g = grad
            v = value
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                v = np.expand_dims(v, axis=axis)
            winners = (self.data == v).astype(np.float32)
            # Split gradient between ties, matching numpy argmax semantics
            # closely enough for training purposes.
            counts = winners.sum(axis=axis, keepdims=True) if axis is not None else winners.sum()
            self._accumulate(np.broadcast_to(g, self.shape) * winners / counts)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = self._make(self.data.reshape(shape), (self,), "reshape")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        out._backward = backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out = self._make(self.data.transpose(axes), (self,), "transpose")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        out._backward = backward
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out = self._make(np.pad(self.data, pad_width), (self,), "pad2d")

        def backward(grad: np.ndarray) -> None:
            slices = tuple(
                slice(None) if before == 0 else slice(before, -after or None)
                for before, after in pad_width
            )
            self._accumulate(grad[slices])

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make(self.data @ other_t.data, (self, other_t), "matmul")

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
                return
            # Lift 1-D operands to matrices; the output gradient gains
            # the corresponding singleton dimension.
            a_mat = a.reshape(1, -1) if a.ndim == 1 else a
            b_mat = b.reshape(-1, 1) if b.ndim == 1 else b
            grad_mat = grad
            if a.ndim == 1:
                grad_mat = np.expand_dims(grad_mat, axis=-2)
            if b.ndim == 1:
                grad_mat = np.expand_dims(grad_mat, axis=-1)
            grad_a = grad_mat @ np.swapaxes(b_mat, -1, -2)
            grad_b = np.swapaxes(a_mat, -1, -2) @ grad_mat
            # Sum over broadcast batch dimensions (e.g. a batched input
            # against a shared weight matrix), then restore 1-D shapes.
            grad_a = _unbroadcast(grad_a, a_mat.shape).reshape(a.shape)
            grad_b = _unbroadcast(grad_b, b_mat.shape).reshape(b.shape)
            self._accumulate(grad_a)
            other_t._accumulate(grad_b)

        out._backward = backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Comparisons (return plain numpy arrays; non-differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiably."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else (), _op="stack")

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    out._backward = backward
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiably."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else (), _op="concat")
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    out._backward = backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection: ``condition`` is a boolean numpy array."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition)
    data = np.where(cond, a_t.data, b_t.data)
    requires = is_grad_enabled() and (a_t.requires_grad or b_t.requires_grad)
    out = Tensor(data, requires_grad=requires, _prev=(a_t, b_t) if requires else (), _op="where")

    def backward(grad: np.ndarray) -> None:
        a_t._accumulate(_unbroadcast(grad * cond, a_t.shape))
        b_t._accumulate(_unbroadcast(grad * (~cond), b_t.shape))

    out._backward = backward
    return out
