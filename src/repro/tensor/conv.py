"""Convolution and pooling primitives built on im2col.

These are the compute kernels of the spiking model zoo.  The forward
pass lowers the convolution to a single matrix multiply (im2col); the
backward pass uses the transposed lowering (col2im).  Both directions
are exact, which the test suite verifies against finite differences.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .tensor import Tensor, is_grad_enabled


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]) -> np.ndarray:
    """Lower image patches to columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_shape(h, kh, sh, ph)
    out_w = conv_output_shape(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    # Strided view: (N, C, kh, kw, out_h, out_w)
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    return view.reshape(n, c * kh * kw, out_h * out_w).copy()


def im2col_t(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]) -> np.ndarray:
    """Patch lowering directly in the ``(K, N*L)`` layout.

    The CSR conv kernel consumes its right operand as a
    ``(C*kh*kw, N*out_h*out_w)`` matrix.  :func:`im2col` produces
    ``(N, K, L)`` and the caller would pay a second transpose copy to
    reach that layout; here the strided view is ordered ``(c, kh, kw,
    n, oh, ow)`` so the single reshape copy lands in kernel layout.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_shape(h, kh, sh, ph)
    out_w = conv_output_shape(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    # Strided view: (C, kh, kw, N, out_h, out_w)
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(c, kh, kw, n, out_h, out_w),
        strides=(s1, s2, s3, s0, s2 * sh, s3 * sw),
        writeable=False,
    )
    return view.reshape(c * kh * kw, n * out_h * out_w)


def col2im_t(
    cols_t: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col_t`: scatter-add ``(K, N*L)`` columns back.

    Used by the CSR conv backward: the transposed sparse product emits
    the input gradient already in ``(K, N*L)`` layout, so scattering
    from it directly skips the transpose copy the ``(N, K, L)`` route
    would need.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_shape(h, kh, sh, ph)
    out_w = conv_output_shape(w, kw, sw, pw)

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols_t.dtype)
    cols6 = cols_t.reshape(c, kh, kw, n, out_h, out_w)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols6[:, i, j].transpose(1, 0, 2, 3)
    if ph or pw:
        return padded[:, :, ph:h + ph, pw:w + pw]
    return padded


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_shape(h, kh, sh, ph)
    out_w = conv_output_shape(w, kw, sw, pw)

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols6[:, :, i, j, :, :]
    if ph or pw:
        return padded[:, :, ph:h + ph, pw:w + pw]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor = None, stride=1, padding=0) -> Tensor:
    """2-D convolution over an ``(N, C, H, W)`` input.

    Parameters
    ----------
    weight:
        Filter bank of shape ``(F, C, kh, kw)``.
    bias:
        Optional per-filter bias of shape ``(F,)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    f, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"input channels {c} do not match weight channels {c_w}")
    out_h = conv_output_shape(h, kh, stride[0], padding[0])
    out_w = conv_output_shape(w, kw, stride[1], padding[1])

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N, C*kh*kw, L)
    w_mat = weight.data.reshape(f, -1)  # (F, C*kh*kw)
    out_data = np.einsum("fk,nkl->nfl", w_mat, cols, optimize=True)
    out_data = out_data.reshape(n, f, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires, _prev=parents if requires else (), _op="conv2d")

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, f, out_h * out_w)  # (N, F, L)
        if weight.requires_grad:
            grad_w = np.einsum("nfl,nkl->fk", grad_mat, cols, optimize=True)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.einsum("fk,nfl->nkl", w_mat, grad_mat, optimize=True)
            x._accumulate(col2im(grad_cols, (n, c, h, w), (kh, kw), stride, padding))

    out._backward = backward
    return out


def avg_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Average pooling over the spatial dimensions."""
    kernel = _pair(kernel_size)
    stride_p = _pair(stride) if stride is not None else kernel
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride_p
    out_h = conv_output_shape(h, kh, sh, 0)
    out_w = conv_output_shape(w, kw, sw, 0)

    cols = im2col(x.data, kernel, stride_p, (0, 0)).reshape(n, c, kh * kw, out_h * out_w)
    out_data = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    requires = is_grad_enabled() and x.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(x,) if requires else (), _op="avg_pool2d")

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.repeat(
            grad.reshape(n, c, 1, out_h * out_w) / (kh * kw), kh * kw, axis=2
        ).reshape(n, c * kh * kw, out_h * out_w)
        x._accumulate(col2im(grad_cols, (n, c, h, w), kernel, stride_p, (0, 0)))

    out._backward = backward
    return out


def max_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Max pooling over the spatial dimensions."""
    kernel = _pair(kernel_size)
    stride_p = _pair(stride) if stride is not None else kernel
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride_p
    out_h = conv_output_shape(h, kh, sh, 0)
    out_w = conv_output_shape(w, kw, sw, 0)

    cols = im2col(x.data, kernel, stride_p, (0, 0)).reshape(n, c, kh * kw, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out_data = out_data.reshape(n, c, out_h, out_w)
    requires = is_grad_enabled() and x.requires_grad
    out = Tensor(out_data, requires_grad=requires, _prev=(x,) if requires else (), _op="max_pool2d")

    def backward(grad: np.ndarray) -> None:
        grad_cols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(
            grad_cols, argmax[:, :, None, :], grad.reshape(n, c, 1, out_h * out_w), axis=2
        )
        x._accumulate(
            col2im(grad_cols.reshape(n, c * kh * kw, out_h * out_w), (n, c, h, w), kernel, stride_p, (0, 0))
        )

    out._backward = backward
    return out
