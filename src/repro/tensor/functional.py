"""Loss functions and classification helpers on :class:`Tensor`."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_grad_enabled


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` of shape ``(N, K)`` and
    integer class labels ``targets`` of shape ``(N,)``.

    A dedicated fused op: the backward is the classic
    ``softmax(logits) - one_hot(targets)`` expression, which avoids
    building the elementwise log-softmax graph for every BPTT timestep.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects logits of shape (N, K)")
    n, k = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match batch {n}")

    z = logits.data
    z_max = z.max(axis=1, keepdims=True)
    exp_z = np.exp(z - z_max)
    probs = exp_z / exp_z.sum(axis=1, keepdims=True)
    log_probs = (z - z_max) - np.log(exp_z.sum(axis=1, keepdims=True))

    one_hot = np.zeros_like(z)
    one_hot[np.arange(n), targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / k

    loss_value = -(one_hot * log_probs).sum(axis=1).mean()
    requires = is_grad_enabled() and logits.requires_grad
    out = Tensor(
        np.float32(loss_value),
        requires_grad=requires,
        _prev=(logits,) if requires else (),
        _op="cross_entropy",
    )

    def backward(grad: np.ndarray) -> None:
        logits._accumulate(grad * (probs - one_hot) / n)

    out._backward = backward
    return out


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error loss."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood over precomputed log-probabilities."""
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` of shape ``(N, K)``."""
    predictions = logits.data.argmax(axis=1)
    return float((predictions == np.asarray(targets)).mean())


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels to a float32 one-hot matrix."""
    targets = np.asarray(targets)
    out = np.zeros((targets.shape[0], num_classes), dtype=np.float32)
    out[np.arange(targets.shape[0]), targets] = 1.0
    return out
