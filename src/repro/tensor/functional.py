"""Loss functions, classification helpers and the sparse op dispatch.

Besides the losses, this module hosts the dense-vs-CSR dispatch shim
for masked layers: :func:`masked_linear` and :func:`masked_conv2d`
inspect the layer's :class:`~repro.sparse.engine.MaskedParameter`
state (if any) and route the computation through the CSR kernels when
the owning :class:`~repro.sparse.engine.SparsityManager` decides the
measured density warrants it.  The dense route is byte-identical to
the historical layer forward, so masked and unmasked models share one
code path.

Gradient parity: the CSR route computes the *weight* gradient densely
(the drop-and-grow methods score regrowth by dense gradient magnitude,
so sparsifying it would change the algorithm) while the forward product
and the input gradient run at sparse cost.
"""

from __future__ import annotations

import numpy as np

from .conv import col2im_t, conv_output_shape, im2col_t
from .tensor import Tensor, is_grad_enabled

#: Dispatch counters (reset freely in tests/benches): how many forward
#: calls took each route since process start.
DISPATCH_COUNTS = {"dense": 0, "csr": 0}

#: Static fallback density cutoff for ``auto`` execution when no
#: measured calibration table is available.  Deliberately conservative:
#: ``BENCH_kernels.json`` shows CSR is a *slowdown* at 50% density and
#: only clearly ahead below ~15–20%, so the uncalibrated dispatcher
#: must never route a known-losing density through the sparse kernels.
#: Calibrated dispatch (``repro.sparse.dispatch``) replaces this with a
#: per-shape measured crossover.
STATIC_CSR_DENSITY_CUTOFF = 0.15


def _use_csr(state) -> bool:
    if state is None or getattr(state, "manager", None) is None:
        return False
    return state.manager.use_csr(state)


def _csr_values(state, pattern, weight) -> np.ndarray:
    """Active weight values in CSR order.

    Real :class:`~repro.sparse.engine.MaskedParameter` states keep a
    write-through value cache refreshed by the optimizer step, so this
    is a no-copy read on the training hot path.  Minimal states (tests,
    external callers) without the cache fall back to a per-call gather.
    """
    values = getattr(state, "csr_values", None)
    if values is not None:
        return values()
    return pattern.gather(weight)


def masked_linear(x: Tensor, weight: Tensor, bias: Tensor = None, state=None) -> Tensor:
    """``y = x W^T + b`` with density-based dense/CSR dispatch.

    ``state`` is the layer's :class:`MaskedParameter` (or ``None`` for
    an unmasked layer); the dense route reproduces the historical
    ``Linear.forward`` exactly.
    """
    if not _use_csr(state):
        DISPATCH_COUNTS["dense"] += 1
        out = x.matmul(weight.T)
        if bias is not None:
            out = out + bias
        return out
    DISPATCH_COUNTS["csr"] += 1
    pattern = state.csr_pattern()
    data = _csr_values(state, pattern, weight.data)
    out_data = pattern.matmul(data, x.data.T).T
    if bias is not None:
        out_data = out_data + bias.data

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires,
                 _prev=parents if requires else (), _op="masked_linear")

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            # Dense weight gradient: regrowth criteria need scores at
            # *inactive* positions too (exact parity with the dense path).
            weight._accumulate(grad.T @ x.data)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))
        if x.requires_grad:
            x._accumulate(pattern.t_matmul(data, grad.T).T)

    out._backward = backward
    return out


def masked_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: int = 1,
    padding: int = 0,
    state=None,
) -> Tensor:
    """2-D convolution with density-based dense/CSR dispatch.

    The CSR route is a direct sparse-filter kernel: the input is
    lowered once, straight into the ``(C*kh*kw, N*L)`` layout the
    sparse product consumes (:func:`~repro.tensor.conv.im2col_t`), so
    the hot loop pays a single copy where the historical im2col +
    transpose route paid two.  The backward reuses the same lowering
    for the weight gradient and scatters the input gradient from the
    transposed layout without any intermediate copy.
    """
    if not _use_csr(state):
        DISPATCH_COUNTS["dense"] += 1
        from .conv import conv2d

        return conv2d(x, weight, bias, stride=stride, padding=padding)
    DISPATCH_COUNTS["csr"] += 1

    stride_p = (int(stride), int(stride)) if isinstance(stride, int) else tuple(stride)
    padding_p = (int(padding), int(padding)) if isinstance(padding, int) else tuple(padding)
    n, c, h, w = x.shape
    f, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"input channels {c} do not match weight channels {c_w}")
    out_h = conv_output_shape(h, kh, stride_p[0], padding_p[0])
    out_w = conv_output_shape(w, kw, stride_p[1], padding_p[1])
    length = out_h * out_w

    cols_t = im2col_t(x.data, (kh, kw), stride_p, padding_p)  # (K, N*L)
    pattern = state.csr_pattern()
    data = _csr_values(state, pattern, weight.data)
    out_mat = pattern.matmul(data, cols_t)  # (F, N*L)
    out_data = out_mat.reshape(f, n, length).transpose(1, 0, 2).reshape(n, f, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires,
                 _prev=parents if requires else (), _op="masked_conv2d")

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, f, length).transpose(1, 0, 2).reshape(f, n * length)
        if weight.requires_grad:
            # Dense weight gradient (regrowth scores need inactive
            # positions too); one BLAS product against the lowering.
            grad_w = grad_flat @ cols_t.T
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols_t = pattern.t_matmul(data, grad_flat)  # (K, N*L)
            x._accumulate(col2im_t(grad_cols_t, (n, c, h, w), (kh, kw), stride_p, padding_p))

    out._backward = backward
    return out


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` of shape ``(N, K)`` and
    integer class labels ``targets`` of shape ``(N,)``.

    A dedicated fused op: the backward is the classic
    ``softmax(logits) - one_hot(targets)`` expression, which avoids
    building the elementwise log-softmax graph for every BPTT timestep.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects logits of shape (N, K)")
    n, k = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match batch {n}")

    z = logits.data
    z_max = z.max(axis=1, keepdims=True)
    exp_z = np.exp(z - z_max)
    probs = exp_z / exp_z.sum(axis=1, keepdims=True)
    log_probs = (z - z_max) - np.log(exp_z.sum(axis=1, keepdims=True))

    one_hot = np.zeros_like(z)
    one_hot[np.arange(n), targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / k

    loss_value = -(one_hot * log_probs).sum(axis=1).mean()
    requires = is_grad_enabled() and logits.requires_grad
    out = Tensor(
        np.float32(loss_value),
        requires_grad=requires,
        _prev=(logits,) if requires else (),
        _op="cross_entropy",
    )

    def backward(grad: np.ndarray) -> None:
        logits._accumulate(grad * (probs - one_hot) / n)

    out._backward = backward
    return out


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error loss."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood over precomputed log-probabilities."""
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` of shape ``(N, K)``."""
    predictions = logits.data.argmax(axis=1)
    return float((predictions == np.asarray(targets)).mean())


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels to a float32 one-hot matrix."""
    targets = np.asarray(targets)
    out = np.zeros((targets.shape[0], num_classes), dtype=np.float32)
    out[np.arange(targets.shape[0]), targets] = 1.0
    return out
