"""Event-stream abstractions for event-driven SNN inference.

An event is one sensor reading: ``(stream_id, timestamp, channels)``.
Streams are *irregular* — inter-arrival times vary per source — and a
deployment multiplexes many sources (one per device / sensor bundle)
into a single globally time-ordered feed.  This module provides the
minimal vocabulary:

* :class:`StreamEvent` — an immutable event record.
* :class:`StreamSource` — anything that yields its own events in
  timestamp order (see :class:`repro.data.telemetry.TelemetrySource`
  for the synthetic reference implementation).
* :class:`EventStream` — a k-way timestamp-ordered merge of sources,
  the feed the session layer consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

import numpy as np


@dataclass(frozen=True)
class StreamEvent:
    """One sensor reading from one stream.

    Attributes
    ----------
    stream_id:
        Stable identity of the emitting source; the session layer keys
        persistent neuron state on it.
    timestamp:
        Event time in seconds (monotone per source, not globally
        dense — arrival is irregular by design).
    channels:
        1-D float32 vector of per-channel readings in ``[0, 1]``.
    """

    stream_id: str
    timestamp: float
    channels: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        channels = np.asarray(self.channels, dtype=np.float32)
        if channels.ndim != 1:
            raise ValueError(
                f"channels must be a 1-D vector, got shape {channels.shape}"
            )
        object.__setattr__(self, "channels", channels)

    @property
    def num_channels(self) -> int:
        return int(self.channels.shape[0])


class StreamSource:
    """A single event producer.

    Subclasses implement :meth:`events` yielding :class:`StreamEvent`
    in non-decreasing timestamp order, and expose ``stream_id`` and
    ``num_channels``.  Sources are restartable: each ``events()`` call
    starts a fresh, deterministic pass (important for replay-based
    bit-identity checks).
    """

    stream_id: str
    num_channels: int

    def events(self) -> Iterator[StreamEvent]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[StreamEvent]:
        return self.events()


class ListSource(StreamSource):
    """In-memory source over a fixed event list (tests, replays)."""

    def __init__(self, stream_id: str, events: Sequence[StreamEvent]) -> None:
        events = list(events)
        for prev, cur in zip(events, events[1:]):
            if cur.timestamp < prev.timestamp:
                raise ValueError("events must be in non-decreasing timestamp order")
        for event in events:
            if event.stream_id != stream_id:
                raise ValueError(
                    f"event stream_id {event.stream_id!r} != source {stream_id!r}"
                )
        self.stream_id = stream_id
        self.num_channels = events[0].num_channels if events else 0
        self._events = events

    def events(self) -> Iterator[StreamEvent]:
        return iter(self._events)


class EventStream:
    """Timestamp-ordered merge of multiple sources.

    Ties are broken by source registration order then per-source
    sequence, so the merged order is fully deterministic — replays of
    the same sources produce the same feed, which is what lets the
    streaming tests demand bit-identical results.
    """

    def __init__(self, sources: Iterable[StreamSource]) -> None:
        self.sources: List[StreamSource] = list(sources)
        if not self.sources:
            raise ValueError("EventStream needs at least one source")
        seen = set()
        for source in self.sources:
            if source.stream_id in seen:
                raise ValueError(f"duplicate stream_id {source.stream_id!r}")
            seen.add(source.stream_id)

    @property
    def stream_ids(self) -> List[str]:
        return [source.stream_id for source in self.sources]

    def __iter__(self) -> Iterator[StreamEvent]:
        def keyed(index: int, source: StreamSource):
            for seq, event in enumerate(source.events()):
                yield (event.timestamp, index, seq), event

        merged = heapq.merge(
            *(keyed(i, s) for i, s in enumerate(self.sources)), key=lambda kv: kv[0]
        )
        for _, event in merged:
            yield event

    def take(self, limit: int) -> List[StreamEvent]:
        """First ``limit`` events of the merged feed (fresh replay)."""
        out: List[StreamEvent] = []
        for event in self:
            out.append(event)
            if len(out) >= limit:
                break
        return out
