"""Event-driven streaming inference over sparse spiking models."""

from .encoders import (
    OnlineDirectEncoder,
    OnlineEncoder,
    OnlineLatencyEncoder,
    OnlineRateEncoder,
    build_online_encoder,
)
from .adapt import AdaptiveStreamSession, OnlineAdaptation
from .events import EventStream, ListSource, StreamEvent, StreamSource
from .faults import StreamFaultInjector
from .session import StreamResult, StreamSession

__all__ = [
    "StreamEvent",
    "StreamSource",
    "ListSource",
    "EventStream",
    "OnlineEncoder",
    "OnlineDirectEncoder",
    "OnlineRateEncoder",
    "OnlineLatencyEncoder",
    "build_online_encoder",
    "StreamSession",
    "StreamResult",
    "AdaptiveStreamSession",
    "OnlineAdaptation",
    "StreamFaultInjector",
]
