"""Continual online mask adaptation for streaming sessions.

Training-time drop/grow (NDSNN, SET, RigL) ranks connections with
gradients; a deployed stream has none.  The streaming signal that *is*
available is activity: which input channels and hidden neurons actually
fire.  :class:`OnlineAdaptation` maintains an exponential moving
average of each masked layer's input activity and scores connections by

    score[i, j] = |W[i, j]| * (eps + activity_ema[j])

so the drop step removes weak synapses on quiet inputs first, and the
grow step reconnects toward busy inputs.  Density is held exactly: the
grow count equals the drop count, so the :class:`SparsityManager`'s
per-layer density targets survive any number of adaptation rounds.

The machinery reuses :class:`~repro.sparse.engine.DropGrowMethod`
wholesale — the streaming method only overrides the score hooks — so
audit history (:class:`UpdateRecord`), momentum bookkeeping and mask
re-application behave exactly as during training.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..snn.neuron import BaseNeuron
from ..sparse.engine import DropGrowMethod, SparsityManager
from .session import StreamResult, StreamSession

_EPS = 1e-3


class OnlineAdaptation(DropGrowMethod):
    """Activity-EMA drop/grow over an already-bound manager.

    Unlike training methods, this adopts an existing ``(model,
    manager)`` pair instead of building its own masks at ``setup`` —
    the streaming session already owns them.

    Parameters
    ----------
    model / manager:
        The served model and its (thawed) sparsity manager.
    death_rate:
        Fraction of each layer's active weights replaced per round.
    ema_decay:
        Decay of the input-activity EMA (per observed event).
    """

    name = "online-adapt"

    def __init__(
        self,
        model,
        manager: SparsityManager,
        death_rate: float = 0.05,
        ema_decay: float = 0.95,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < death_rate < 1.0:
            raise ValueError("death_rate must lie in (0, 1)")
        if not 0.0 <= ema_decay < 1.0:
            raise ValueError("ema_decay must lie in [0, 1)")
        super().__init__(
            total_iterations=2**31, update_frequency=1, rng=rng
        )
        self.model = model
        self.masks = manager
        self.death_rate = float(death_rate)
        self.ema_decay = float(ema_decay)
        #: Per-layer EMA over the layer's *input* features; absent until
        #: the first observation (scores fall back to magnitude/random).
        self.activity: Dict[str, np.ndarray] = {}
        # Map manager entries ("body.0.weight") to module paths so the
        # observation walk can align activities with layers.
        self._module_of = {
            name: name.rsplit(".", 1)[0] for name in manager.states
        }

    def setup(self) -> None:  # the adopted manager is already configured
        self.history = []

    def initial_densities(self) -> Optional[Dict[str, float]]:
        return None

    # ------------------------------------------------------------------
    # Activity observation
    # ------------------------------------------------------------------
    def observe(self, frame: np.ndarray) -> None:
        """Update activity EMAs right after one ``forward_once``.

        Walks the module tree in registration order (which matches
        execution order for the sequential zoo models): the encoded
        input frame feeds the first masked layer, and each
        :class:`BaseNeuron`'s fresh output spikes (``o_prev``) feed the
        masked layers behind it.  Layers whose fan-in does not match
        the tracked activity vector (e.g. conv weights) keep a missing
        EMA and fall back to magnitude scores.
        """
        activity = np.abs(np.asarray(frame, dtype=np.float32)).mean(axis=0)
        module_activity: Dict[str, np.ndarray] = {}
        for path, module in self.model.named_modules():
            module_activity[path] = activity
            if isinstance(module, BaseNeuron) and module.o_prev is not None:
                activity = np.abs(module.o_prev.data).mean(axis=0).reshape(-1)
        for name, state in self.masks.states.items():
            observed = module_activity.get(self._module_of[name])
            if observed is None or observed.ndim != 1:
                continue
            if state.shape[-1] != observed.shape[0]:
                continue
            previous = self.activity.get(name)
            if previous is None:
                self.activity[name] = observed.astype(np.float32)
            else:
                self.activity[name] = (
                    self.ema_decay * previous + (1.0 - self.ema_decay) * observed
                ).astype(np.float32)

    # ------------------------------------------------------------------
    # DropGrowMethod hooks
    # ------------------------------------------------------------------
    def drop_count(self, name: str, iteration: int) -> int:
        return int(self.death_rate * self.masks.nonzero_count(name))

    def grow_count(self, name: str, iteration: int, dropped: int) -> int:
        return dropped  # exact density hold

    def _scores(self, name: str) -> Optional[np.ndarray]:
        ema = self.activity.get(name)
        if ema is None:
            return None
        state = self.masks.states[name]
        weights = np.abs(state.parameter.data)
        return (weights + _EPS) * (ema[None, :] + _EPS)

    def drop_scores(self, name: str) -> Optional[np.ndarray]:
        return self._scores(name)

    def growth_scores(self, name: str) -> Optional[np.ndarray]:
        # Grown weights start at zero, so ranking inactive positions by
        # (|W| + eps) * (ema + eps) reduces to ranking by input
        # activity — reconnect toward busy inputs.
        return self._scores(name)

    def round_death_rate(self, iteration: int) -> float:
        return self.death_rate


class AdaptiveStreamSession(StreamSession):
    """Thawed streaming session with periodic online mask adaptation.

    Every ``adapt_every`` emitted windows the session runs one
    :meth:`OnlineAdaptation.update_topology` round.  Density is held
    (grow == drop per layer), the adaptation history is available as
    ``session.method.history``, and per-stream neuron state is
    untouched by mask edits (membranes live at the neuron layer, not in
    the weights).
    """

    requires_frozen = False

    def __init__(
        self,
        model,
        manager: SparsityManager,
        adapt_every: int = 4,
        death_rate: float = 0.05,
        ema_decay: float = 0.95,
        **session_kwargs,
    ) -> None:
        if adapt_every < 1:
            raise ValueError("adapt_every must be >= 1")
        if manager.frozen:
            manager.thaw()
        super().__init__(model, manager=manager, **session_kwargs)
        self.adapt_every = int(adapt_every)
        self.method = OnlineAdaptation(
            model, manager, death_rate=death_rate, ema_decay=ema_decay,
            rng=manager.rng,
        )
        self.method.setup()
        self._windows_emitted = 0
        self._rounds = 0

    def _after_step(self, frame: np.ndarray) -> None:
        self.method.observe(frame)

    def _after_window(self, result: StreamResult) -> None:
        self._windows_emitted += 1
        if self._windows_emitted % self.adapt_every == 0:
            self._rounds += 1
            self.method.update_topology(self._rounds)

    @property
    def adaptation_rounds(self) -> int:
        return self._rounds
