"""Online (per-event) encoders for streaming inference.

The offline encoders in :mod:`repro.snn.encoding` expand one sample
into ``T`` frames; in a stream each arriving event *is* one timestep,
so an online encoder maps one channel vector to one frame, carrying
whatever per-stream state it needs (RNG stream, window phase) in a
plain dict the session snapshots alongside the neuron state.

All encoder state lives in the per-stream ``state`` dict — the encoder
object itself is stateless and shared across streams — so snapshots of
a stream capture everything needed to replay it bit-exactly.
"""

from __future__ import annotations

import copy
from typing import Dict

import numpy as np

from ..data.telemetry import stream_seed


class OnlineEncoder:
    """Maps one event's channel vector to one input frame."""

    def init_state(self, stream_id: str) -> Dict:
        """Fresh per-stream encoder state (empty by default)."""
        return {}

    def encode(self, channels: np.ndarray, state: Dict) -> np.ndarray:
        """One ``(C,)`` float32 frame; may mutate ``state`` in place."""
        raise NotImplementedError

    @staticmethod
    def copy_state(state: Dict) -> Dict:
        """Detached deep copy (RNG states are nested dicts)."""
        return copy.deepcopy(state)


class OnlineDirectEncoder(OnlineEncoder):
    """Constant-current: the reading itself is the input frame."""

    def encode(self, channels: np.ndarray, state: Dict) -> np.ndarray:
        return np.asarray(channels, dtype=np.float32)

    def __repr__(self) -> str:
        return "OnlineDirectEncoder()"


class OnlineRateEncoder(OnlineEncoder):
    """Streaming Poisson rate coding.

    Each event emits a Bernoulli spike frame with per-channel firing
    probability equal to the reading.  The per-stream RNG is derived
    from ``(seed, stream_id)`` and its state rides in the stream
    snapshot, so replays and crash-resumes are bit-identical.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def init_state(self, stream_id: str) -> Dict:
        rng = np.random.default_rng(stream_seed(self.seed, stream_id))
        return {"rng": rng.bit_generator.state}

    def encode(self, channels: np.ndarray, state: Dict) -> np.ndarray:
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng"]
        probabilities = np.clip(np.asarray(channels, dtype=np.float32), 0.0, 1.0)
        frame = (rng.random(probabilities.shape) < probabilities).astype(np.float32)
        state["rng"] = rng.bit_generator.state
        return frame

    def __repr__(self) -> str:
        return f"OnlineRateEncoder(seed={self.seed})"


class OnlineLatencyEncoder(OnlineEncoder):
    """Streaming time-to-first-spike coding over a window phase.

    A channel reading ``x`` fires on the window phase closest to
    ``(1 - x) * (window - 1)`` — brighter earlier, like the offline
    :class:`~repro.snn.encoding.LatencyEncoder`, but evaluated against
    each event's own reading at the event's position in the window.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)

    def init_state(self, stream_id: str) -> Dict:
        return {"phase": 0}

    def encode(self, channels: np.ndarray, state: Dict) -> np.ndarray:
        intensity = np.clip(np.asarray(channels, dtype=np.float32), 0.0, 1.0)
        fire_step = np.rint((1.0 - intensity) * (self.window - 1)).astype(np.int64)
        frame = (fire_step == state["phase"]).astype(np.float32)
        state["phase"] = (state["phase"] + 1) % self.window
        return frame

    def __repr__(self) -> str:
        return f"OnlineLatencyEncoder(window={self.window})"


def build_online_encoder(name: str, window: int, seed: int = 0) -> OnlineEncoder:
    """Factory: ``direct``, ``rate`` or ``latency``."""
    if name == "direct":
        return OnlineDirectEncoder()
    if name == "rate":
        return OnlineRateEncoder(seed=seed)
    if name == "latency":
        return OnlineLatencyEncoder(window=window)
    raise ValueError(
        f"unknown online encoder {name!r}; available: ['direct', 'latency', 'rate']"
    )
