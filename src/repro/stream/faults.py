"""Stream fault model: channel dropout, stalls, mid-stream reconnect.

Reuses the shared fault-spec vocabulary from :mod:`repro.train.faults`
(one config surface for training-time and stream-time faults) and
applies the stream-scope kinds as an event-feed transform:

* ``channel_dropout`` — a random fraction of a faulted event's
  channels reads zero (dead sensor lines);
* ``stall`` — the source goes quiet for ``duration`` seconds: later
  events of that stream shift forward in time, which is what trips the
  session's stale-state TTL;
* ``reconnect`` — the device drops off and reconnects: ``drop``
  events are lost *and* a ``gap``-second hole opens.

The injector is a pure iterator transform (sessions/ servers consume
the faulted feed unchanged), deterministic under its seed, and keeps
every event well-formed — graceful degradation is the session's job,
delivery of plausible corrupted input is this module's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Union

import numpy as np

from .events import StreamEvent

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..train.faults import FaultSpec


class StreamFaultInjector:
    """Applies stream-scope fault specs to an event feed.

    Parameters
    ----------
    specs:
        Stream-scope fault specs (strings or :class:`FaultSpec`).
        Weight-scope kinds are rejected — those belong to
        :class:`~repro.train.faults.FaultInjectionCallback`.
    seed:
        Seed of the injector's own RNG stream (fault placement is
        deterministic and independent of model/encoder RNGs).
    """

    def __init__(
        self,
        specs: Sequence[Union[str, FaultSpec]],
        seed: int = 0,
    ) -> None:
        # Imported here, not at module top: stream serving (and packed
        # deployment in general) must not pull in the training stack.
        from ..train.faults import parse_fault_spec

        self.specs: List[FaultSpec] = []
        for spec in specs:
            parsed = parse_fault_spec(spec) if isinstance(spec, str) else spec
            if parsed.scope != "stream":
                raise ValueError(
                    f"fault {parsed.kind!r} is a weight fault; use "
                    "FaultInjectionCallback for training-time injection"
                )
            self.specs.append(parsed)
        self.seed = int(seed)
        self.counts: Dict[str, int] = {"channel_dropout": 0, "stall": 0, "reconnect": 0}

    def apply(self, events: Iterable[StreamEvent]) -> Iterator[StreamEvent]:
        """Faulted view of ``events`` (a fresh deterministic pass)."""
        rng = np.random.default_rng(self.seed)
        offsets: Dict[str, float] = {}
        pending_drops: Dict[str, int] = {}
        for event in events:
            stream_id = event.stream_id
            if pending_drops.get(stream_id, 0) > 0:
                pending_drops[stream_id] -= 1
                continue
            channels = event.channels
            for spec in self.specs:
                p = spec.params.get("p", 1.0)
                if rng.random() >= p:
                    continue
                self.counts[spec.kind] += 1
                if spec.kind == "channel_dropout":
                    dead = rng.random(channels.shape[0]) < spec.params["fraction"]
                    channels = np.where(dead, np.float32(0.0), channels)
                elif spec.kind == "stall":
                    offsets[stream_id] = (
                        offsets.get(stream_id, 0.0) + spec.params["duration"]
                    )
                else:  # reconnect: lose events and open a gap
                    pending_drops[stream_id] = (
                        pending_drops.get(stream_id, 0) + int(spec.params["drop"])
                    )
                    offsets[stream_id] = offsets.get(stream_id, 0.0) + spec.params["gap"]
            yield StreamEvent(
                stream_id=stream_id,
                timestamp=event.timestamp + offsets.get(stream_id, 0.0),
                channels=channels,
            )

    def __call__(self, events: Iterable[StreamEvent]) -> Iterator[StreamEvent]:
        return self.apply(events)

    def __repr__(self) -> str:
        kinds = [spec.kind for spec in self.specs]
        return f"StreamFaultInjector(kinds={kinds}, seed={self.seed})"
