"""Stateful per-stream inference sessions.

A :class:`StreamSession` runs one spiking model over a multiplexed
event feed, holding persistent neuron membrane state *per stream*: each
arriving event is one timestep for its stream, and state is swapped in
and out of the shared model instance around every ``forward_once``.

Windowing — the readout is emitted per window of ``window`` events:

* ``stride == window`` (tumbling, the default): neuron state carries
  across events *within* a window and resets at the boundary.  Each
  event costs exactly one ``forward_once``.
* ``stride < window`` (sliding): consecutive windows overlap.  On
  emission the session replays the retained tail of buffered *encoded*
  frames from a fresh reset, so every emitted window is exactly the
  offline pass over its frames.

Either way the emitted logits are **bit-identical** to
``model.forward_window(frames)`` over the same encoded frames: the
incremental accumulator uses the same op order (plain float32 adds,
then one scale by ``1/len``) as the offline loop, and the state
snapshot/restore round-trip is exact.

Fault tolerance: ``process`` is transactional — per-stream state only
commits when the event fully processed, so a worker crash mid-event
costs a retry, never corrupted state.  Stale streams (event-time gap
beyond ``ttl``) are reset (or carried, per ``reset_policy``) instead of
poisoning the readout with decayed membranes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..snn.functional import reset_net, restore_net_state, snapshot_net_state
from ..tensor import Tensor, no_grad
from .encoders import OnlineEncoder, build_online_encoder
from .events import StreamEvent


@dataclass(frozen=True)
class StreamResult:
    """One emitted window readout for one stream."""

    stream_id: str
    timestamp: float
    logits: np.ndarray = field(repr=False)
    window_index: int
    events_in_window: int
    frames: Tuple[np.ndarray, ...] = field(repr=False)
    partial: bool = False

    @property
    def prediction(self) -> int:
        return int(np.argmax(self.logits))


class _StreamState:
    """Everything one stream carries between events."""

    __slots__ = (
        "net_state", "encoder_state", "frames", "acc", "count",
        "last_event_time", "events", "windows", "stale_resets",
        "num_channels",
    )

    def __init__(self, encoder_state: Dict, num_channels: int) -> None:
        self.net_state: Optional[Dict] = None
        self.encoder_state = encoder_state
        self.frames: List[np.ndarray] = []
        self.acc: Optional[np.ndarray] = None
        self.count = 0
        self.last_event_time: Optional[float] = None
        self.events = 0
        self.windows = 0
        self.stale_resets = 0
        self.num_channels = num_channels

    def clone(self, encoder: OnlineEncoder) -> "_StreamState":
        copy = _StreamState(encoder.copy_state(self.encoder_state), self.num_channels)
        # net_state/frames entries are already detached arrays produced
        # by snapshot/encode; sharing them is safe because processing
        # never mutates them in place.
        copy.net_state = self.net_state
        copy.frames = list(self.frames)
        copy.acc = None if self.acc is None else self.acc.copy()
        copy.count = self.count
        copy.last_event_time = self.last_event_time
        copy.events = self.events
        copy.windows = self.windows
        copy.stale_resets = self.stale_resets
        return copy

    def reset_window(self) -> None:
        self.net_state = None
        self.frames = []
        self.acc = None
        self.count = 0


class StreamSession:
    """Sliding-window sparse inference with per-stream neuron state.

    Parameters
    ----------
    model:
        A :class:`~repro.snn.models.base.SpikingModel`; put to eval
        mode on construction.  The session owns its temporal state —
        callers must not run the model concurrently.
    window:
        Events per readout window.
    stride:
        Events between consecutive readouts (default ``window`` =
        tumbling windows).
    encoder:
        Online encoder name (``direct``/``rate``/``latency``) or an
        :class:`~repro.stream.encoders.OnlineEncoder` instance.
    manager:
        Optional :class:`~repro.sparse.engine.SparsityManager` bound to
        the model.  When given it must already be frozen — streaming
        inference runs over frozen CSR sessions; use
        :class:`~repro.stream.adapt.AdaptiveStreamSession` for the
        thawed, continually-adapting variant.
    ttl:
        Event-time staleness bound in seconds.  A stream whose
        inter-event gap exceeds it is handled per ``reset_policy``.
    reset_policy:
        ``"reset"`` (default) drops the stale window and starts fresh;
        ``"carry"`` keeps the decayed state (monitoring only — the
        stale counter still increments).
    seed:
        Seed forwarded to the online encoder factory when ``encoder``
        is a name.
    """

    requires_frozen = True

    def __init__(
        self,
        model,
        window: int = 8,
        stride: Optional[int] = None,
        encoder: str = "direct",
        manager=None,
        ttl: Optional[float] = None,
        reset_policy: str = "reset",
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        stride = window if stride is None else int(stride)
        if not 1 <= stride <= window:
            raise ValueError("stride must lie in [1, window]")
        if reset_policy not in ("reset", "carry"):
            raise ValueError("reset_policy must be 'reset' or 'carry'")
        if ttl is not None and ttl <= 0.0:
            raise ValueError("ttl must be positive")
        self.model = model
        self.window = int(window)
        self.stride = stride
        self.manager = manager
        self.ttl = ttl
        self.reset_policy = reset_policy
        if isinstance(encoder, OnlineEncoder):
            self.encoder = encoder
        else:
            self.encoder = build_online_encoder(encoder, window=self.window, seed=seed)
        model.eval()
        if manager is not None:
            self._check_manager(manager)
        self._states: Dict[str, _StreamState] = {}

    def _check_manager(self, manager) -> None:
        if self.requires_frozen and not manager.frozen:
            raise ValueError(
                "StreamSession requires a frozen SparsityManager (call "
                "manager.freeze()); use AdaptiveStreamSession for online "
                "mask adaptation"
            )

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: StreamEvent) -> Optional[StreamResult]:
        """Advance one stream by one event; a result when a window closes.

        Transactional: on exception the stream's committed state is
        unchanged, so the caller can safely retry the same event.
        """
        stored = self._states.get(event.stream_id)
        if stored is None:
            state = _StreamState(
                self.encoder.init_state(event.stream_id), event.num_channels
            )
        else:
            if event.num_channels != stored.num_channels:
                raise ValueError(
                    f"stream {event.stream_id!r} changed width: "
                    f"{stored.num_channels} -> {event.num_channels}"
                )
            state = stored.clone(self.encoder)

        stale = (
            self.ttl is not None
            and state.last_event_time is not None
            and event.timestamp - state.last_event_time > self.ttl
        )
        if stale:
            state.stale_resets += 1
            if self.reset_policy == "reset":
                state.reset_window()

        frame = self.encoder.encode(event.channels, state.encoder_state)
        frame = np.asarray(frame, dtype=np.float32)[None, :]
        logits = self._step(state.net_state, frame)
        self._after_step(frame)
        state.net_state = snapshot_net_state(self.model)
        state.frames.append(frame)
        state.acc = logits.copy() if state.acc is None else state.acc + logits
        state.count += 1
        state.events += 1
        state.last_event_time = float(event.timestamp)

        result: Optional[StreamResult] = None
        if state.count == self.window:
            result = StreamResult(
                stream_id=event.stream_id,
                timestamp=float(event.timestamp),
                logits=(state.acc * np.float32(1.0 / self.window))[0],
                window_index=state.windows,
                events_in_window=self.window,
                frames=tuple(state.frames),
            )
            state.windows += 1
            self._advance(state)

        self._states[event.stream_id] = state
        if result is not None:
            self._after_window(result)
        return result

    def _after_step(self, frame: np.ndarray) -> None:
        """Hook: model state is live for the event just processed."""

    def _after_window(self, result: StreamResult) -> None:
        """Hook: a window readout was just committed."""

    def _step(self, net_state: Optional[Dict], frame: np.ndarray) -> np.ndarray:
        """One forward_once with the given state swapped in; returns logits."""
        if net_state is None:
            reset_net(self.model)
        else:
            restore_net_state(self.model, net_state)
        with no_grad():
            out = self.model.forward_once(Tensor(frame))
        return out.data

    def _advance(self, state: _StreamState) -> None:
        """Slide the window forward after an emission."""
        if self.stride >= self.window:
            state.reset_window()
            return
        # Sliding: replay the retained tail from a fresh reset so the
        # next window's prefix is exactly an offline pass over it.
        tail = state.frames[self.stride:]
        state.reset_window()
        for frame in tail:
            logits = self._step(state.net_state, frame)
            state.net_state = snapshot_net_state(self.model)
            state.frames.append(frame)
            state.acc = logits.copy() if state.acc is None else state.acc + logits
            state.count += 1

    def flush(self, stream_id: Optional[str] = None) -> List[StreamResult]:
        """Emit partial windows (e.g. at end of feed) and reset them."""
        ids = [stream_id] if stream_id is not None else sorted(self._states)
        results: List[StreamResult] = []
        for sid in ids:
            state = self._states.get(sid)
            if state is None or state.count == 0:
                continue
            results.append(
                StreamResult(
                    stream_id=sid,
                    timestamp=state.last_event_time or 0.0,
                    logits=(state.acc * np.float32(1.0 / state.count))[0],
                    window_index=state.windows,
                    events_in_window=state.count,
                    frames=tuple(state.frames),
                    partial=True,
                )
            )
            state.windows += 1
            state.reset_window()
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stream_ids(self) -> List[str]:
        return sorted(self._states)

    def drop_stream(self, stream_id: str) -> None:
        """Forget a stream entirely (device decommissioned)."""
        self._states.pop(stream_id, None)

    def stats(self) -> Dict[str, Dict]:
        """Per-stream counters for monitoring."""
        return {
            sid: {
                "events": state.events,
                "windows": state.windows,
                "buffered": state.count,
                "stale_resets": state.stale_resets,
                "last_event_time": state.last_event_time,
            }
            for sid, state in sorted(self._states.items())
        }

    def offline_reference(self, frames) -> np.ndarray:
        """Offline batch logits over ``frames`` (the bit-identity oracle)."""
        with no_grad():
            out = self.model.forward_window([Tensor(f) for f in frames])
        return out.data[0]
