"""Input encoders: analog images to spike (or current) trains."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..tensor import Tensor


class DirectEncoder:
    """Direct (constant-current) encoding.

    The analog image is presented unchanged at every timestep and the
    first convolution layer acts as a learnable spike encoder.  This is
    the standard approach for CIFAR-scale SNNs (and what SpikingJelly's
    CIFAR examples — the paper's substrate — use).
    """

    def __init__(self, timesteps: int) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        self.timesteps = timesteps

    def __call__(self, x: Tensor) -> Iterator[Tensor]:
        for _ in range(self.timesteps):
            yield x

    def __repr__(self) -> str:
        return f"DirectEncoder(T={self.timesteps})"


class PoissonEncoder:
    """Poisson rate encoding: pixel intensity = firing probability.

    Input values are expected in [0, 1]; each timestep emits a Bernoulli
    spike map.  Provided for the rate-coded ablation/examples.

    The encoder owns its RNG stream and exposes it as ``rng`` so the
    checkpoint layer can capture/restore it alongside the loader and
    transform streams (bit-identical crash-resume for rate-coded runs).
    An explicit ``seed`` (default 0) replaces the old unseeded default:
    two encoders built the same way now emit the same spike trains.
    """

    def __init__(
        self,
        timesteps: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        self.timesteps = timesteps
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def __call__(self, x: Tensor) -> Iterator[Tensor]:
        probabilities = np.clip(x.data, 0.0, 1.0)
        for _ in range(self.timesteps):
            spikes = (self.rng.random(probabilities.shape) < probabilities).astype(np.float32)
            yield Tensor(spikes)

    def __repr__(self) -> str:
        return f"PoissonEncoder(T={self.timesteps})"


class LatencyEncoder:
    """Time-to-first-spike encoding: brighter pixels fire earlier.

    Each input in [0, 1] produces exactly one spike at timestep
    ``round((1 - x) * (T - 1))``.  Included as an extension encoder.
    """

    def __init__(self, timesteps: int) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        self.timesteps = timesteps

    def __call__(self, x: Tensor) -> Iterator[Tensor]:
        intensity = np.clip(x.data, 0.0, 1.0)
        fire_step = np.rint((1.0 - intensity) * (self.timesteps - 1)).astype(np.int64)
        for t in range(self.timesteps):
            yield Tensor((fire_step == t).astype(np.float32))

    def __repr__(self) -> str:
        return f"LatencyEncoder(T={self.timesteps})"


def build_encoder(name: str, timesteps: int, **kwargs):
    """Factory: ``direct``, ``poisson`` or ``latency``."""
    encoders = {
        "direct": DirectEncoder,
        "poisson": PoissonEncoder,
        "latency": LatencyEncoder,
    }
    try:
        cls = encoders[name]
    except KeyError:
        raise ValueError(f"unknown encoder {name!r}; available: {sorted(encoders)}") from None
    return cls(timesteps, **kwargs)
