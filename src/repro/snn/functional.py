"""Network-level utilities for stateful spiking models."""

from __future__ import annotations

from typing import Dict

from ..nn.module import Module
from .neuron import BaseNeuron


def _stateful_modules(model: Module):
    """(path, module) pairs carrying temporal state.

    Duck-typed on ``snapshot_state`` so non-neuron stateful components
    (e.g. :class:`~repro.snn.extensions.RecurrentSpikingLayer`'s
    feedback buffer) participate in reset/snapshot/restore alongside
    :class:`~repro.snn.neuron.BaseNeuron` subclasses.
    """
    for name, module in model.named_modules():
        if hasattr(module, "snapshot_state"):
            yield name, module


def reset_net(model: Module) -> None:
    """Reset the membrane state of every spiking neuron in ``model``.

    Must be called between independent input samples (the spiking state
    is part of the computation graph and must not leak across batches).
    """
    for _, module in _stateful_modules(model):
        module.reset_state()


def snapshot_net_state(model: Module) -> Dict[str, Dict]:
    """Detached copy of every stateful module's temporal state.

    Keys are module paths (as in ``named_modules``), values the dicts
    returned by each module's ``snapshot_state``.  The streaming layer
    stores one snapshot per stream and swaps them in and out of a
    single model instance; the round-trip through
    :func:`restore_net_state` is bit-exact.
    """
    return {name: module.snapshot_state() for name, module in _stateful_modules(model)}


def restore_net_state(model: Module, state: Dict[str, Dict]) -> None:
    """Inverse of :func:`snapshot_net_state`.

    The snapshot must cover exactly the model's stateful modules — a
    mismatch means the snapshot came from a different architecture and
    restoring it silently would corrupt inference.
    """
    modules = dict(_stateful_modules(model))
    if set(modules) != set(state):
        missing = sorted(set(modules) - set(state))
        extra = sorted(set(state) - set(modules))
        raise ValueError(
            f"state snapshot does not match model: missing {missing}, "
            f"unexpected {extra}"
        )
    for name, module in modules.items():
        module.restore_state(state[name])


def reset_spike_stats(model: Module) -> None:
    """Zero spike-rate counters of every neuron in ``model``."""
    for module in model.modules():
        if isinstance(module, BaseNeuron):
            module.reset_spike_stats()


def spike_rate(model: Module) -> float:
    """Average spikes per neuron per timestep across the whole network.

    This is the quantity ``R`` used in the paper's Section IV-C training
    cost formula ``cost_i = (R_s^i * density_i) / R_d^i``.
    """
    total_spikes = 0.0
    total_steps = 0
    for module in model.modules():
        if isinstance(module, BaseNeuron):
            total_spikes += module.spike_count
            total_steps += module.neuron_steps
    if total_steps == 0:
        return 0.0
    return total_spikes / total_steps


def spike_rates_per_layer(model: Module) -> Dict[str, float]:
    """Per-neuron-layer spike rate, keyed by module path."""
    rates: Dict[str, float] = {}
    for name, module in model.named_modules():
        if isinstance(module, BaseNeuron):
            rates[name or module.__class__.__name__] = module.spike_rate
    return rates


def set_spike_tracking(model: Module, enabled: bool) -> None:
    """Enable/disable spike counting on every neuron (tiny speedup off)."""
    for module in model.modules():
        if isinstance(module, BaseNeuron):
            module.track_spikes = enabled
