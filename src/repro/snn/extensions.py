"""Extension spiking components beyond the paper's baseline setup.

The paper's future-work direction is energy-efficient SNN training on
edge devices; these components are the standard next steps in that
line and compose with the sparse-training methods unchanged:

* :class:`AdaptiveLIFNeuron` — ALIF with a spike-triggered adaptive
  threshold (longer temporal memory at the same timestep budget).
* :class:`RecurrentSpikingLayer` — explicit recurrent synapses on top
  of a feed-forward projection (RSNN building block).
* :class:`ThresholdDependentBatchNorm2d` — tdBN (Zheng et al., AAAI
  2021), the normalization used by the original ResNet-19 SNN: BN whose
  scale is calibrated to the firing threshold ``alpha * theta``.
* :func:`spike_rate_loss` — activity regularizer pushing the network
  toward a target firing rate (energy control).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import BatchNorm2d, Linear
from ..nn.module import Module
from ..tensor import Tensor
from .neuron import BaseNeuron, spike_function
from .surrogate import SurrogateFunction


class AdaptiveLIFNeuron(BaseNeuron):
    """LIF with spike-triggered threshold adaptation (ALIF).

    The effective threshold is ``theta + beta * a[t]`` where the
    adaptation trace ``a`` integrates past spikes with decay ``rho``:

        a[t] = rho * a[t-1] + o[t-1]

    Neurons that fire often become harder to fire, providing longer
    memory and sparser activity — both useful on neuromorphic targets.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        v_threshold: float = 1.0,
        beta: float = 0.2,
        rho: float = 0.9,
        surrogate: Optional[SurrogateFunction] = None,
        track_spikes: bool = True,
    ) -> None:
        super().__init__(v_threshold=v_threshold, surrogate=surrogate, track_spikes=track_spikes)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must lie in [0, 1)")
        if beta < 0.0:
            raise ValueError("beta must be non-negative")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.rho = float(rho)
        self.adaptation: Optional[np.ndarray] = None

    def reset_state(self) -> None:
        super().reset_state()
        self.adaptation = None

    def snapshot_state(self):
        state = super().snapshot_state()
        state["adaptation"] = (
            None if self.adaptation is None else self.adaptation.copy()
        )
        return state

    def restore_state(self, state) -> None:
        super().restore_state(state)
        adaptation = state["adaptation"]
        self.adaptation = None if adaptation is None else adaptation.copy()

    def forward(self, current: Tensor) -> Tensor:
        if self.adaptation is None:
            self.adaptation = np.zeros(current.shape, dtype=np.float32)
        if self.v is None:
            self.v = current
        else:
            membrane = self.v * self.alpha + current
            if self.o_prev is not None:
                membrane = membrane - self.o_prev * self.v_threshold
            self.v = membrane
        effective_threshold = self.v_threshold + self.beta * self.adaptation
        spikes = spike_function(self.v - Tensor(effective_threshold), self.surrogate)
        # The adaptation trace is treated as a constant w.r.t. the tape
        # (standard ALIF practice: no gradient through the threshold).
        self.adaptation = self.rho * self.adaptation + spikes.data
        self.o_prev = spikes
        self._record(spikes)
        return spikes

    def __repr__(self) -> str:
        return (
            f"AdaptiveLIFNeuron(alpha={self.alpha}, beta={self.beta}, "
            f"rho={self.rho}, threshold={self.v_threshold})"
        )


class RecurrentSpikingLayer(Module):
    """Fully-connected spiking layer with recurrent synapses.

    Output spikes at step ``t-1`` feed back through a recurrent weight
    matrix, added to the feed-forward current:

        I[t] = W_in x[t] + W_rec o[t-1]

    Both weight matrices are sparsifiable (2-D), so NDSNN prunes the
    recurrent connectivity exactly like the feed-forward one.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        neuron: Optional[BaseNeuron] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        from .neuron import LIFNeuron  # avoid import cycle at module load

        self.input_proj = Linear(in_features, out_features, rng=rng)
        self.recurrent_proj = Linear(out_features, out_features, bias=False, rng=rng)
        self.neuron = neuron if neuron is not None else LIFNeuron()
        self._last_spikes: Optional[Tensor] = None

    def reset_state(self) -> None:
        self.neuron.reset_state()
        self._last_spikes = None

    def snapshot_state(self):
        # The inner neuron is a registered submodule, so the network
        # walk snapshots it under its own path; only the recurrent
        # feedback buffer belongs to this layer.
        return {
            "last_spikes": (
                None if self._last_spikes is None else self._last_spikes.data.copy()
            )
        }

    def restore_state(self, state) -> None:
        last = state["last_spikes"]
        self._last_spikes = None if last is None else Tensor(last.copy())

    def forward(self, x: Tensor) -> Tensor:
        current = self.input_proj(x)
        if self._last_spikes is not None:
            current = current + self.recurrent_proj(self._last_spikes)
        spikes = self.neuron(current)
        # Detach the recurrent path one step back to bound the tape depth
        # (truncated BPTT through the explicit recurrence).
        self._last_spikes = spikes.detach()
        return spikes


class ThresholdDependentBatchNorm2d(BatchNorm2d):
    """tdBN: batch norm calibrated to the firing threshold.

    Identical to BatchNorm2d except the scale parameter is initialized
    to ``alpha_td * v_threshold`` so pre-activations land in the
    neuron's sensitive region from the first step (Zheng et al. 2021).
    """

    def __init__(
        self,
        num_features: int,
        v_threshold: float = 1.0,
        alpha_td: float = 1.0,
        eps: float = 1e-5,
        momentum: float = 0.1,
    ) -> None:
        super().__init__(num_features, eps=eps, momentum=momentum)
        self.v_threshold = float(v_threshold)
        self.alpha_td = float(alpha_td)
        self.weight.data[:] = alpha_td * v_threshold


def spike_rate_loss(model: Module, target_rate: float = 0.1) -> float:
    """Quadratic penalty between observed and target spike rates.

    Returned as a float (computed from the detached spike counters); add
    it to a scalar loss as a Tensor if a differentiable version is
    needed — here it serves for monitoring/ablation, like the activity
    regularization in the paper's ADMM reference [5].
    """
    from .functional import spike_rate

    observed = spike_rate(model)
    return float((observed - target_rate) ** 2)
