"""Surrogate gradient functions for the Heaviside spike nonlinearity.

Forward passes emit binary spikes; backward passes replace the Dirac
delta with a smooth pseudo-derivative.  The paper (Eq. 3) uses the
"fast inverse" surrogate of Fang et al. (NeurIPS 2021):

    u'(x) ~= 1 / (1 + pi^2 x^2)

Alternatives are provided for the ablation study in
``benchmarks/bench_ablation_surrogate.py``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np


class SurrogateFunction:
    """Base class: callable returning the pseudo-derivative at ``x``.

    ``x`` is the membrane potential minus the threshold, so the
    surrogate is centred at the firing boundary.
    """

    name = "base"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class FastInverse(SurrogateFunction):
    """Paper Eq. 3: ``1 / (1 + (pi * x)^2)`` (scaled inverse-square)."""

    name = "fast_inverse"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + (math.pi ** 2) * x ** 2)


class ATan(SurrogateFunction):
    """SpikingJelly-style arctangent surrogate.

    Derivative of ``(1/pi) * arctan(pi/2 * alpha * x) + 1/2``.
    """

    name = "atan"

    def __init__(self, alpha: float = 2.0) -> None:
        self.alpha = alpha

    def __call__(self, x: np.ndarray) -> np.ndarray:
        inner = (math.pi / 2.0) * self.alpha * x
        return (self.alpha / 2.0) / (1.0 + inner ** 2)


class SigmoidSurrogate(SurrogateFunction):
    """Derivative of a steep sigmoid ``sigma(alpha x)``."""

    name = "sigmoid"

    def __init__(self, alpha: float = 4.0) -> None:
        self.alpha = alpha

    def __call__(self, x: np.ndarray) -> np.ndarray:
        s = 1.0 / (1.0 + np.exp(-self.alpha * x))
        return self.alpha * s * (1.0 - s)


class Triangle(SurrogateFunction):
    """Piecewise-linear (triangular) surrogate ``max(0, 1 - |x|/gamma)/gamma``."""

    name = "triangle"

    def __init__(self, gamma: float = 1.0) -> None:
        self.gamma = gamma

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - np.abs(x) / self.gamma) / self.gamma


class StraightThrough(SurrogateFunction):
    """Boxcar straight-through estimator: 1 inside ``|x| <= width/2``."""

    name = "ste"

    def __init__(self, width: float = 1.0) -> None:
        self.width = width

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return (np.abs(x) <= self.width / 2.0).astype(np.float32)


_REGISTRY: Dict[str, Callable[[], SurrogateFunction]] = {
    FastInverse.name: FastInverse,
    ATan.name: ATan,
    SigmoidSurrogate.name: SigmoidSurrogate,
    Triangle.name: Triangle,
    StraightThrough.name: StraightThrough,
}


def get_surrogate(name: str, **kwargs) -> SurrogateFunction:
    """Build a surrogate function by registry name.

    >>> get_surrogate("fast_inverse")
    FastInverse()
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown surrogate {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_surrogates() -> list:
    """Names of all registered surrogate functions."""
    return sorted(_REGISTRY)
