"""Spiking neural network substrate: neurons, surrogates, encoders, models."""

from .encoding import DirectEncoder, LatencyEncoder, PoissonEncoder, build_encoder
from .functional import (
    reset_net,
    reset_spike_stats,
    set_spike_tracking,
    spike_rate,
    spike_rates_per_layer,
)
from .neuron import (
    BaseNeuron,
    IFNeuron,
    LIFNeuron,
    ParametricLIFNeuron,
    build_neuron,
    spike_function,
)
from .extensions import (
    AdaptiveLIFNeuron,
    RecurrentSpikingLayer,
    ThresholdDependentBatchNorm2d,
    spike_rate_loss,
)
from .surrogate import (
    ATan,
    FastInverse,
    SigmoidSurrogate,
    StraightThrough,
    SurrogateFunction,
    Triangle,
    available_surrogates,
    get_surrogate,
)

__all__ = [
    "AdaptiveLIFNeuron",
    "RecurrentSpikingLayer",
    "ThresholdDependentBatchNorm2d",
    "spike_rate_loss",
    "LIFNeuron",
    "IFNeuron",
    "ParametricLIFNeuron",
    "BaseNeuron",
    "build_neuron",
    "spike_function",
    "SurrogateFunction",
    "FastInverse",
    "ATan",
    "SigmoidSurrogate",
    "Triangle",
    "StraightThrough",
    "get_surrogate",
    "available_surrogates",
    "DirectEncoder",
    "PoissonEncoder",
    "LatencyEncoder",
    "build_encoder",
    "reset_net",
    "reset_spike_stats",
    "spike_rate",
    "spike_rates_per_layer",
    "set_spike_tracking",
]
