"""Spiking neuron models with BPTT-compatible state.

The Leaky Integrate-and-Fire (LIF) neuron implements the paper's Eq. 1:

    v[t] = alpha * v[t-1] + sum_i w_i s_i[t] - theta * o[t-1]   (1a)
    o[t] = u(v[t] - theta)                                       (1b)

where ``u`` is the Heaviside step.  The subtraction of ``theta * o[t-1]``
is the *soft reset*: a neuron that fired loses one threshold's worth of
potential on the next step.  The Heaviside derivative is replaced by a
surrogate (Eq. 3) during the backward pass, so the whole temporal
unrolling is trainable with BPTT.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor, is_grad_enabled
from .surrogate import FastInverse, SurrogateFunction, get_surrogate


def spike_function(x: Tensor, surrogate: SurrogateFunction) -> Tensor:
    """Heaviside forward with surrogate-gradient backward.

    ``x`` is the membrane potential already shifted by the threshold,
    so the spike condition is ``x >= 0``.
    """
    spikes = (x.data >= 0.0).astype(np.float32)
    requires = is_grad_enabled() and x.requires_grad
    out = Tensor(spikes, requires_grad=requires, _prev=(x,) if requires else (), _op="spike")

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * surrogate(x.data).astype(np.float32))

    out._backward = backward
    return out


class BaseNeuron(Module):
    """Common state handling and spike accounting for spiking neurons.

    Attributes
    ----------
    spike_count / neuron_steps:
        Detached counters used to compute the average spike rate, which
        feeds the paper's Section IV-C training-cost model.
    """

    def __init__(
        self,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateFunction] = None,
        track_spikes: bool = True,
    ) -> None:
        super().__init__()
        self.v_threshold = float(v_threshold)
        self.surrogate = surrogate if surrogate is not None else FastInverse()
        self.track_spikes = track_spikes
        self.v: Optional[Tensor] = None
        self.o_prev: Optional[Tensor] = None
        self.spike_count = 0.0
        self.neuron_steps = 0

    def reset_state(self) -> None:
        """Clear membrane potential and previous output (between samples)."""
        self.v = None
        self.o_prev = None

    def snapshot_state(self) -> Dict[str, Optional[np.ndarray]]:
        """Detached copy of the temporal state (membrane + last output).

        The snapshot is plain arrays, so it can be stored per stream,
        checkpointed, or moved between model instances of the same
        geometry.  Restoring it with :meth:`restore_state` puts the
        neuron exactly where it was — the streaming layer relies on the
        round-trip being bit-exact.  Subclasses with extra temporal
        state (e.g. ALIF's adaptation trace) extend the dict.
        """
        return {
            "v": None if self.v is None else self.v.data.copy(),
            "o_prev": None if self.o_prev is None else self.o_prev.data.copy(),
        }

    def restore_state(self, state: Dict[str, Optional[np.ndarray]]) -> None:
        """Inverse of :meth:`snapshot_state` (state is copied in)."""
        v = state["v"]
        o_prev = state["o_prev"]
        self.v = None if v is None else Tensor(v.copy())
        self.o_prev = None if o_prev is None else Tensor(o_prev.copy())

    def reset_spike_stats(self) -> None:
        """Zero the spike-rate accounting counters."""
        self.spike_count = 0.0
        self.neuron_steps = 0

    def _record(self, spikes: Tensor) -> None:
        if self.track_spikes:
            self.spike_count += float(spikes.data.sum())
            self.neuron_steps += int(spikes.data.size)

    @property
    def spike_rate(self) -> float:
        """Average spikes per neuron per timestep since the last reset."""
        if self.neuron_steps == 0:
            return 0.0
        return self.spike_count / self.neuron_steps


class LIFNeuron(BaseNeuron):
    """Leaky Integrate-and-Fire neuron (paper Eq. 1, soft reset).

    Parameters
    ----------
    alpha:
        Membrane decay factor in ``(0, 1]``.
    v_threshold:
        Firing threshold ``theta``.
    surrogate:
        Pseudo-derivative used in the backward pass; defaults to the
        paper's fast-inverse function (Eq. 3).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateFunction] = None,
        track_spikes: bool = True,
    ) -> None:
        super().__init__(v_threshold=v_threshold, surrogate=surrogate, track_spikes=track_spikes)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.alpha = float(alpha)

    def forward(self, current: Tensor) -> Tensor:
        if self.v is None:
            self.v = current
        else:
            membrane = self.v * self.alpha + current
            if self.o_prev is not None:
                membrane = membrane - self.o_prev * self.v_threshold
            self.v = membrane
        spikes = spike_function(self.v - self.v_threshold, self.surrogate)
        self.o_prev = spikes
        self._record(spikes)
        return spikes

    def __repr__(self) -> str:
        return f"LIFNeuron(alpha={self.alpha}, threshold={self.v_threshold})"


class IFNeuron(BaseNeuron):
    """Integrate-and-Fire neuron: LIF without leak (``alpha = 1``)."""

    def forward(self, current: Tensor) -> Tensor:
        if self.v is None:
            self.v = current
        else:
            membrane = self.v + current
            if self.o_prev is not None:
                membrane = membrane - self.o_prev * self.v_threshold
            self.v = membrane
        spikes = spike_function(self.v - self.v_threshold, self.surrogate)
        self.o_prev = spikes
        self._record(spikes)
        return spikes

    def __repr__(self) -> str:
        return f"IFNeuron(threshold={self.v_threshold})"


class ParametricLIFNeuron(BaseNeuron):
    """LIF with a learnable decay (PLIF, Fang et al. ICCV 2021).

    The decay is ``sigmoid(w)`` so it stays in (0, 1) while ``w`` is
    trained by BPTT alongside the synaptic weights.  Included as one of
    the paper's natural extensions (learnable temporal dynamics).
    """

    def __init__(
        self,
        init_alpha: float = 0.5,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateFunction] = None,
        track_spikes: bool = True,
    ) -> None:
        super().__init__(v_threshold=v_threshold, surrogate=surrogate, track_spikes=track_spikes)
        from ..nn.module import Parameter  # local import to avoid cycle at module load

        logit = np.log(init_alpha / (1.0 - init_alpha)).astype(np.float32)
        self.decay_logit = Parameter(np.array([logit], dtype=np.float32))

    def forward(self, current: Tensor) -> Tensor:
        alpha = self.decay_logit.sigmoid()
        if self.v is None:
            self.v = current
        else:
            membrane = self.v * alpha + current
            if self.o_prev is not None:
                membrane = membrane - self.o_prev * self.v_threshold
            self.v = membrane
        spikes = spike_function(self.v - self.v_threshold, self.surrogate)
        self.o_prev = spikes
        self._record(spikes)
        return spikes

    def __repr__(self) -> str:
        alpha = float(1.0 / (1.0 + np.exp(-self.decay_logit.data[0])))
        return f"ParametricLIFNeuron(alpha={alpha:.3f}, threshold={self.v_threshold})"


def build_neuron(kind: str = "lif", **kwargs) -> BaseNeuron:
    """Factory for neuron models: ``lif``, ``if`` or ``plif``."""
    surrogate = kwargs.pop("surrogate", None)
    if isinstance(surrogate, str):
        surrogate = get_surrogate(surrogate)
    kinds = {"lif": LIFNeuron, "if": IFNeuron, "plif": ParametricLIFNeuron}
    try:
        cls = kinds[kind]
    except KeyError:
        raise ValueError(f"unknown neuron kind {kind!r}; available: {sorted(kinds)}") from None
    return cls(surrogate=surrogate, **kwargs)
