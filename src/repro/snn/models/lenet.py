"""Spiking LeNet-5 (used in the Table II ADMM comparison)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...nn import AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear
from ...tensor import Tensor
from .base import SpikingModel, make_neuron, scaled_width


class SpikingLeNet5(SpikingModel):
    """Classic LeNet-5 topology with LIF activations.

    conv5x5(6) -> pool -> conv5x5(16) -> pool -> fc(120) -> fc(84) -> fc(K)
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        timesteps: int = 5,
        width_mult: float = 1.0,
        neuron_alpha: float = 0.5,
        neuron_kind: str = "lif",
        v_threshold: float = 1.0,
        surrogate: Optional[object] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(timesteps=timesteps)
        c1 = scaled_width(6, width_mult)
        c2 = scaled_width(16, width_mult)
        f1 = scaled_width(120, width_mult, minimum=8)
        f2 = scaled_width(84, width_mult, minimum=8)
        neuron = lambda: make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind)  # noqa: E731

        self.conv1 = Conv2d(in_channels, c1, 5, padding=2, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(c1)
        self.neuron1 = neuron()
        self.pool1 = AvgPool2d(2)
        self.conv2 = Conv2d(c1, c2, 5, padding=2, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(c2)
        self.neuron2 = neuron()
        self.pool2 = AvgPool2d(2)
        self.flatten = Flatten()
        spatial = image_size // 4
        self.fc1 = Linear(c2 * spatial * spatial, f1, rng=rng)
        self.neuron3 = neuron()
        self.fc2 = Linear(f1, f2, rng=rng)
        self.neuron4 = neuron()
        self.fc3 = Linear(f2, num_classes, rng=rng)

    def forward_once(self, x: Tensor) -> Tensor:
        out = self.pool1(self.neuron1(self.bn1(self.conv1(x))))
        out = self.pool2(self.neuron2(self.bn2(self.conv2(out))))
        out = self.flatten(out)
        out = self.neuron3(self.fc1(out))
        out = self.neuron4(self.fc2(out))
        return self.fc3(out)
