"""Spiking ResNet-19.

ResNet-19 is the SNN-literature variant introduced for directly-trained
SNNs (Zheng et al., "Going Deeper with Directly-Trained Larger Spiking
Neural Networks"), the paper's second evaluation architecture:

    conv3x3(128) -> 3 basic blocks @128 -> 3 @256 (stride 2)
    -> 2 @512 (stride 2) -> global avgpool -> fc(256) -> fc(classes)

counting 1 + 2*(3+3+2) + 2 = 19 weighted layers.  Residual addition
happens on membrane currents before the output LIF of each block.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...nn import AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, Flatten, Identity, Linear, Sequential
from ...nn.module import Module
from ...tensor import Tensor
from .base import SpikingModel, flattened_spatial, make_neuron, scaled_width


class SpikingBasicBlock(Module):
    """Two 3x3 conv-BN stages with a residual shortcut and LIF output."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        neuron_alpha: float = 0.5,
        neuron_kind: str = "lif",
        v_threshold: float = 1.0,
        surrogate: Optional[object] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.neuron1 = make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()
        self.neuron2 = make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind)

    def forward(self, x: Tensor) -> Tensor:
        out = self.neuron1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.neuron2(out)


class SpikingResNet19(SpikingModel):
    """Spiking ResNet-19 (paper's second evaluation architecture)."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        timesteps: int = 5,
        width_mult: float = 1.0,
        neuron_alpha: float = 0.5,
        neuron_kind: str = "lif",
        v_threshold: float = 1.0,
        surrogate: Optional[object] = None,
        hidden_dim: int = 256,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(timesteps=timesteps)
        widths = [scaled_width(c, width_mult) for c in (128, 256, 512)]
        hidden = scaled_width(hidden_dim, width_mult, minimum=8)
        neuron_kwargs = dict(
            neuron_alpha=neuron_alpha,
            neuron_kind=neuron_kind,
            v_threshold=v_threshold,
            surrogate=surrogate,
            rng=rng,
        )

        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        self.neuron1 = make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind)
        self.layer1 = self._make_stage(widths[0], widths[0], blocks=3, stride=1, **neuron_kwargs)
        self.layer2 = self._make_stage(widths[0], widths[1], blocks=3, stride=2, **neuron_kwargs)
        self.layer3 = self._make_stage(widths[1], widths[2], blocks=2, stride=2, **neuron_kwargs)

        spatial = flattened_spatial(image_size, 2)
        self.pool = AvgPool2d(spatial)
        self.flatten = Flatten()
        self.fc1 = Linear(widths[2], hidden, rng=rng)
        # Normalize the head's membrane input: spike counts shrink after
        # global pooling, and without BN the readout neuron goes silent.
        self.bn_fc = BatchNorm1d(hidden)
        self.neuron_fc = make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind)
        self.fc2 = Linear(hidden, num_classes, rng=rng)

    @staticmethod
    def _make_stage(
        in_channels: int,
        out_channels: int,
        blocks: int,
        stride: int,
        **neuron_kwargs,
    ) -> Sequential:
        stages: List[Module] = [
            SpikingBasicBlock(in_channels, out_channels, stride=stride, **neuron_kwargs)
        ]
        for _ in range(blocks - 1):
            stages.append(SpikingBasicBlock(out_channels, out_channels, stride=1, **neuron_kwargs))
        return Sequential(*stages)

    def forward_once(self, x: Tensor) -> Tensor:
        out = self.neuron1(self.bn1(self.conv1(x)))
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.flatten(self.pool(out))
        out = self.neuron_fc(self.bn_fc(self.fc1(out)))
        return self.fc2(out)
