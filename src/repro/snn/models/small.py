"""Small scalable spiking models for tests, examples and fast benches."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...nn import AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, Sequential
from ...tensor import Tensor
from .base import SpikingModel, flattened_spatial, make_neuron


class SpikingMLP(SpikingModel):
    """Fully-connected spiking network for flat inputs."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (64,),
        timesteps: int = 4,
        neuron_alpha: float = 0.5,
        neuron_kind: str = "lif",
        v_threshold: float = 1.0,
        surrogate: Optional[object] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(timesteps=timesteps)
        layers = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind))
            previous = width
        self.body = Sequential(*layers)
        self.head = Linear(previous, num_classes, rng=rng)

    def forward_once(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.head(self.body(x))


class SpikingConvNet(SpikingModel):
    """Compact conv-pool spiking network, the workhorse of the test suite.

    ``channels`` gives the output width of each 3x3 conv stage; a 2x2
    average pool follows each stage.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 16,
        channels: Sequence[int] = (16, 32),
        timesteps: int = 4,
        neuron_alpha: float = 0.5,
        neuron_kind: str = "lif",
        v_threshold: float = 1.0,
        surrogate: Optional[object] = None,
        batch_norm: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(timesteps=timesteps)
        layers = []
        previous = in_channels
        for width in channels:
            layers.append(Conv2d(previous, width, 3, padding=1, bias=not batch_norm, rng=rng))
            if batch_norm:
                layers.append(BatchNorm2d(width))
            layers.append(make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind))
            layers.append(AvgPool2d(2))
            previous = width
        self.features = Sequential(*layers)
        self.flatten = Flatten()
        spatial = flattened_spatial(image_size, len(channels))
        self.classifier = Linear(previous * spatial * spatial, num_classes, rng=rng)

    def forward_once(self, x: Tensor) -> Tensor:
        return self.classifier(self.flatten(self.features(x)))
