"""Spiking VGG-16 (and the scalable VGG family).

Layer inventory follows the standard VGG-16 configuration "D":
``64 64 M 128 128 M 256 256 256 M 512 512 512 M 512 512 512 M``
with BatchNorm after each convolution and a LIF neuron as activation.
The classifier is a single linear readout, the usual choice for
directly-trained CIFAR-scale spiking VGGs.

``width_mult`` scales every channel count so the same topology can be
trained on CPU in the benchmark harness; ERK sparsity allocation sees
the same *relative* layer-shape structure at any width.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ...nn import AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, Sequential
from ...tensor import Tensor
from .base import SpikingModel, make_neuron, scaled_width

VGG16_CONFIG: List[Union[int, str]] = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
]

VGG11_CONFIG: List[Union[int, str]] = [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"]

VGG9_CONFIG: List[Union[int, str]] = [64, 64, "M", 128, 128, "M", 256, 256, "M"]


class SpikingVGG(SpikingModel):
    """Generic spiking VGG built from a channel configuration list."""

    def __init__(
        self,
        config: Sequence[Union[int, str]],
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        timesteps: int = 5,
        width_mult: float = 1.0,
        neuron_alpha: float = 0.5,
        neuron_kind: str = "lif",
        v_threshold: float = 1.0,
        surrogate: Optional[object] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(timesteps=timesteps)
        layers = []
        channels = in_channels
        spatial = image_size
        for item in config:
            if item == "M":
                # At low benchmark resolutions the deep pools would shrink
                # the map below 1x1; skip them once spatial size bottoms out.
                if spatial >= 2:
                    layers.append(AvgPool2d(2))
                    spatial //= 2
                continue
            out_channels = scaled_width(int(item), width_mult)
            layers.append(Conv2d(channels, out_channels, kernel_size=3, padding=1, bias=False, rng=rng))
            layers.append(BatchNorm2d(out_channels))
            layers.append(make_neuron(alpha=neuron_alpha, v_threshold=v_threshold, surrogate=surrogate, kind=neuron_kind))
            channels = out_channels
        self.features = Sequential(*layers)
        self.flatten = Flatten()
        feature_dim = channels * spatial * spatial
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.classifier = Linear(feature_dim, num_classes, rng=rng)

    def forward_once(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.flatten(out)
        if self.dropout is not None:
            out = self.dropout(out)
        return self.classifier(out)


class SpikingVGG16(SpikingVGG):
    """Spiking VGG-16 (paper's first evaluation architecture)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(VGG16_CONFIG, **kwargs)


class SpikingVGG11(SpikingVGG):
    """Spiking VGG-11 (extension architecture)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(VGG11_CONFIG, **kwargs)


class SpikingVGG9(SpikingVGG):
    """Compact spiking VGG-9, useful for fast CPU experiments."""

    def __init__(self, **kwargs) -> None:
        super().__init__(VGG9_CONFIG, **kwargs)
