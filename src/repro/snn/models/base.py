"""Base class shared by the spiking model zoo.

A spiking model wraps a stateful backbone in a temporal loop: the input
is presented for ``T`` timesteps (direct encoding by default), the
backbone produces per-timestep logits, and the classifier output is the
mean of those logits — the standard readout for directly-trained
CIFAR-scale SNNs and the one the paper's SpikingJelly substrate uses.
"""

from __future__ import annotations

from typing import Optional

from ...nn.module import Module
from ...tensor import Tensor
from ..encoding import DirectEncoder
from ..functional import reset_net
from ..neuron import BaseNeuron, IFNeuron, LIFNeuron, ParametricLIFNeuron
from ..surrogate import get_surrogate


def make_neuron(
    alpha: float = 0.5,
    v_threshold: float = 1.0,
    surrogate: Optional[object] = None,
    kind: str = "lif",
) -> BaseNeuron:
    """Construct a zoo neuron: ``lif`` (default), ``if``, ``plif`` or ``alif``."""
    if isinstance(surrogate, str):
        surrogate = get_surrogate(surrogate)
    if kind == "lif":
        return LIFNeuron(alpha=alpha, v_threshold=v_threshold, surrogate=surrogate)
    if kind == "if":
        return IFNeuron(v_threshold=v_threshold, surrogate=surrogate)
    if kind == "plif":
        return ParametricLIFNeuron(
            init_alpha=alpha, v_threshold=v_threshold, surrogate=surrogate
        )
    if kind == "alif":
        from ..extensions import AdaptiveLIFNeuron

        return AdaptiveLIFNeuron(alpha=alpha, v_threshold=v_threshold, surrogate=surrogate)
    raise ValueError(f"unknown neuron kind {kind!r} (lif, if, plif, alif)")


def scaled_width(channels: int, width_mult: float, minimum: int = 4) -> int:
    """Scale a channel count by ``width_mult`` with a floor of ``minimum``."""
    return max(minimum, int(round(channels * width_mult)))


class SpikingModel(Module):
    """Temporal wrapper: runs the stateful backbone for ``timesteps``.

    Subclasses implement :meth:`forward_once` (a single-timestep pass)
    and inherit the temporal averaging readout.
    """

    def __init__(self, timesteps: int = 5) -> None:
        super().__init__()
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        self.timesteps = timesteps
        self.encoder = DirectEncoder(timesteps)

    def forward_once(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        reset_net(self)
        accumulated: Optional[Tensor] = None
        for frame in self.encoder(x):
            logits = self.forward_once(frame)
            accumulated = logits if accumulated is None else accumulated + logits
        return accumulated * (1.0 / self.timesteps)

    def forward_window(self, frames) -> Tensor:
        """Offline reference pass over pre-encoded ``frames``.

        Identical op order to :meth:`forward` but driven by an explicit
        frame sequence instead of the encoder, so the streaming layer
        can prove its incremental execution bit-identical to a batch
        pass over the same window.
        """
        frames = list(frames)
        if not frames:
            raise ValueError("forward_window requires at least one frame")
        reset_net(self)
        accumulated: Optional[Tensor] = None
        for frame in frames:
            logits = self.forward_once(frame)
            accumulated = logits if accumulated is None else accumulated + logits
        return accumulated * (1.0 / len(frames))


def flattened_spatial(image_size: int, num_halvings: int) -> int:
    """Spatial edge length after ``num_halvings`` stride-2 reductions."""
    size = image_size
    for _ in range(num_halvings):
        size = max(1, size // 2)
    return size
