"""Spiking model zoo with a string registry for the experiment layer."""

from typing import Dict, Type

from .base import SpikingModel, flattened_spatial, make_neuron, scaled_width
from .lenet import SpikingLeNet5
from .resnet import SpikingBasicBlock, SpikingResNet19
from .small import SpikingConvNet, SpikingMLP
from .vgg import SpikingVGG, SpikingVGG9, SpikingVGG11, SpikingVGG16

MODEL_REGISTRY: Dict[str, Type[SpikingModel]] = {
    "vgg16": SpikingVGG16,
    "vgg11": SpikingVGG11,
    "vgg9": SpikingVGG9,
    "resnet19": SpikingResNet19,
    "lenet5": SpikingLeNet5,
    "convnet": SpikingConvNet,
}


def build_model(name: str, **kwargs) -> SpikingModel:
    """Instantiate a zoo model by name.

    >>> model = build_model("vgg16", num_classes=10, width_mult=0.125)
    """
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "SpikingModel",
    "SpikingVGG",
    "SpikingVGG16",
    "SpikingVGG11",
    "SpikingVGG9",
    "SpikingResNet19",
    "SpikingBasicBlock",
    "SpikingLeNet5",
    "SpikingMLP",
    "SpikingConvNet",
    "MODEL_REGISTRY",
    "build_model",
    "make_neuron",
    "scaled_width",
    "flattened_spatial",
]
