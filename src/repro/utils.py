"""Small shared utilities: seeding, timing, result serialization."""

from __future__ import annotations

import json
import os
import socket
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Union

import numpy as np

from .nn import init as nn_init


def seed_everything(seed: int) -> np.random.Generator:
    """Seed numpy's legacy RNG and the layer-init default generator.

    Returns a fresh ``Generator`` for the caller's own sampling needs.
    Code in this library threads explicit generators where determinism
    matters; this helper covers the module-level defaults.
    """
    np.random.seed(seed)
    nn_init.set_default_seed(seed)
    return np.random.default_rng(seed)


class Timer:
    """Wall-clock timer usable as a context manager.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


@contextmanager
def timed(label: str, sink=print):
    """Context manager printing '<label>: <seconds>s' on exit."""
    start = time.perf_counter()
    yield
    sink(f"{label}: {time.perf_counter() - start:.2f}s")


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays for json.dump."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def save_json(path: Union[str, Path], payload: Dict[str, Any]) -> None:
    """Write a dict (numpy-friendly) as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(_jsonable(payload), handle, indent=2, sort_keys=True)


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a JSON file written by :func:`save_json`."""
    with open(path) as handle:
        return json.load(handle)


def atomic_replace(write: Callable[[Path], None], final_path: Union[str, Path]) -> None:
    """Write via ``write(tmp_path)`` then atomically rename into place.

    The tmp name is host- and pid-qualified, so concurrent writers of
    the same path — even from different machines sharing a filesystem,
    as the sweep queue's spool allows — each produce their own complete
    temporary and the renames serialize; readers only ever observe one
    writer's full bytes.
    """
    final_path = Path(final_path)
    tmp = final_path.with_name(
        f"{final_path.name}.tmp-{socket.gethostname()}-{os.getpid()}"
    )
    try:
        write(tmp)
        os.replace(tmp, final_path)
    except BaseException:
        # A failed write (ENOSPC, a crash mid-serialize) must not
        # strand temporaries — on shared spools they accumulate.
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def save_json_atomic(path: Union[str, Path], payload: Dict[str, Any]) -> None:
    """:func:`save_json` with the :func:`atomic_replace` guarantee."""
    atomic_replace(lambda tmp: save_json(tmp, payload), path)


def save_state_dict(path: Union[str, Path], state: Dict[str, np.ndarray]) -> None:
    """Persist a model/optimizer state dict as a compressed .npz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load a state dict saved by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
