"""Training checkpoints: model weights + masks + schedule position.

Sparse training state is more than the weights — resuming NDSNN needs
the masks and the iteration counter (which drives Eqs. 4/5).  A
checkpoint bundles all of it into one ``.npz`` plus a JSON sidecar.

Two granularities live here:

* :func:`save_checkpoint` / :func:`load_checkpoint` — the historical
  weights+masks+counters snapshot, enough to evaluate or fine-tune.
* :func:`save_training_state` / :func:`load_training_state` — the
  *complete* mid-run state (optimizer buffers, LR-scheduler position,
  method auxiliaries, and every RNG stream), written atomically so a
  process killed mid-save leaves the previous checkpoint intact.  A
  run restored from it continues **bit-identically** to one that was
  never interrupted; the sweep queue's crash-resume is built on this,
  via :class:`CheckpointCallback` at epoch boundaries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..nn.module import Module
from ..sparse.base import SparseTrainingMethod
from ..utils import atomic_replace, load_json, load_state_dict, save_json, save_state_dict
from .hooks import TrainerCallback

_MASK_PREFIX = "__mask__."
_OPT_PREFIX = "__opt__."
_METHOD_PREFIX = "__method__."

TRAINING_STATE_VERSION = 1


def save_checkpoint(
    path: Union[str, Path],
    model: Module,
    method: Optional[SparseTrainingMethod] = None,
    iteration: int = 0,
    epoch: int = 0,
    extra: Optional[Dict] = None,
) -> None:
    """Write model weights, sparse masks and counters to disk.

    Produces ``<path>.npz`` (arrays) and ``<path>.json`` (metadata).
    """
    path = Path(path)
    arrays: Dict[str, np.ndarray] = dict(model.state_dict())
    if method is not None and method.masks is not None:
        for name, mask in method.masks.masks.items():
            arrays[_MASK_PREFIX + name] = mask
    save_state_dict(path.with_suffix(".npz"), arrays)
    metadata = {
        "iteration": iteration,
        "epoch": epoch,
        "has_masks": method is not None and method.masks is not None,
        "extra": extra or {},
    }
    save_json(path.with_suffix(".json"), metadata)


def load_checkpoint(
    path: Union[str, Path],
    model: Module,
    method: Optional[SparseTrainingMethod] = None,
) -> Dict:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the metadata dict (iteration/epoch/extra).  The method must
    already be bound (its mask manager exists) for masks to load.
    """
    path = Path(path)
    arrays = load_state_dict(path.with_suffix(".npz"))
    weights = {k: v for k, v in arrays.items() if not k.startswith(_MASK_PREFIX)}
    masks = {
        k[len(_MASK_PREFIX):]: v for k, v in arrays.items() if k.startswith(_MASK_PREFIX)
    }
    model.load_state_dict(weights)
    if masks and method is not None:
        if method.masks is None:
            raise ValueError("method has no mask manager; bind it before loading masks")
        method.masks.load_masks(masks)
    return load_json(path.with_suffix(".json"))


# ----------------------------------------------------------------------
# Inference-only restore (serving)
# ----------------------------------------------------------------------
class InferenceState:
    """What serving needs from a checkpoint: weights, masks, metadata.

    Produced by :func:`load_inference_state`; the training-only payload
    (optimizer buffers, method auxiliaries, RNG streams) is discarded.
    """

    __slots__ = ("masks", "metadata", "calibration")

    def __init__(self, masks, metadata, calibration) -> None:
        self.masks = masks
        self.metadata = metadata
        self.calibration = calibration


def load_inference_state(path: Union[str, Path], model: Module) -> InferenceState:
    """Load just the inference-relevant slice of any checkpoint format.

    Accepts both :func:`save_checkpoint` and :func:`save_training_state`
    files: model weights are restored into ``model``, masks and the
    persisted dispatch-calibration table (when present) are returned
    for the caller to hand to a fresh
    :class:`~repro.sparse.engine.SparsityManager`.  No trainer, method
    or optimizer is required — this is the serving-side entry point.
    """
    path = Path(path)
    arrays = load_state_dict(path.with_suffix(".npz"))
    metadata = load_json(path.with_suffix(".json"))
    arrays.pop("__epochs_completed__", None)
    weights: Dict[str, np.ndarray] = {}
    masks: Dict[str, np.ndarray] = {}
    for key, value in arrays.items():
        if key.startswith(_MASK_PREFIX):
            masks[key[len(_MASK_PREFIX):]] = value
        elif key.startswith((_OPT_PREFIX, _METHOD_PREFIX)):
            continue
        else:
            weights[key] = value
    model.load_state_dict(weights)
    calibration = None
    calibration_meta = metadata.get("calibration")
    if calibration_meta:
        from ..sparse.dispatch import CalibrationTable

        calibration = CalibrationTable.from_meta(calibration_meta)
    return InferenceState(masks=masks, metadata=metadata, calibration=calibration)


# ----------------------------------------------------------------------
# Full training-state checkpoints (bit-identical resume)
# ----------------------------------------------------------------------
def _encoder_rng_state(model) -> Optional[dict]:
    """State of the input encoder's RNG stream, if it owns one.

    Rate coding (:class:`~repro.snn.encoding.PoissonEncoder`) draws
    Bernoulli spikes per forward; without capturing its stream a
    resumed run would re-draw different spike trains and diverge from
    the uninterrupted one.
    """
    encoder_rng = getattr(getattr(model, "encoder", None), "rng", None)
    if encoder_rng is None:
        return None
    return encoder_rng.bit_generator.state


def _transform_rngs(loader) -> list:
    """Generators held by the loader's (possibly composed) transforms.

    ``RandomCrop`` / ``RandomHorizontalFlip`` expose theirs as ``.rng``;
    deduplicated by identity since composed stages may share one
    generator (``standard_train_transform`` does).
    """
    transform = getattr(loader, "transform", None)
    stages = getattr(transform, "transforms", [] if transform is None else [transform])
    rngs = []
    seen = set()
    for stage in stages:
        rng = getattr(stage, "rng", None)
        if rng is not None and id(rng) not in seen:
            seen.add(id(rng))
            rngs.append(rng)
    return rngs


def has_training_state(path: Union[str, Path]) -> bool:
    """True if a complete training-state checkpoint exists at ``path``."""
    path = Path(path)
    return path.with_suffix(".json").exists() and path.with_suffix(".npz").exists()


def save_training_state(
    path: Union[str, Path],
    trainer,
    epochs_completed: int,
    history=None,
) -> None:
    """Atomically write the complete resumable state of a training run.

    Captures, beyond :func:`save_checkpoint`'s weights/masks/counters:
    the optimizer's momentum buffers, the LR scheduler position, the
    method's auxiliary arrays and RNG position (see
    ``SparseTrainingMethod.state_arrays``/``state_meta``), the train
    loader's shuffle-RNG state, and the per-epoch history so far.  The
    ``.npz`` is written first and the ``.json`` sidecar last — each via
    tmp-file + ``os.replace`` — so the sidecar's presence marks a
    complete checkpoint and a crash mid-save can never corrupt one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    method = trainer.method
    arrays: Dict[str, np.ndarray] = dict(trainer.model.state_dict())
    if method.masks is not None:
        for name, mask in method.masks.masks.items():
            arrays[_MASK_PREFIX + name] = mask
    for key, value in trainer.optimizer.state_arrays().items():
        arrays[_OPT_PREFIX + key] = value
    for key, value in method.state_arrays().items():
        arrays[_METHOD_PREFIX + key] = value

    # Pairing stamp: the .npz and .json are replaced as two separate
    # renames, so a concurrent writer could interleave them.  Stamping
    # epochs_completed into the array file lets the loader detect (and
    # reject) a mismatched pair instead of silently resuming from it.
    arrays["__epochs_completed__"] = np.asarray(int(epochs_completed))

    loader_rng = getattr(trainer.train_loader, "rng", None)
    scheduler = trainer.scheduler
    metadata = {
        "version": TRAINING_STATE_VERSION,
        "epochs_completed": int(epochs_completed),
        "iteration": int(trainer.iteration),
        "optimizer": {"lr": float(trainer.optimizer.lr), **trainer.optimizer.state_meta()},
        "scheduler_last_epoch": None if scheduler is None else int(scheduler.last_epoch),
        "loader_rng_state": None if loader_rng is None else loader_rng.bit_generator.state,
        "transform_rng_states": [
            rng.bit_generator.state for rng in _transform_rngs(trainer.train_loader)
        ],
        "encoder_rng_state": _encoder_rng_state(trainer.model),
        "method": method.state_meta(),
        "history": [stats.as_dict() for stats in history or []],
    }
    # The measured dispatch table travels with the run: a resumed worker
    # restores these cutoffs instead of re-timing, so its dense-vs-CSR
    # routing (and therefore its arithmetic) is bit-identical to the
    # uninterrupted run even on different hardware.
    if method.masks is not None and method.masks.calibration is not None:
        metadata["calibration"] = method.masks.calibration.to_meta()

    def write_npz(tmp: Path) -> None:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)

    # atomic_replace serializes racing writers (a reaped-but-alive
    # worker vs its replacement on a shared spool); the pairing stamp
    # above catches the residual cross-file interleaving.
    atomic_replace(write_npz, path.with_suffix(".npz"))
    atomic_replace(lambda tmp: save_json(tmp, metadata), path.with_suffix(".json"))


def load_training_state(path: Union[str, Path], trainer) -> Dict:
    """Restore a checkpoint written by :func:`save_training_state`.

    The trainer must be freshly constructed from the *same* config
    (same model geometry, method, optimizer and loaders); every captured
    state — weights, masks, momentum, scheduler position, method
    auxiliaries and RNG streams — is overwritten in place.  Returns the
    metadata dict (``epochs_completed``, ``history``, ...).
    """
    path = Path(path)
    arrays = load_state_dict(path.with_suffix(".npz"))
    metadata = load_json(path.with_suffix(".json"))
    stamp = arrays.pop("__epochs_completed__", None)
    if stamp is not None and int(stamp) != int(metadata.get("epochs_completed", -1)):
        raise ValueError(
            f"checkpoint pair mismatch at {path}: arrays are from epoch "
            f"{int(stamp)}, metadata from epoch {metadata.get('epochs_completed')}"
        )
    weights: Dict[str, np.ndarray] = {}
    masks: Dict[str, np.ndarray] = {}
    opt_arrays: Dict[str, np.ndarray] = {}
    method_arrays: Dict[str, np.ndarray] = {}
    for key, value in arrays.items():
        if key.startswith(_MASK_PREFIX):
            masks[key[len(_MASK_PREFIX):]] = value
        elif key.startswith(_OPT_PREFIX):
            opt_arrays[key[len(_OPT_PREFIX):]] = value
        elif key.startswith(_METHOD_PREFIX):
            method_arrays[key[len(_METHOD_PREFIX):]] = value
        else:
            weights[key] = value

    trainer.model.load_state_dict(weights)
    method = trainer.method
    if masks:
        if method.masks is None:
            raise ValueError("method has no mask manager; bind it before loading masks")
        method.masks.load_masks(masks)
    method.load_state_arrays(method_arrays)
    method.load_state_meta(metadata.get("method", {}))
    calibration_meta = metadata.get("calibration")
    if calibration_meta and method.masks is not None:
        from ..sparse.dispatch import CalibrationTable

        # Overrides any freshly measured table: checkpointed dispatch
        # decisions win so resume stays bit-identical.
        method.masks.calibration = CalibrationTable.from_meta(calibration_meta)

    optimizer_meta = dict(metadata.get("optimizer", {}))
    lr = optimizer_meta.pop("lr", None)
    if lr is not None:
        trainer.optimizer.lr = float(lr)
    trainer.optimizer.load_state_arrays(opt_arrays)
    trainer.optimizer.load_state_meta(optimizer_meta)

    if trainer.scheduler is not None and metadata.get("scheduler_last_epoch") is not None:
        trainer.scheduler.last_epoch = int(metadata["scheduler_last_epoch"])
    loader_rng_state = metadata.get("loader_rng_state")
    loader_rng = getattr(trainer.train_loader, "rng", None)
    if loader_rng_state is not None and loader_rng is not None:
        loader_rng.bit_generator.state = loader_rng_state
    encoder_rng_state = metadata.get("encoder_rng_state")
    encoder_rng = getattr(getattr(trainer.model, "encoder", None), "rng", None)
    if encoder_rng_state is not None and encoder_rng is not None:
        encoder_rng.bit_generator.state = encoder_rng_state
    transform_states = metadata.get("transform_rng_states") or []
    transform_rngs = _transform_rngs(trainer.train_loader)
    if len(transform_states) != len(transform_rngs):
        raise ValueError(
            f"checkpoint has {len(transform_states)} transform RNG stream(s) "
            f"but the trainer has {len(transform_rngs)}; was the loader "
            "built with a different augmentation setup?"
        )
    for rng, state in zip(transform_rngs, transform_states):
        rng.bit_generator.state = state
    trainer.iteration = int(metadata.get("iteration", 0))
    return metadata


class CheckpointCallback(TrainerCallback):
    """Saves the full resumable training state at epoch boundaries.

    Attaching this to a :class:`~repro.train.trainer.Trainer` makes the
    run crash-resumable: every ``every`` epochs the complete state is
    written (atomically) to ``path``, and
    :func:`~repro.experiments.runner.run_experiment` picks it back up
    with ``resume=True``.  The sweep queue's workers rely on this so a
    SIGKILLed job is resumed by its next claimant instead of recomputed.
    """

    def __init__(self, path: Union[str, Path], every: int = 1) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1 epoch")
        self.path = Path(path)
        self.every = int(every)
        self.saves = 0

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        if (epoch + 1) % self.every != 0:
            return
        history = trainer.result.history if trainer.result is not None else [stats]
        save_training_state(self.path, trainer, epochs_completed=epoch + 1, history=history)
        self.saves += 1
