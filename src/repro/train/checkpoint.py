"""Training checkpoints: model weights + masks + schedule position.

Sparse training state is more than the weights — resuming NDSNN needs
the masks and the iteration counter (which drives Eqs. 4/5).  A
checkpoint bundles all of it into one ``.npz`` plus a JSON sidecar.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..nn.module import Module
from ..sparse.base import SparseTrainingMethod
from ..utils import load_json, load_state_dict, save_json, save_state_dict

_MASK_PREFIX = "__mask__."


def save_checkpoint(
    path: Union[str, Path],
    model: Module,
    method: Optional[SparseTrainingMethod] = None,
    iteration: int = 0,
    epoch: int = 0,
    extra: Optional[Dict] = None,
) -> None:
    """Write model weights, sparse masks and counters to disk.

    Produces ``<path>.npz`` (arrays) and ``<path>.json`` (metadata).
    """
    path = Path(path)
    arrays: Dict[str, np.ndarray] = dict(model.state_dict())
    if method is not None and method.masks is not None:
        for name, mask in method.masks.masks.items():
            arrays[_MASK_PREFIX + name] = mask
    save_state_dict(path.with_suffix(".npz"), arrays)
    metadata = {
        "iteration": iteration,
        "epoch": epoch,
        "has_masks": method is not None and method.masks is not None,
        "extra": extra or {},
    }
    save_json(path.with_suffix(".json"), metadata)


def load_checkpoint(
    path: Union[str, Path],
    model: Module,
    method: Optional[SparseTrainingMethod] = None,
) -> Dict:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the metadata dict (iteration/epoch/extra).  The method must
    already be bound (its mask manager exists) for masks to load.
    """
    path = Path(path)
    arrays = load_state_dict(path.with_suffix(".npz"))
    weights = {k: v for k, v in arrays.items() if not k.startswith(_MASK_PREFIX)}
    masks = {
        k[len(_MASK_PREFIX):]: v for k, v in arrays.items() if k.startswith(_MASK_PREFIX)
    }
    model.load_state_dict(weights)
    if masks and method is not None:
        if method.masks is None:
            raise ValueError("method has no mask manager; bind it before loading masks")
        method.masks.load_masks(masks)
    return load_json(path.with_suffix(".json"))
