"""Training harness: hook-based trainer, metrics, cost/memory models."""

from .checkpoint import (
    CheckpointCallback,
    InferenceState,
    has_training_state,
    load_checkpoint,
    load_inference_state,
    load_training_state,
    save_checkpoint,
    save_training_state,
)
from .hooks import (
    CallbackList,
    ConsoleLogger,
    MethodCallback,
    TopologyAudit,
    TrainerCallback,
)
from .faults import (
    FaultInjectionCallback,
    inject_bit_flips,
    inject_dead_neurons,
    inject_weight_dropout,
    inject_weight_noise,
    restore,
)
from .logging import read_history_csv, write_history_csv, write_history_json
from .cost import (
    CostAccountingCallback,
    CostBreakdown,
    dense_reference_cost,
    epoch_costs,
    relative_training_cost,
    training_flops_estimate,
)
from .memory import (
    PLATFORM_WEIGHT_BITS,
    FootprintReport,
    average_training_footprint_bits,
    dense_training_footprint_bits,
    inference_footprint_bits,
    model_footprint,
    training_footprint_bits,
)
from .metrics import AverageMeter, confusion_matrix, evaluate, top_k_accuracy
from .trainer import EpochStats, Trainer, TrainingResult

__all__ = [
    "save_checkpoint",
    "CheckpointCallback",
    "save_training_state",
    "load_training_state",
    "load_inference_state",
    "InferenceState",
    "has_training_state",
    "TrainerCallback",
    "CallbackList",
    "MethodCallback",
    "ConsoleLogger",
    "TopologyAudit",
    "FaultInjectionCallback",
    "CostAccountingCallback",
    "inject_weight_noise",
    "inject_weight_dropout",
    "inject_bit_flips",
    "inject_dead_neurons",
    "restore",
    "write_history_csv",
    "read_history_csv",
    "write_history_json",
    "load_checkpoint",
    "Trainer",
    "TrainingResult",
    "EpochStats",
    "AverageMeter",
    "evaluate",
    "confusion_matrix",
    "top_k_accuracy",
    "CostBreakdown",
    "epoch_costs",
    "relative_training_cost",
    "dense_reference_cost",
    "training_flops_estimate",
    "FootprintReport",
    "training_footprint_bits",
    "dense_training_footprint_bits",
    "inference_footprint_bits",
    "model_footprint",
    "average_training_footprint_bits",
    "PLATFORM_WEIGHT_BITS",
]
