"""Training loop for sparse spiking networks.

The :class:`Trainer` is a hook pipeline: the loop itself only moves
batches, runs backward, and steps the optimizer.  The sparse-training
method, cost accounting, fault injection, logging and any custom
instrumentation attach as :class:`~repro.train.hooks.TrainerCallback`
objects; the method is adapted automatically through
:class:`~repro.train.hooks.MethodCallback`.

Per-epoch statistics — including the spike rate and density traces that
feed the paper's Section IV-C training-cost model — are recorded by the
trainer core since every consumer needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.module import Module
from ..optim import LRScheduler, Optimizer
from ..snn.functional import reset_spike_stats, spike_rate
from ..sparse.base import SparseTrainingMethod
from ..tensor import Tensor, cross_entropy
from ..tensor.functional import DISPATCH_COUNTS
from .hooks import CallbackList, ConsoleLogger, MethodCallback, TrainerCallback
from .metrics import AverageMeter, evaluate


@dataclass
class EpochStats:
    """Per-epoch record of a training run."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    sparsity: float
    density: float
    spike_rate: float
    learning_rate: float
    #: Fraction of masked-kernel calls this epoch that took the CSR
    #: route (0.0 under dense execution).  Defaults so histories saved
    #: by older checkpoints still reconstruct.
    csr_dispatch_share: float = 0.0

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "test_accuracy": self.test_accuracy,
            "sparsity": self.sparsity,
            "density": self.density,
            "spike_rate": self.spike_rate,
            "learning_rate": self.learning_rate,
            "csr_dispatch_share": self.csr_dispatch_share,
        }


@dataclass
class TrainingResult:
    """Outcome of :meth:`Trainer.fit`."""

    history: List[EpochStats] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].test_accuracy if self.history else 0.0

    @property
    def best_accuracy(self) -> float:
        return max((s.test_accuracy for s in self.history), default=0.0)

    @property
    def spike_rates(self) -> List[float]:
        return [s.spike_rate for s in self.history]

    @property
    def densities(self) -> List[float]:
        return [s.density for s in self.history]

    @property
    def sparsities(self) -> List[float]:
        return [s.sparsity for s in self.history]


class Trainer:
    """Drives one training run of a (sparse) spiking model.

    Parameters
    ----------
    model, method, optimizer:
        The method is bound to the model/optimizer pair at construction
        (mask initialisation happens here) and attached to the hook
        pipeline as its first callback.
    train_loader / test_loader:
        Mini-batch iterables of ``(Tensor images, labels)``.
    scheduler:
        Optional LR scheduler stepped once per epoch.
    loss_fn:
        Defaults to cross-entropy on the temporal-mean logits.
    callbacks:
        Extra :class:`TrainerCallback` objects (cost accounting, fault
        injection, custom logging, ...) run after the method callback
        in registration order.
    """

    def __init__(
        self,
        model: Module,
        method: SparseTrainingMethod,
        optimizer: Optimizer,
        train_loader,
        test_loader=None,
        scheduler: Optional[LRScheduler] = None,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
        grad_clip: Optional[float] = None,
        callbacks: Optional[Sequence[TrainerCallback]] = None,
    ) -> None:
        self.model = model
        self.method = method
        self.optimizer = optimizer
        self.train_loader = train_loader
        self.test_loader = test_loader
        self.scheduler = scheduler
        self.loss_fn = loss_fn
        self.grad_clip = grad_clip
        self.iteration = 0
        #: The in-flight :class:`TrainingResult`; set at the top of
        #: :meth:`fit` so callbacks (checkpointing, logging) can see the
        #: history accumulated so far.
        self.result: Optional[TrainingResult] = None
        self.callbacks = CallbackList([MethodCallback(method)])
        for callback in callbacks or ():
            self.callbacks.append(callback)
        method.bind(model, optimizer)

    def add_callback(self, callback: TrainerCallback) -> "Trainer":
        """Register one more callback (chainable)."""
        self.callbacks.append(callback)
        return self

    # ------------------------------------------------------------------
    def _clip_gradients(self) -> None:
        if self.grad_clip is None:
            return
        for parameter in self.model.parameters():
            if parameter.grad is not None:
                np.clip(parameter.grad, -self.grad_clip, self.grad_clip, out=parameter.grad)

    def train_epoch(self) -> tuple:
        """One pass over the training data; returns (loss, accuracy)."""
        self.model.train()
        loss_meter = AverageMeter()
        accuracy_meter = AverageMeter()
        for images, labels in self.train_loader:
            logits = self.model(images)
            loss = self.loss_fn(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self._clip_gradients()
            self.callbacks.fire("after_backward", self, self.iteration)
            self.optimizer.step()
            self.callbacks.fire("on_step_end", self, self.iteration)
            self.iteration += 1

            batch = len(labels)
            loss_meter.update(float(loss.data), batch)
            predictions = logits.data.argmax(axis=1)
            accuracy_meter.update(float((predictions == labels).mean()), batch)
        return loss_meter.average, accuracy_meter.average

    def fit(
        self,
        epochs: int,
        verbose: bool = False,
        start_epoch: int = 0,
        initial_history: Optional[Sequence[EpochStats]] = None,
    ) -> TrainingResult:
        """Train for ``epochs`` epochs, recording per-epoch statistics.

        ``start_epoch``/``initial_history`` support resuming from a
        checkpoint (see :func:`~repro.train.checkpoint.load_training_state`):
        the loop picks up at ``start_epoch`` and the returned history is
        the restored epochs followed by the newly trained ones, exactly
        as an uninterrupted run would have produced.
        """
        if verbose and not any(isinstance(c, ConsoleLogger) for c in self.callbacks):
            self.callbacks.append(ConsoleLogger())
        result = TrainingResult(history=list(initial_history or []))
        self.result = result
        self.callbacks.fire("on_train_begin", self, epochs)
        for epoch in range(start_epoch, epochs):
            self.callbacks.fire("on_epoch_start", self, epoch)
            reset_spike_stats(self.model)
            dispatch_before = dict(DISPATCH_COUNTS)
            train_loss, train_accuracy = self.train_epoch()
            # Snapshot the dispatch counters around the training pass
            # only, so evaluation passes don't dilute the share.
            csr_calls = DISPATCH_COUNTS["csr"] - dispatch_before["csr"]
            dense_calls = DISPATCH_COUNTS["dense"] - dispatch_before["dense"]
            total_calls = csr_calls + dense_calls
            epoch_spike_rate = spike_rate(self.model)
            if self.scheduler is not None:
                self.scheduler.step()
            test_accuracy = (
                evaluate(self.model, self.test_loader) if self.test_loader is not None else 0.0
            )
            stats = EpochStats(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_accuracy,
                test_accuracy=test_accuracy,
                sparsity=self.method.sparsity(),
                density=self.method.density(),
                spike_rate=epoch_spike_rate,
                learning_rate=self.optimizer.lr,
                csr_dispatch_share=(csr_calls / total_calls) if total_calls else 0.0,
            )
            result.history.append(stats)
            self.callbacks.fire("on_epoch_end", self, epoch, stats)
        self.callbacks.fire("on_train_end", self, result)
        return result
