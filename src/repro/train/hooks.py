"""Trainer callback pipeline.

The :class:`~repro.train.trainer.Trainer` is a plain loop; everything
method-, accounting- or experiment-specific attaches through
:class:`TrainerCallback` hooks:

* ``on_train_begin(trainer, epochs)`` / ``on_train_end(trainer, result)``
* ``on_epoch_start(trainer, epoch)`` / ``on_epoch_end(trainer, epoch, stats)``
* ``after_backward(trainer, iteration)`` — gradients are available,
  the optimizer has not stepped yet
* ``on_step_end(trainer, iteration)`` — after the optimizer step
* ``on_mask_update(trainer, iteration, record)`` — a sparse method
  changed its topology this iteration

The sparse-training method itself rides the same pipeline through
:class:`MethodCallback`, which adapts the
:class:`~repro.sparse.engine.SparseTrainingMethod` interface and
announces topology changes to every other callback.  Cost accounting
and fault injection ship as callbacks in :mod:`repro.train.cost` and
:mod:`repro.train.faults`.
"""

from __future__ import annotations

from typing import List, Optional

from ..sparse.engine import SparseTrainingMethod, UpdateRecord


class TrainerCallback:
    """Base class: every hook is optional."""

    def on_train_begin(self, trainer, epochs: int) -> None:
        """Called once before the first epoch."""

    def on_epoch_start(self, trainer, epoch: int) -> None:
        """Called at the start of every epoch."""

    def after_backward(self, trainer, iteration: int) -> None:
        """Called when gradients are ready, before the optimizer step."""

    def on_step_end(self, trainer, iteration: int) -> None:
        """Called after the optimizer step."""

    def on_mask_update(self, trainer, iteration: int, record: Optional[UpdateRecord]) -> None:
        """Called when the sparse method edited its topology."""

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        """Called after an epoch's statistics are final."""

    def on_train_end(self, trainer, result) -> None:
        """Called once after the last epoch."""


class CallbackList:
    """Fan-out helper; iterates callbacks in registration order."""

    def __init__(self, callbacks: Optional[List[TrainerCallback]] = None) -> None:
        self.callbacks: List[TrainerCallback] = list(callbacks or [])

    def append(self, callback: TrainerCallback) -> None:
        self.callbacks.append(callback)

    def __iter__(self):
        return iter(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def fire(self, hook: str, *args) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(*args)


class MethodCallback(TrainerCallback):
    """Adapts a sparse-training method to the callback pipeline.

    Runs the method's iteration hooks and watches its
    ``mask_update_count`` so topology changes are re-broadcast as
    ``on_mask_update`` to every callback (including later-registered
    ones such as cost accounting).
    """

    def __init__(self, method: SparseTrainingMethod) -> None:
        self.method = method
        self._seen_updates = 0

    def on_train_begin(self, trainer, epochs: int) -> None:
        self._seen_updates = self.method.mask_update_count

    def on_epoch_start(self, trainer, epoch: int) -> None:
        self.method.on_epoch_begin(epoch)

    def after_backward(self, trainer, iteration: int) -> None:
        self.method.after_backward(iteration)
        if self.method.mask_update_count != self._seen_updates:
            self._seen_updates = self.method.mask_update_count
            trainer.callbacks.fire(
                "on_mask_update", trainer, iteration, self.method.last_update
            )

    def on_step_end(self, trainer, iteration: int) -> None:
        self.method.after_step(iteration)

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        self.method.on_epoch_end(epoch)


class ConsoleLogger(TrainerCallback):
    """Per-epoch progress line (the historical ``verbose=True`` output)."""

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        print(
            f"epoch {epoch:3d}  loss {stats.train_loss:.4f}  "
            f"train {stats.train_accuracy:.3f}  test {stats.test_accuracy:.3f}  "
            f"sparsity {stats.sparsity:.3f}  spikes {stats.spike_rate:.3f}"
        )


class TopologyAudit(TrainerCallback):
    """Collects every mask-update record seen during a run.

    Useful for tests and benches that want drop/grow traces without
    reaching into method internals.
    """

    def __init__(self) -> None:
        self.records: List[Optional[UpdateRecord]] = []
        self.iterations: List[int] = []

    def on_mask_update(self, trainer, iteration: int, record: Optional[UpdateRecord]) -> None:
        self.records.append(record)
        self.iterations.append(iteration)
