"""Evaluation metrics and meters."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor, no_grad


class AverageMeter:
    """Streaming weighted mean (loss/accuracy accounting)."""

    def __init__(self) -> None:
        self.total = 0.0
        self.weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        self.total += float(value) * weight
        self.weight += weight

    @property
    def average(self) -> float:
        if self.weight == 0:
            return 0.0
        return self.total / self.weight

    def reset(self) -> None:
        self.total = 0.0
        self.weight = 0.0


def evaluate(model: Module, loader, max_batches: Optional[int] = None) -> float:
    """Top-1 accuracy of ``model`` over ``loader`` (grad-free)."""
    was_training = model.training
    model.eval()
    correct = 0
    seen = 0
    with no_grad():
        for index, (images, labels) in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            logits = model(images)
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == labels).sum())
            seen += len(labels)
    if was_training:
        model.train()
    if seen == 0:
        return 0.0
    return correct / seen


def confusion_matrix(model: Module, loader, num_classes: int) -> np.ndarray:
    """Row-normalizable confusion counts ``matrix[true, predicted]``."""
    was_training = model.training
    model.eval()
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    with no_grad():
        for images, labels in loader:
            predictions = model(images).data.argmax(axis=1)
            for truth, guess in zip(labels, predictions):
                matrix[int(truth), int(guess)] += 1
    if was_training:
        model.train()
    return matrix


def top_k_accuracy(logits: Tensor, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true class is in the top-``k`` logits."""
    top = np.argsort(logits.data, axis=1)[:, -k:]
    hits = (top == np.asarray(targets)[:, None]).any(axis=1)
    return float(hits.mean())
