"""Training-history logging: CSV and JSON sinks for EpochStats."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

from ..utils import save_json
from .trainer import EpochStats

FIELDS = [
    "epoch",
    "train_loss",
    "train_accuracy",
    "test_accuracy",
    "sparsity",
    "density",
    "spike_rate",
    "learning_rate",
    "csr_dispatch_share",
]


def write_history_csv(path: Union[str, Path], history: Iterable[EpochStats]) -> None:
    """Write per-epoch stats as CSV (one row per epoch)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        for stats in history:
            writer.writerow(stats.as_dict())


def read_history_csv(path: Union[str, Path]) -> List[EpochStats]:
    """Read a CSV written by :func:`write_history_csv`."""
    out: List[EpochStats] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            out.append(
                EpochStats(
                    epoch=int(row["epoch"]),
                    train_loss=float(row["train_loss"]),
                    train_accuracy=float(row["train_accuracy"]),
                    test_accuracy=float(row["test_accuracy"]),
                    sparsity=float(row["sparsity"]),
                    density=float(row["density"]),
                    spike_rate=float(row["spike_rate"]),
                    learning_rate=float(row["learning_rate"]),
                    # CSVs written before this column existed read back
                    # with the default share.
                    csr_dispatch_share=float(row.get("csr_dispatch_share") or 0.0),
                )
            )
    return out


def write_history_json(path: Union[str, Path], history: Iterable[EpochStats]) -> None:
    """Write per-epoch stats as a JSON list."""
    save_json(path, {"history": [stats.as_dict() for stats in history]})
