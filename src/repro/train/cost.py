"""Training-cost model (paper Section IV-C, Fig. 5).

The paper evaluates training efficiency by normalizing spike activity:
since computation only happens where there is an input spike *and* an
unpruned connection, the relative computation cost of a sparse model at
epoch ``i`` with respect to the dense model is

    cost_i = (R_s^i * density_i) / R_d^i

where ``R_s^i`` / ``R_d^i`` are the average spike rates of the sparse /
dense model at epoch ``i`` and ``density_i`` is the fraction of
non-zero weights.  (The paper's text writes "Sparsity_i"; the semantics
— pruned connections cost nothing — require the non-zero fraction, so
we use density and note the discrepancy in DESIGN.md.)

The total normalized training cost of a run is the sum of its per-epoch
costs divided by the dense run's epoch count; LTH runs concatenate the
epochs of all prune-rewind-retrain rounds, which is exactly why its
cost is high.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .hooks import TrainerCallback


@dataclass
class CostBreakdown:
    """Per-epoch and total relative training cost of one method."""

    method: str
    per_epoch: List[float]
    total_relative_to_dense: float

    @property
    def percent_of_dense(self) -> float:
        return 100.0 * self.total_relative_to_dense


def epoch_costs(
    spike_rates: Sequence[float],
    densities: Sequence[float],
    dense_spike_rates: Sequence[float],
) -> List[float]:
    """Per-epoch cost ``R_s^i * density_i / R_d^i``.

    If the sparse run has more epochs than the dense reference (LTH
    rounds), dense rates are cycled; if fewer, extra dense epochs are
    ignored.
    """
    if len(spike_rates) != len(densities):
        raise ValueError("spike_rates and densities must have equal length")
    if not dense_spike_rates:
        raise ValueError("dense reference must be non-empty")
    costs = []
    for index, (rate, density) in enumerate(zip(spike_rates, densities)):
        reference = dense_spike_rates[index % len(dense_spike_rates)]
        if reference <= 0:
            raise ValueError(f"dense spike rate at epoch {index} must be positive")
        costs.append(rate * density / reference)
    return costs


def relative_training_cost(
    spike_rates: Sequence[float],
    densities: Sequence[float],
    dense_spike_rates: Sequence[float],
    method: str = "sparse",
) -> CostBreakdown:
    """Total training cost of a run, normalized to the dense run.

    The dense baseline has per-epoch cost 1 by construction, so its
    total equals its epoch count; a sparse run's total is the sum of
    its per-epoch costs (over however many epochs it trains, which for
    LTH includes every round).
    """
    per_epoch = epoch_costs(spike_rates, densities, dense_spike_rates)
    total = sum(per_epoch) / len(dense_spike_rates)
    return CostBreakdown(method=method, per_epoch=per_epoch, total_relative_to_dense=total)


def dense_reference_cost(dense_spike_rates: Sequence[float]) -> CostBreakdown:
    """The dense run measured against itself (total = 1)."""
    per_epoch = [1.0] * len(dense_spike_rates)
    return CostBreakdown(method="dense", per_epoch=per_epoch, total_relative_to_dense=1.0)


class CostAccountingCallback(TrainerCallback):
    """Tracks the Section IV-C cost terms live during a training run.

    Attach to a :class:`~repro.train.trainer.Trainer` and the per-epoch
    ``(spike_rate, density)`` pairs — plus every topology-update event —
    accumulate as training progresses; :meth:`breakdown` then prices the
    run against a dense reference without re-reading the history.

    Parameters
    ----------
    dense_spike_rates:
        Optional per-epoch spike rates of the dense baseline.  May also
        be supplied later to :meth:`breakdown`.
    """

    def __init__(self, dense_spike_rates: Optional[Sequence[float]] = None) -> None:
        self.dense_spike_rates = list(dense_spike_rates) if dense_spike_rates else None
        self.spike_rates: List[float] = []
        self.densities: List[float] = []
        self.mask_updates = 0
        self.method_name = "sparse"

    def on_train_begin(self, trainer, epochs: int) -> None:
        self.method_name = getattr(trainer.method, "name", "sparse")

    def on_mask_update(self, trainer, iteration, record) -> None:
        self.mask_updates += 1

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        self.spike_rates.append(stats.spike_rate)
        self.densities.append(stats.density)

    def breakdown(
        self, dense_spike_rates: Optional[Sequence[float]] = None
    ) -> CostBreakdown:
        """Price the observed run against the dense reference."""
        reference = dense_spike_rates or self.dense_spike_rates
        if reference is None:
            raise ValueError("no dense reference spike rates supplied")
        return relative_training_cost(
            self.spike_rates, self.densities, reference, method=self.method_name
        )


def training_flops_estimate(
    connections_per_epoch: Sequence[float], timesteps: int, samples_per_epoch: int
) -> float:
    """Rough FLOPs proxy: active connections x timesteps x samples x 3.

    The factor 3 counts forward, input-gradient and weight-gradient
    passes of BPTT.  Used by the initial-sparsity ablation (Table III's
    "training FLOPs" discussion).
    """
    if timesteps < 1 or samples_per_epoch < 1:
        raise ValueError("timesteps and samples_per_epoch must be >= 1")
    return float(sum(connections_per_epoch)) * timesteps * samples_per_epoch * 3.0
