"""Fault injection for robustness studies on sparse spiking models.

The paper motivates NDSNN with edge/neuromorphic deployment (Loihi,
HICANN, FPGAs).  Real devices exhibit weight corruption (SRAM bit
flips, analog drift) and dead units; this module injects those faults
so a user can measure how much accuracy a sparse model gives up under
hardware imperfection — and tests verify graceful degradation.

All injectors mutate parameters in place and return an inverse-patch
dict so experiments can restore the pristine weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..nn.module import Module
from ..sparse.mask import sparsifiable_parameters
from .hooks import TrainerCallback


def _snapshot(model: Module) -> Dict[str, np.ndarray]:
    return {name: p.data.copy() for name, p in sparsifiable_parameters(model)}


def _mark_stale(parameter) -> None:
    """Weight mutated outside the optimizer: invalidate any CSR value cache."""
    state = getattr(parameter, "_masked_state", None)
    if state is not None:
        state.mark_values_dirty()


def restore(model: Module, snapshot: Dict[str, np.ndarray]) -> None:
    """Undo a fault injection using the returned snapshot."""
    parameters = dict(sparsifiable_parameters(model))
    for name, values in snapshot.items():
        parameters[name].data[...] = values
        _mark_stale(parameters[name])


def inject_weight_noise(
    model: Module,
    sigma: float,
    rng: Optional[np.random.Generator] = None,
    relative: bool = True,
) -> Dict[str, np.ndarray]:
    """Gaussian perturbation of the *non-zero* weights (analog drift).

    ``relative=True`` scales the noise by each layer's weight standard
    deviation, which models multiplicative device variation.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    gen = rng if rng is not None else np.random.default_rng()
    snapshot = _snapshot(model)
    for name, parameter in sparsifiable_parameters(model):
        active = parameter.data != 0
        scale = sigma * (parameter.data[active].std() if relative and active.any() else 1.0)
        noise = gen.normal(0.0, scale or sigma, size=parameter.shape).astype(np.float32)
        parameter.data[active] += noise[active]
        _mark_stale(parameter)
    return snapshot


def inject_weight_dropout(
    model: Module,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """Kill a random fraction of surviving weights (stuck-at-zero cells)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    gen = rng if rng is not None else np.random.default_rng()
    snapshot = _snapshot(model)
    for _, parameter in sparsifiable_parameters(model):
        flat = parameter.data.reshape(-1)
        active = np.flatnonzero(flat)
        if active.size == 0:
            continue
        kill = gen.choice(active, size=int(fraction * active.size), replace=False)
        flat[kill] = 0.0
        _mark_stale(parameter)
    return snapshot


def inject_bit_flips(
    model: Module,
    flips_per_layer: int,
    bit: int = 23,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """Flip one bit of the float32 representation of random weights.

    ``bit`` indexes from the LSB of the IEEE-754 encoding; 23 is the
    least-significant exponent bit (a large perturbation), low values
    perturb the mantissa (small).
    """
    if not 0 <= bit <= 31:
        raise ValueError("bit must be in [0, 31]")
    if flips_per_layer < 0:
        raise ValueError("flips_per_layer must be non-negative")
    gen = rng if rng is not None else np.random.default_rng()
    snapshot = _snapshot(model)
    for _, parameter in sparsifiable_parameters(model):
        flat = parameter.data.reshape(-1)
        active = np.flatnonzero(flat)
        if active.size == 0:
            continue
        count = min(flips_per_layer, active.size)
        victims = gen.choice(active, size=count, replace=False)
        as_int = flat[victims].view(np.uint32)
        flat[victims] = (as_int ^ np.uint32(1 << bit)).view(np.float32)
        _mark_stale(parameter)
    return snapshot


# ----------------------------------------------------------------------
# Shared fault-spec vocabulary
# ----------------------------------------------------------------------
# Training-time (weight) faults and stream-time (event) faults share a
# single config surface: ``kind:key=value,key=value`` strings parsed by
# :func:`parse_fault_spec`.  The weight kinds build injectors here; the
# stream kinds are consumed by
# :class:`repro.stream.faults.StreamFaultInjector`.
#: kind -> (scope, {param: (type, default)})
FAULT_VOCABULARY: Dict[str, tuple] = {
    "noise": ("weight", {"sigma": (float, 0.1), "relative": (bool, True)}),
    "dropout": ("weight", {"fraction": (float, 0.1)}),
    "bitflip": ("weight", {"flips": (int, 1), "bit": (int, 23)}),
    "dead": ("weight", {"fraction": (float, 0.1)}),
    "channel_dropout": ("stream", {"fraction": (float, 0.25), "p": (float, 0.1)}),
    "stall": ("stream", {"duration": (float, 1.0), "p": (float, 0.05)}),
    "reconnect": ("stream", {"gap": (float, 1.0), "drop": (int, 1), "p": (float, 0.05)}),
}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: its kind, scope and severity knobs."""

    kind: str
    scope: str
    params: Dict[str, object] = field(default_factory=dict)


def _parse_value(raw: str, target_type):
    if target_type is bool:
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes"):
            return True
        if lowered in ("0", "false", "no"):
            return False
        raise ValueError(f"expected a boolean, got {raw!r}")
    return target_type(raw)


def parse_fault_spec(spec: str) -> FaultSpec:
    """Parse ``"kind:key=value,key=value"`` into a :class:`FaultSpec`.

    >>> parse_fault_spec("noise:sigma=0.2").params["sigma"]
    0.2
    >>> parse_fault_spec("stall").scope
    'stream'
    """
    head, _, tail = spec.strip().partition(":")
    kind = head.strip()
    if kind not in FAULT_VOCABULARY:
        raise ValueError(
            f"unknown fault kind {kind!r}; available: {sorted(FAULT_VOCABULARY)}"
        )
    scope, schema = FAULT_VOCABULARY[kind]
    params = {name: default for name, (_, default) in schema.items()}
    if tail.strip():
        for item in tail.split(","):
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or key not in schema:
                raise ValueError(
                    f"fault {kind!r} got bad parameter {item.strip()!r}; "
                    f"available: {sorted(schema)}"
                )
            params[key] = _parse_value(raw, schema[key][0])
    return FaultSpec(kind=kind, scope=scope, params=params)


def build_injector(
    spec, rng: Optional[np.random.Generator] = None
) -> Callable[[Module], Dict[str, np.ndarray]]:
    """Weight-fault injector (``model -> snapshot``) from a spec.

    ``spec`` is a :class:`FaultSpec` or its string form.  Stream-scope
    kinds are rejected here — route those through
    :class:`repro.stream.faults.StreamFaultInjector`.
    """
    if isinstance(spec, str):
        spec = parse_fault_spec(spec)
    if spec.scope != "weight":
        raise ValueError(
            f"fault {spec.kind!r} is a stream fault; use StreamFaultInjector"
        )
    p = spec.params
    if spec.kind == "noise":
        return lambda model: inject_weight_noise(
            model, sigma=p["sigma"], rng=rng, relative=p["relative"]
        )
    if spec.kind == "dropout":
        return lambda model: inject_weight_dropout(model, fraction=p["fraction"], rng=rng)
    if spec.kind == "bitflip":
        return lambda model: inject_bit_flips(
            model, flips_per_layer=p["flips"], bit=p["bit"], rng=rng
        )
    return lambda model: inject_dead_neurons(model, fraction=p["fraction"], rng=rng)


class FaultInjectionCallback(TrainerCallback):
    """Applies a fault injector on a per-epoch schedule during training.

    Models persistent or transient hardware imperfection while the
    model trains (e.g. analog drift between write cycles).  The
    ``injector`` is any of this module's ``inject_*`` functions,
    partially applied to its severity knobs.

    Parameters
    ----------
    injector:
        ``model -> snapshot`` callable; the returned snapshot is kept
        so transient faults can be undone.
    every:
        Inject at the start of every ``every``-th epoch (1 = each).
    transient:
        If True, the pristine weights are restored at the end of the
        epoch — the fault only perturbs one epoch's updates.
    """

    def __init__(
        self,
        injector: Callable[[Module], Dict[str, np.ndarray]],
        every: int = 1,
        transient: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.injector = injector
        self.every = int(every)
        self.transient = transient
        self.injections = 0
        self._snapshot: Optional[Dict[str, np.ndarray]] = None

    @classmethod
    def from_spec(
        cls,
        spec: str,
        every: int = 1,
        transient: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> "FaultInjectionCallback":
        """Build from a shared fault-spec string (see FAULT_VOCABULARY).

        >>> cb = FaultInjectionCallback.from_spec("dropout:fraction=0.2", every=2)
        >>> cb.every
        2
        """
        return cls(build_injector(spec, rng=rng), every=every, transient=transient)

    def on_epoch_start(self, trainer, epoch: int) -> None:
        if epoch % self.every != 0:
            return
        self._snapshot = self.injector(trainer.model)
        self.injections += 1
        # Masked positions must stay dead even under fault perturbation.
        if trainer.method.masks is not None:
            trainer.method.masks.apply_masks()

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        if self.transient and self._snapshot is not None:
            restore(trainer.model, self._snapshot)
            self._snapshot = None


def inject_dead_neurons(
    model: Module,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """Silence a fraction of output units per layer (dead neurons).

    Zeroes entire filter rows, modelling defective hardware neurons.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    gen = rng if rng is not None else np.random.default_rng()
    snapshot = _snapshot(model)
    for _, parameter in sparsifiable_parameters(model):
        rows = parameter.shape[0]
        dead = gen.choice(rows, size=int(fraction * rows), replace=False)
        parameter.data[dead] = 0.0
        _mark_stale(parameter)
    return snapshot
