"""Memory-footprint model (paper Section III-D).

For a sparse model with sparsity ``theta``, ``N`` total weights,
timestep count ``t`` and word sizes ``b_w`` (weights/gradients) and
``b_idx`` (sparse indices), the training memory footprint in bits is

    (1 - theta) * ((1 + t) * N * b_w + N * b_idx) + sum_l (F_l + 1) * b_idx

using CSR storage: each of the ``(1-theta) N`` non-zeros stores one
weight, ``t`` gradient copies (one per BPTT timestep) and one column
index; each of the ``F_l`` filter rows stores one row-pointer.  The
paper's approximation drops the row-pointer term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..nn.module import Module
from ..sparse.mask import sparsifiable_parameters

#: Inference weight precisions of the platforms cited in Section III-D.
PLATFORM_WEIGHT_BITS: Dict[str, int] = {
    "loihi": 8,        # Intel Loihi neuromorphic chip
    "hicann": 4,       # HICANN mixed-signal wafer design
    "fpga_low": 4,     # SyncNN-style FPGA, low precision
    "fpga_high": 16,   # SyncNN-style FPGA, high precision
    "gpu_fp32": 32,
}


@dataclass
class FootprintReport:
    """Bits (and bytes) of a model + gradients under a sparsity level."""

    sparsity: float
    timesteps: int
    total_weights: int
    weight_bits: int
    index_bits: int
    bits: float

    @property
    def bytes(self) -> float:
        return self.bits / 8.0

    @property
    def megabytes(self) -> float:
        return self.bytes / (1024.0 ** 2)


def training_footprint_bits(
    total_weights: int,
    sparsity: float,
    timesteps: int,
    weight_bits: int = 32,
    index_bits: int = 32,
    filters_per_layer: Optional[Sequence[int]] = None,
) -> float:
    """Exact Section III-D training footprint in bits.

    ``filters_per_layer`` supplies the CSR row-pointer term
    ``sum_l (F_l + 1) * b_idx``; omit it for the paper's approximation.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    if total_weights < 0 or timesteps < 0:
        raise ValueError("total_weights and timesteps must be non-negative")
    density = 1.0 - sparsity
    bits = density * ((1 + timesteps) * total_weights * weight_bits + total_weights * index_bits)
    if filters_per_layer is not None:
        bits += sum(f + 1 for f in filters_per_layer) * index_bits
    return float(bits)


def dense_training_footprint_bits(
    total_weights: int, timesteps: int, weight_bits: int = 32
) -> float:
    """Dense reference: weights + t gradient copies, no index overhead."""
    return float((1 + timesteps) * total_weights * weight_bits)


def inference_footprint_bits(
    total_weights: int,
    sparsity: float,
    platform: str = "loihi",
    index_bits: int = 32,
    filters_per_layer: Optional[Sequence[int]] = None,
) -> float:
    """Deployed-model footprint at a platform's weight precision."""
    try:
        weight_bits = PLATFORM_WEIGHT_BITS[platform]
    except KeyError:
        raise ValueError(
            f"unknown platform {platform!r}; available: {sorted(PLATFORM_WEIGHT_BITS)}"
        ) from None
    density = 1.0 - sparsity
    bits = density * total_weights * (weight_bits + index_bits)
    if filters_per_layer is not None:
        bits += sum(f + 1 for f in filters_per_layer) * index_bits
    return float(bits)


def model_footprint(
    model: Module,
    sparsity: float,
    timesteps: int,
    weight_bits: int = 32,
    index_bits: int = 32,
    exact: bool = True,
) -> FootprintReport:
    """Footprint of a concrete model at a hypothetical sparsity."""
    parameters = sparsifiable_parameters(model)
    total = sum(p.size for _, p in parameters)
    filters = [p.shape[0] for _, p in parameters] if exact else None
    bits = training_footprint_bits(
        total,
        sparsity,
        timesteps,
        weight_bits=weight_bits,
        index_bits=index_bits,
        filters_per_layer=filters,
    )
    return FootprintReport(
        sparsity=sparsity,
        timesteps=timesteps,
        total_weights=total,
        weight_bits=weight_bits,
        index_bits=index_bits,
        bits=bits,
    )


def average_training_footprint_bits(
    total_weights: int,
    sparsity_trace: Sequence[float],
    timesteps: int,
    weight_bits: int = 32,
    index_bits: int = 32,
) -> float:
    """Mean footprint over a training run's per-epoch sparsity trace.

    This is the quantity that favours NDSNN: its trace is sparse from
    epoch 0, while train-prune-retrain spends most epochs dense.
    """
    if not sparsity_trace:
        raise ValueError("sparsity trace must be non-empty")
    footprints = [
        training_footprint_bits(
            total_weights, s, timesteps, weight_bits=weight_bits, index_bits=index_bits
        )
        for s in sparsity_trace
    ]
    return float(sum(footprints) / len(footprints))
