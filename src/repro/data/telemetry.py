"""Synthetic sensor-telemetry event generators.

The streaming workload class the ROADMAP targets is sensor telemetry:
hundreds of channels per device, irregular arrival, devices dropping
out mid-stream.  No such feed is available offline, so this module
generates deterministic surrogates with the right statistics:

* inter-arrival times are exponential (Poisson arrivals) with a
  per-source rate — the canonical irregular-arrival model;
* channel values are smooth per-channel sinusoids plus noise, clipped
  to ``[0, 1]`` so they feed rate/latency encoders directly;
* everything derives from ``(seed, stream_id)``, so two generators
  built the same way emit byte-identical event sequences — replays
  are exact, which the bit-identity tests rely on.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

import numpy as np

from ..stream.events import EventStream, StreamEvent, StreamSource


def stream_seed(seed: int, stream_id: str) -> int:
    """Stable per-stream seed: experiment seed folded with the id."""
    return (int(seed) * 0x9E3779B1 + zlib.crc32(stream_id.encode("utf-8"))) % (2**32)


class TelemetrySource(StreamSource):
    """Deterministic telemetry stream for one simulated device.

    Parameters
    ----------
    stream_id:
        Device identity (also salts the RNG stream).
    num_channels:
        Sensor channels per event.
    num_events:
        Length of one pass; each :meth:`events` call replays the same
        sequence from the start.
    rate_hz:
        Mean arrival rate of the Poisson process (events per second).
    seed:
        Base experiment seed; combined with ``stream_id`` via
        :func:`stream_seed`.
    start_time:
        Timestamp of time zero for this device.
    """

    def __init__(
        self,
        stream_id: str,
        num_channels: int = 16,
        num_events: int = 256,
        rate_hz: float = 100.0,
        seed: int = 0,
        start_time: float = 0.0,
    ) -> None:
        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        if num_events < 0:
            raise ValueError("num_events must be >= 0")
        if rate_hz <= 0.0:
            raise ValueError("rate_hz must be positive")
        self.stream_id = stream_id
        self.num_channels = int(num_channels)
        self.num_events = int(num_events)
        self.rate_hz = float(rate_hz)
        self.seed = int(seed)
        self.start_time = float(start_time)

    def events(self):
        rng = np.random.default_rng(stream_seed(self.seed, self.stream_id))
        # Per-channel signal parameters are drawn once so the channel
        # values are smooth functions of event time, not white noise.
        freq = rng.uniform(0.2, 2.0, size=self.num_channels)
        phase = rng.uniform(0.0, 2.0 * np.pi, size=self.num_channels)
        amplitude = rng.uniform(0.2, 0.45, size=self.num_channels)
        noise_scale = 0.05
        t = self.start_time
        for _ in range(self.num_events):
            t += float(rng.exponential(1.0 / self.rate_hz))
            clean = 0.5 + amplitude * np.sin(2.0 * np.pi * freq * t + phase)
            noisy = clean + rng.normal(0.0, noise_scale, size=self.num_channels)
            channels = np.clip(noisy, 0.0, 1.0).astype(np.float32)
            yield StreamEvent(stream_id=self.stream_id, timestamp=t, channels=channels)

    def __repr__(self) -> str:
        return (
            f"TelemetrySource(id={self.stream_id!r}, channels={self.num_channels}, "
            f"events={self.num_events}, rate={self.rate_hz}Hz, seed={self.seed})"
        )


def make_telemetry_stream(
    num_streams: int = 4,
    num_channels: int = 16,
    num_events: int = 256,
    rate_hz: float = 100.0,
    seed: int = 0,
    stream_ids: Optional[List[str]] = None,
) -> EventStream:
    """Multiplexed feed of ``num_streams`` deterministic devices."""
    if stream_ids is None:
        stream_ids = [f"device-{i:02d}" for i in range(num_streams)]
    sources = [
        TelemetrySource(
            stream_id=sid,
            num_channels=num_channels,
            num_events=num_events,
            rate_hz=rate_hz,
            seed=seed,
        )
        for sid in stream_ids
    ]
    return EventStream(sources)
