"""Batch-level data augmentation (random crop, flip, normalize).

Mirrors the torchvision transforms the paper's training recipe uses for
CIFAR: random crop with 4-pixel padding, random horizontal flip, and
per-channel normalization.  Transforms operate on stacked numpy batches
of shape ``(N, C, H, W)``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np


class Compose:
    """Chain batch transforms in order."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch)
        return batch


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        flips = self.rng.random(batch.shape[0]) < self.p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out


class RandomCrop:
    """Pad by ``padding`` pixels and crop back to the original size."""

    def __init__(self, padding: int = 4, rng: Optional[np.random.Generator] = None) -> None:
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding
        self.rng = rng if rng is not None else np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return batch
        n, c, h, w = batch.shape
        pad = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.empty_like(batch)
        tops = self.rng.integers(0, 2 * pad + 1, size=n)
        lefts = self.rng.integers(0, 2 * pad + 1, size=n)
        for index in range(n):
            top, left = tops[index], lefts[index]
            out[index] = padded[index, :, top:top + h, left:left + w]
        return out


class Normalize:
    """Per-channel standardization ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        return (batch - self.mean) / self.std


class GaussianNoise:
    """Additive Gaussian noise (robustness-testing augmentation)."""

    def __init__(self, sigma: float = 0.05, rng: Optional[np.random.Generator] = None) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.rng = rng if rng is not None else np.random.default_rng()

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if self.sigma == 0:
            return batch
        return batch + self.rng.normal(0.0, self.sigma, size=batch.shape).astype(batch.dtype)


def standard_train_transform(
    padding: int = 4, rng: Optional[np.random.Generator] = None
) -> Compose:
    """The paper's CIFAR recipe: random crop + horizontal flip."""
    generator = rng if rng is not None else np.random.default_rng()
    return Compose([RandomCrop(padding=padding, rng=generator), RandomHorizontalFlip(rng=generator)])
