"""Data substrate: synthetic datasets, loaders and augmentation."""

from .augment import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    standard_train_transform,
)
from .loader import DataLoader
from .synthetic import (
    CIFAR10_SPEC,
    CIFAR100_SPEC,
    DATASET_SPECS,
    TINY_IMAGENET_SPEC,
    ArrayDataset,
    SyntheticImageDataset,
    SyntheticSpec,
    make_dataset,
)

__all__ = [
    "SyntheticImageDataset",
    "SyntheticSpec",
    "ArrayDataset",
    "make_dataset",
    "DATASET_SPECS",
    "CIFAR10_SPEC",
    "CIFAR100_SPEC",
    "TINY_IMAGENET_SPEC",
    "DataLoader",
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Normalize",
    "GaussianNoise",
    "standard_train_transform",
]
