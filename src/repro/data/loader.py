"""Mini-batch loading with optional augmentation."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class DataLoader:
    """Iterate a dataset in shuffled mini-batches of Tensors.

    Parameters
    ----------
    dataset:
        Anything with ``__len__`` and ``__getitem__ -> (image, label)``.
    transform:
        Optional batch transform ``images -> images`` applied to the
        stacked numpy batch (see :mod:`repro.data.augment`).
    """

    def __init__(
        self,
        dataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[Tensor, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            indices = order[start:start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            images = []
            labels = np.empty(len(indices), dtype=np.int64)
            for position, index in enumerate(indices):
                image, label = self.dataset[int(index)]
                images.append(image)
                labels[position] = label
            batch = np.stack(images)
            if self.transform is not None:
                batch = self.transform(batch)
            yield Tensor(batch), labels
