"""Synthetic image classification datasets.

The offline reproduction environment has no access to CIFAR-10,
CIFAR-100 or Tiny-ImageNet downloads, so we substitute deterministic
class-conditional generators with the same tensor shapes and class
counts (documented in DESIGN.md).  Each class owns a prototype built
from class-specific 2-D sinusoid textures and Gaussian blobs; samples
are noisy, randomly shifted instances of their class prototype.  The
task is learnable but not trivial: with default noise, a linear model
is far from perfect while a small convnet separates classes well, so
*relative orderings* between sparse-training methods remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape/difficulty specification of a synthetic dataset."""

    name: str
    num_classes: int
    image_size: int
    in_channels: int = 3
    noise: float = 0.35
    shift: int = 2
    texture_components: int = 4

    def scaled(self, image_size: Optional[int] = None, num_classes: Optional[int] = None) -> "SyntheticSpec":
        """Return a copy with a different resolution/class count.

        Used by the CPU-scale benchmark harness; the generator keeps the
        same per-class texture statistics at any size.
        """
        return SyntheticSpec(
            name=self.name,
            num_classes=num_classes if num_classes is not None else self.num_classes,
            image_size=image_size if image_size is not None else self.image_size,
            in_channels=self.in_channels,
            noise=self.noise,
            shift=self.shift,
            texture_components=self.texture_components,
        )


CIFAR10_SPEC = SyntheticSpec(name="cifar10", num_classes=10, image_size=32)
CIFAR100_SPEC = SyntheticSpec(name="cifar100", num_classes=100, image_size=32)
TINY_IMAGENET_SPEC = SyntheticSpec(name="tiny_imagenet", num_classes=200, image_size=64)

DATASET_SPECS = {
    "cifar10": CIFAR10_SPEC,
    "cifar100": CIFAR100_SPEC,
    "tiny_imagenet": TINY_IMAGENET_SPEC,
}


def _class_prototype(spec: SyntheticSpec, class_index: int, seed: int) -> np.ndarray:
    """Deterministic prototype image for one class."""
    rng = np.random.default_rng(seed * 1_000_003 + class_index)
    size = spec.image_size
    yy, xx = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij")
    prototype = np.zeros((spec.in_channels, size, size), dtype=np.float32)
    for channel in range(spec.in_channels):
        image = np.zeros((size, size), dtype=np.float64)
        # Class-specific sinusoid textures.
        for _ in range(spec.texture_components):
            freq = rng.uniform(1.0, 4.0)
            angle = rng.uniform(0.0, np.pi)
            phase = rng.uniform(0.0, 2 * np.pi)
            direction = np.cos(angle) * xx + np.sin(angle) * yy
            image += rng.uniform(0.4, 1.0) * np.sin(2 * np.pi * freq * direction + phase)
        # A couple of Gaussian blobs give each class a spatial signature.
        for _ in range(2):
            cy, cx = rng.uniform(0.2, 0.8, size=2)
            sigma = rng.uniform(0.08, 0.2)
            image += rng.uniform(0.5, 1.5) * np.exp(
                -((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma ** 2)
            )
        image -= image.mean()
        scale = np.abs(image).max()
        if scale > 0:
            image /= scale
        prototype[channel] = image.astype(np.float32)
    return prototype


class SyntheticImageDataset:
    """In-memory synthetic classification dataset.

    Parameters
    ----------
    spec:
        Shape/difficulty specification.
    num_samples:
        Total number of samples (balanced across classes).
    train:
        Train and test splits use disjoint sample seeds.
    seed:
        Base seed; the same (spec, seed) pair always produces the same
        prototypes, so train/test share class structure.
    """

    def __init__(
        self,
        spec: SyntheticSpec,
        num_samples: int,
        train: bool = True,
        seed: int = 0,
    ) -> None:
        if num_samples < spec.num_classes:
            raise ValueError(
                f"need at least one sample per class "
                f"({spec.num_classes}), got {num_samples}"
            )
        self.spec = spec
        self.train = train
        self.seed = seed
        self.prototypes = np.stack(
            [_class_prototype(spec, k, seed) for k in range(spec.num_classes)]
        )
        split_offset = 0 if train else 1_000_000_007
        rng = np.random.default_rng(seed * 7_919 + split_offset)
        labels = np.arange(num_samples) % spec.num_classes
        rng.shuffle(labels)
        self.labels = labels.astype(np.int64)
        self.images = self._render(rng)

    def _render(self, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        images = np.empty(
            (len(self.labels), spec.in_channels, spec.image_size, spec.image_size),
            dtype=np.float32,
        )
        for index, label in enumerate(self.labels):
            image = self.prototypes[label].copy()
            if spec.shift > 0:
                dy, dx = rng.integers(-spec.shift, spec.shift + 1, size=2)
                image = np.roll(image, (int(dy), int(dx)), axis=(1, 2))
            image += rng.normal(0.0, spec.noise, size=image.shape).astype(np.float32)
            images[index] = image
        return images

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (self.spec.in_channels, self.spec.image_size, self.spec.image_size)


class ArrayDataset:
    """Wrap pre-built arrays as a dataset."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])


def make_dataset(
    name: str,
    train: bool = True,
    num_samples: int = 512,
    image_size: Optional[int] = None,
    num_classes: Optional[int] = None,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Build a synthetic stand-in for a paper dataset by name.

    ``image_size``/``num_classes`` overrides support the scaled-down
    benchmark configurations.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        ) from None
    spec = spec.scaled(image_size=image_size, num_classes=num_classes)
    return SyntheticImageDataset(spec, num_samples=num_samples, train=train, seed=seed)
