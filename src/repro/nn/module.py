"""Module/Parameter system mirroring the familiar torch.nn contract."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor.

    Parameters register themselves on the owning :class:`Module` via
    ``__setattr__`` and always require gradients.
    """

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural network modules.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Parameters and submodules assigned as attributes are discovered
    automatically, so ``named_parameters`` / ``state_dict`` work without
    explicit registration.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            self._modules[name] = value
            object.__setattr__(self, name, value)
        else:
            # Re-assignment of a registered name keeps registries in sync.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved in ``state_dict``."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of record."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (prefix + name, parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, parameter in self.named_parameters():
            yield parameter

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self._buffers.items():
            yield (prefix + name, value)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        parameters = dict(self.named_parameters())
        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buffer_name in module._buffers:
                full = f"{module_name}.{buffer_name}" if module_name else buffer_name
                buffer_owners[full] = (module, buffer_name)
        for name, value in state.items():
            if name in parameters:
                target = parameters[name]
                if target.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{target.data.shape} vs {value.shape}"
                    )
                target.data = np.array(value, dtype=np.float32, copy=True)
                # Restoring weights bypasses the optimizer's write-through
                # hook; tell any attached sparse state its CSR value
                # cache is stale (duck-typed to avoid an import cycle).
                masked_state = getattr(target, "_masked_state", None)
                if masked_state is not None:
                    masked_state.mark_values_dirty()
            elif name in buffer_owners:
                module, buffer_name = buffer_owners[name]
                module.update_buffer(buffer_name, np.array(value, copy=True))
            else:
                raise KeyError(f"unexpected key in state dict: {name!r}")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if self._modules else self.__class__.__name__ + "()"

    def count_parameters(self, trainable_only: bool = True) -> int:
        """Total number of (trainable) parameter elements."""
        return sum(p.size for p in self.parameters() if p.requires_grad or not trainable_only)
