"""Weight initialization schemes."""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

_DEFAULT_RNG = np.random.default_rng(0)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (F, C, kh, kw)."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        f, c, kh, kw = shape
        receptive = kh * kw
        return c * receptive, f * receptive
    raise ValueError(f"unsupported parameter shape {shape}")


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init (default for conv/linear weights)."""
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming normal init."""
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return (gen.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_bias(shape: Tuple[int, ...], weight_shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Torch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, _ = _fan_in_out(weight_shape)
    bound = 1.0 / math.sqrt(fan_in)
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def set_default_seed(seed: int) -> None:
    """Reseed the module-level default initializer RNG."""
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)
