"""Weight initialization schemes."""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

_DEFAULT_RNG = np.random.default_rng(0)

#: While > 0, every initializer returns zeros instead of drawing from
#: its RNG.  Package loading (:mod:`repro.sparse.packaging`) builds the
#: model geometry under :func:`skip_init` because every parameter is
#: immediately overwritten (or bypassed entirely by a CSR pattern), so
#: the RNG draws would be pure cold-start cost.
_SKIP_DEPTH = 0


@contextmanager
def skip_init():
    """Make all initializers return zeros inside the ``with`` block.

    Nestable and cheap: ``np.zeros`` is a calloc, so building a model
    under ``skip_init()`` costs allocation only.  Only use it when every
    parameter will be overwritten afterwards — the RNG streams are *not*
    advanced, so a model built under it is not comparable to a normally
    initialized one.
    """
    global _SKIP_DEPTH
    _SKIP_DEPTH += 1
    try:
        yield
    finally:
        _SKIP_DEPTH -= 1


def _skipping() -> bool:
    return _SKIP_DEPTH > 0


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (F, C, kh, kw)."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        f, c, kh, kw = shape
        receptive = kh * kw
        return c * receptive, f * receptive
    raise ValueError(f"unsupported parameter shape {shape}")


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init (default for conv/linear weights)."""
    if _skipping():
        return np.zeros(shape, dtype=np.float32)
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming normal init."""
    if _skipping():
        return np.zeros(shape, dtype=np.float32)
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return (gen.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    if _skipping():
        return np.zeros(shape, dtype=np.float32)
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_bias(shape: Tuple[int, ...], weight_shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Torch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    if _skipping():
        return np.zeros(shape, dtype=np.float32)
    gen = rng if rng is not None else _DEFAULT_RNG
    fan_in, _ = _fan_in_out(weight_shape)
    bound = 1.0 / math.sqrt(fan_in)
    return gen.uniform(-bound, bound, size=shape).astype(np.float32)


def set_default_seed(seed: int) -> None:
    """Reseed the module-level default initializer RNG."""
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)
