"""Neural network module system (Module, Parameter, standard layers)."""

from . import init
from .module import Module, Parameter
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "Flatten",
    "ReLU",
    "Dropout",
    "Identity",
    "Sequential",
    "init",
]
