"""Standard neural network layers on top of the autograd engine."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, avg_pool2d, masked_conv2d, masked_linear, max_pool2d
from . import init
from .module import Module, Parameter


def _layer_dispatch_info(layer) -> Optional[dict]:
    """Shared ``dispatch_info`` body for masked layers (duck-typed on
    ``weight_state`` to avoid importing the sparse engine here)."""
    state = layer.weight_state
    if state is None or state.manager is None:
        return None
    return state.manager.explain_dispatch(state.name)


def _keep_index(keep, bound: int, what: str) -> np.ndarray:
    """Validate a keep-index array for :meth:`compact` (sorted, in range)."""
    index = np.asarray(keep, dtype=np.int64).reshape(-1)
    if index.size == 0:
        raise ValueError(f"compact() must keep at least one {what}")
    if index.min() < 0 or index.max() >= bound:
        raise ValueError(f"{what} keep indices out of range [0, {bound})")
    if np.any(np.diff(index) <= 0):
        raise ValueError(f"{what} keep indices must be sorted and unique")
    return index


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape ``(out, in)``.

    When a :class:`~repro.sparse.engine.SparsityManager` binds layers,
    ``weight_state`` carries the layer's mask/CSR state and the forward
    pass dispatches dense-vs-CSR by measured density.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            self.bias = Parameter(init.uniform_bias((out_features,), self.weight.shape, rng=rng))
        else:
            self.bias = None
        self.weight_state = None

    def forward(self, x: Tensor) -> Tensor:
        return masked_linear(x, self.weight, self.bias, self.weight_state)

    def dispatch_info(self) -> Optional[dict]:
        """Dispatch decision for this layer, or ``None`` when unbound.

        Delegates to the owning manager's ``explain_dispatch`` so users
        can ask a layer directly which route (dense vs CSR) its next
        forward will take and why.
        """
        return _layer_dispatch_info(self)

    def compact(self, keep_out=None, keep_in=None) -> "Linear":
        """Physically shrink the layer to the kept output/input features.

        Structured pruning zeroes whole weight rows but still pays dense
        FLOPs for them; compaction slices the pruned rows (``keep_out``)
        and the input columns fed by upstream pruned units (``keep_in``)
        out of the weight matrix, so the layer runs a genuinely smaller
        kernel.  Any bound ``weight_state`` is detached — the caller
        (see :func:`repro.sparse.structured.compact_model`) rebinds a
        fresh manager over the sliced shapes.
        """
        weight = self.weight.data
        if keep_out is not None:
            keep_out = _keep_index(keep_out, self.out_features, "output feature")
            weight = weight[keep_out]
            if self.bias is not None:
                self.bias = Parameter(self.bias.data[keep_out].copy())
            self.out_features = int(keep_out.size)
        if keep_in is not None:
            keep_in = _keep_index(keep_in, self.in_features, "input feature")
            weight = weight[:, keep_in]
            self.in_features = int(keep_in.size)
        self.weight = Parameter(np.ascontiguousarray(weight))
        self.weight_state = None
        return self

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution with filters of shape ``(F, C, kh, kw)``.

    Like :class:`Linear`, a bound ``weight_state`` routes the forward
    pass through the CSR fast path at low measured density.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng=rng))
        if bias:
            self.bias = Parameter(init.uniform_bias((out_channels,), shape, rng=rng))
        else:
            self.bias = None
        self.weight_state = None

    def forward(self, x: Tensor) -> Tensor:
        return masked_conv2d(
            x, self.weight, self.bias,
            stride=self.stride, padding=self.padding, state=self.weight_state,
        )

    def dispatch_info(self) -> Optional[dict]:
        """Dispatch decision for this layer, or ``None`` when unbound."""
        return _layer_dispatch_info(self)

    def compact(self, keep_out=None, keep_in=None) -> "Conv2d":
        """Physically remove pruned filters (``keep_out``) and the input
        channels of upstream pruned filters (``keep_in``)."""
        weight = self.weight.data
        if keep_out is not None:
            keep_out = _keep_index(keep_out, self.out_channels, "filter")
            weight = weight[keep_out]
            if self.bias is not None:
                self.bias = Parameter(self.bias.data[keep_out].copy())
            self.out_channels = int(keep_out.size)
        if keep_in is not None:
            keep_in = _keep_index(keep_in, self.in_channels, "input channel")
            weight = weight[:, keep_in]
            self.in_channels = int(keep_in.size)
        self.weight = Parameter(np.ascontiguousarray(weight))
        self.weight_state = None
        return self

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, pad={self.padding})"
        )


class BatchNorm2d(Module):
    """Batch normalization over ``(N, C, H, W)`` inputs.

    Keeps running statistics for evaluation mode, like torch.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError("BatchNorm2d expects (N, C, H, W) input")
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            with_momentum = self.momentum
            new_mean = (1 - with_momentum) * self.running_mean + with_momentum * mean.data.reshape(-1)
            new_var = (1 - with_momentum) * self.running_var + with_momentum * var.data.reshape(-1)
            self.update_buffer("running_mean", new_mean.astype(np.float32))
            self.update_buffer("running_var", new_var.astype(np.float32))
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        scale = self.weight.reshape(1, self.num_features, 1, 1)
        shift = self.bias.reshape(1, self.num_features, 1, 1)
        return x_hat * scale + shift

    def compact(self, keep) -> "BatchNorm2d":
        """Shrink to the kept channels (affine params + running stats)."""
        _compact_batchnorm(self, keep)
        return self

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


def _compact_batchnorm(layer, keep) -> None:
    keep = _keep_index(keep, layer.num_features, "channel")
    layer.weight = Parameter(layer.weight.data[keep].copy())
    layer.bias = Parameter(layer.bias.data[keep].copy())
    layer.update_buffer("running_mean", layer.running_mean[keep].copy())
    layer.update_buffer("running_var", layer.running_var[keep].copy())
    layer.num_features = int(keep.size)


class BatchNorm1d(Module):
    """Batch normalization over ``(N, F)`` inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, F) input")
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            m = self.momentum
            self.update_buffer(
                "running_mean",
                ((1 - m) * self.running_mean + m * mean.data.reshape(-1)).astype(np.float32),
            )
            self.update_buffer(
                "running_var",
                ((1 - m) * self.running_var + m * var.data.reshape(-1)).astype(np.float32),
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        return x_hat * self.weight.reshape(1, -1) + self.bias.reshape(1, -1)

    def compact(self, keep) -> "BatchNorm1d":
        """Shrink to the kept features (affine params + running stats)."""
        _compact_batchnorm(self, keep)
        return self


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel={self.kernel_size})"


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel={self.kernel_size})"


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class Identity(Module):
    """Pass-through layer; handy for optional residual shortcuts."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)
