"""Optimizers and learning-rate schedulers."""

from .lr_scheduler import ConstantLR, CosineAnnealingLR, LRScheduler, MultiStepLR, StepLR
from .sgd import SGD, Adam, Optimizer

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "CosineAnnealingLR",
    "StepLR",
    "MultiStepLR",
    "ConstantLR",
]
