"""Learning-rate schedulers (the paper uses cosine annealing, [24])."""

from __future__ import annotations

import math
from typing import List, Sequence

from .sgd import Optimizer


class LRScheduler:
    """Base scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.last_epoch += 1
        lr = self.get_lr(self.last_epoch)
        self.optimizer.lr = lr
        return lr


class CosineAnnealingLR(LRScheduler):
    """SGDR-style cosine decay from the base LR to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )


class StepLR(LRScheduler):
    """Decay the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Decay the LR by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones: List[int] = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for milestone in self.milestones if epoch >= milestone)
        return self.base_lr * self.gamma ** passed


class ConstantLR(LRScheduler):
    """Keeps the base LR (useful as a default)."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr
