"""Optimizers.

SGD with momentum and weight decay is the paper's optimizer (momentum
0.9, weight decay 5e-4).  Both optimizers expose
:meth:`reset_state_entries` so drop-and-grow methods can zero stale
momentum at newly grown connections, and :meth:`state_for` so momentum
can serve as a growth criterion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    @staticmethod
    def _write_through(parameter: Parameter) -> None:
        """Keep the parameter's CSR value cache coherent after an update.

        Masked parameters carry a back-reference to their sparse state
        (see :class:`~repro.sparse.engine.MaskedParameter`); fusing the
        value refresh into the step is what lets the forward pass skip
        the per-call re-gather.  Unmasked parameters cost one dict miss.
        """
        state = getattr(parameter, "_masked_state", None)
        if state is not None:
            state.write_through()

    def state_for(self, parameter: Parameter) -> Optional[np.ndarray]:
        """Primary state buffer (momentum) for ``parameter``, if any."""
        return None

    def reset_state_entries(self, parameter: Parameter, flat_indices: np.ndarray) -> None:
        """Zero optimizer state at the given flat positions of ``parameter``."""

    # ------------------------------------------------------------------
    # Checkpointing.  Buffers are keyed by the parameter's position in
    # the (deterministically ordered) parameter list, so state written
    # by one process restores exactly in a freshly built twin — the
    # contract behind the sweep queue's crash-resume.
    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Checkpointable state buffers, keyed ``<kind>.<param index>``."""
        return {}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore buffers saved by :meth:`state_arrays`."""

    def state_meta(self) -> Dict[str, float]:
        """JSON-able scalar state (step counters and the like)."""
        return {}

    def load_state_meta(self, meta: Dict[str, float]) -> None:
        """Restore scalars saved by :meth:`state_meta`."""


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    Matches torch semantics: ``v = mu*v + g + wd*w``; ``w -= lr*v``.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocity[id(parameter)] = velocity
                if self.nesterov:
                    gradient = gradient + self.momentum * velocity
                else:
                    gradient = velocity
            parameter.data -= self.lr * gradient
            self._write_through(parameter)

    def state_for(self, parameter: Parameter) -> Optional[np.ndarray]:
        return self._velocity.get(id(parameter))

    def reset_state_entries(self, parameter: Parameter, flat_indices: np.ndarray) -> None:
        velocity = self._velocity.get(id(parameter))
        if velocity is not None and flat_indices.size:
            velocity.reshape(-1)[flat_indices] = 0.0

    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {}
        for index, parameter in enumerate(self.parameters):
            velocity = self._velocity.get(id(parameter))
            if velocity is not None:
                arrays[f"velocity.{index}"] = velocity
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self._velocity.clear()
        for index, parameter in enumerate(self.parameters):
            velocity = arrays.get(f"velocity.{index}")
            if velocity is not None:
                self._velocity[id(parameter)] = np.array(velocity, copy=True)


class Adam(Optimizer):
    """Adam optimizer (extension; the paper uses SGD)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        if not 0.0 <= self.beta1 < 1.0 or not 0.0 <= self.beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1 - self.beta1) * gradient
            v = self.beta2 * v + (1 - self.beta2) * gradient ** 2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self._write_through(parameter)

    def state_for(self, parameter: Parameter) -> Optional[np.ndarray]:
        return self._m.get(id(parameter))

    def reset_state_entries(self, parameter: Parameter, flat_indices: np.ndarray) -> None:
        for store in (self._m, self._v):
            buffer = store.get(id(parameter))
            if buffer is not None and flat_indices.size:
                buffer.reshape(-1)[flat_indices] = 0.0

    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {}
        for index, parameter in enumerate(self.parameters):
            key = id(parameter)
            if key in self._m:
                arrays[f"m.{index}"] = self._m[key]
                arrays[f"v.{index}"] = self._v[key]
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self._m.clear()
        self._v.clear()
        for index, parameter in enumerate(self.parameters):
            m = arrays.get(f"m.{index}")
            if m is not None:
                self._m[id(parameter)] = np.array(m, copy=True)
                self._v[id(parameter)] = np.array(arrays[f"v.{index}"], copy=True)

    def state_meta(self) -> Dict[str, float]:
        return {"t": self._t}

    def load_state_meta(self, meta: Dict[str, float]) -> None:
        self._t = int(meta.get("t", self._t))
