"""NDSNN reproduction: Neurogenesis Dynamics-inspired SNN training
acceleration (Huang et al., DAC 2023).

Subpackages
-----------
``repro.tensor``
    Numpy autograd engine (the compute substrate).
``repro.nn``
    Module system and standard layers.
``repro.snn``
    LIF neurons, surrogate gradients, encoders and the spiking model zoo.
``repro.sparse``
    NDSNN (the paper's contribution) plus LTH / SET / RigL / ADMM / dense
    baselines, ERK distribution and the Eq. 4/5 schedules.
``repro.optim``
    SGD/Adam and LR schedulers.
``repro.data``
    Synthetic stand-ins for CIFAR-10/100 and Tiny-ImageNet.
``repro.train``
    Training loop, spike-rate tracking, cost and memory models.
``repro.experiments``
    Shared configs/runners used by the table/figure benchmarks.
``repro.serve``
    Async batched inference serving over trained checkpoints.
"""

from . import data, experiments, nn, optim, serve, snn, sparse, tensor, train

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "snn",
    "sparse",
    "optim",
    "data",
    "train",
    "experiments",
    "serve",
    "__version__",
]
