"""NDSNN reproduction: Neurogenesis Dynamics-inspired SNN training
acceleration (Huang et al., DAC 2023).

Subpackages
-----------
``repro.tensor``
    Numpy autograd engine (the compute substrate).
``repro.nn``
    Module system and standard layers.
``repro.snn``
    LIF neurons, surrogate gradients, encoders and the spiking model zoo.
``repro.sparse``
    NDSNN (the paper's contribution) plus LTH / SET / RigL / ADMM / dense
    baselines, ERK distribution and the Eq. 4/5 schedules.
``repro.optim``
    SGD/Adam and LR schedulers.
``repro.data``
    Synthetic stand-ins for CIFAR-10/100 and Tiny-ImageNet.
``repro.train``
    Training loop, spike-rate tracking, cost and memory models.
``repro.experiments``
    Shared configs/runners used by the table/figure benchmarks.
``repro.serve``
    Async batched inference serving over trained checkpoints.
"""

import importlib

__version__ = "1.0.0"

#: Subpackages are imported lazily (PEP 562) so deployment paths stay
#: lean: serving a packed ``.reprom`` artifact must not drag
#: ``repro.train`` / ``repro.experiments`` into the process (pinned by
#: a subprocess test).  ``import repro; repro.train`` still works — the
#: first attribute access triggers the import.
_SUBPACKAGES = (
    "data",
    "experiments",
    "nn",
    "optim",
    "serve",
    "snn",
    "sparse",
    "stream",
    "tensor",
    "train",
)

__all__ = list(_SUBPACKAGES) + ["__version__"]


def __getattr__(name):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBPACKAGES))
