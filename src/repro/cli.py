"""Command-line interface: run reproduction experiments from the shell.

Examples
--------
Run one cell of Table I and save the result::

    python -m repro run --dataset cifar10 --model vgg16 --method ndsnn \
        --sparsity 0.95 --epochs 10 --out result.json

Sweep several methods across worker processes::

    python -m repro sweep --method ndsnn --method set --method rigl \
        --jobs 4 --epochs 2 --out sweep.json

Shard the same sweep through a durable spool directory (any number of
extra workers — on this host or on others sharing the filesystem — can
join with ``repro worker``)::

    python -m repro sweep --backend queue --spool /shared/spool --jobs 2
    python -m repro worker --spool /shared/spool          # second terminal
    python -m repro sweep-status --spool /shared/spool    # progress

List the available models/methods/datasets::

    python -m repro list

Print the analytic memory footprint of a model::

    python -m repro memory --model vgg16 --sparsity 0.99 --timesteps 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .data import DATASET_SPECS
from .experiments import run_method, run_sweep, scaled_config, sweep_configs
from .experiments.queue import (
    DEFAULT_BACKOFF_SECONDS,
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
    QueueWorker,
)
from .experiments.tables import format_table
from .snn.models import MODEL_REGISTRY, build_model
from .sparse.engine import EXECUTION_MODES
from .train import model_footprint
from .utils import save_json

METHOD_CHOICES = ("dense", "ndsnn", "set", "rigl", "lth", "admm", "gmp", "snip")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NDSNN (DAC 2023) reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_workload_arguments(
        parser: argparse.ArgumentParser, include_out: bool = True
    ) -> None:
        parser.add_argument("--dataset", default="cifar10", choices=sorted(DATASET_SPECS))
        parser.add_argument("--model", default="vgg16", choices=sorted(MODEL_REGISTRY))
        parser.add_argument("--sparsity", type=float, default=0.9)
        parser.add_argument("--initial-sparsity", type=float, default=0.6)
        parser.add_argument("--epochs", type=int, default=10)
        parser.add_argument("--timesteps", type=int, default=2)
        parser.add_argument("--batch-size", type=int, default=16)
        parser.add_argument("--lr", type=float, default=0.1)
        parser.add_argument("--width-mult", type=float, default=0.125)
        parser.add_argument("--image-size", type=int, default=16)
        parser.add_argument("--train-samples", type=int, default=224)
        parser.add_argument("--test-samples", type=int, default=64)
        parser.add_argument("--update-frequency", type=int, default=8)
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument(
            "--encoder", default="direct", choices=("direct", "poisson", "latency"),
            help="input coding (poisson's RNG is seeded and checkpointed)",
        )
        parser.add_argument(
            "--execution", default="auto", choices=EXECUTION_MODES,
            help="masked-layer kernels: dense, auto (CSR below the "
                 "measured per-shape density cutoff; the default) or csr",
        )
        if include_out:
            parser.add_argument("--out", default=None, help="write the outcome as JSON")

    run = commands.add_parser("run", help="train one method on one workload")
    add_workload_arguments(run)
    run.add_argument("--method", default="ndsnn", choices=METHOD_CHOICES)
    run.add_argument("--quiet", action="store_true")
    run.add_argument(
        "--checkpoint", default=None,
        help="save the resumable training state here every epoch; the "
             "same path feeds `repro serve` / `repro infer` afterwards",
    )

    def add_serving_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--checkpoint", default=None,
            help="checkpoint written by `repro run --checkpoint` (or any "
                 "save_checkpoint/save_training_state file)",
        )
        parser.add_argument(
            "--package", default=None,
            help="packed .reprom artifact from `repro export` — mmap'd "
                 "zero-copy, no training stack (exactly one of "
                 "--checkpoint / --package)",
        )
        parser.add_argument(
            "--precision", default=None, choices=("f32", "f16", "int8"),
            help="--package runtime: f32 (default; pre-scale quantized "
                 "values into frozen float32 buffers at load) or the "
                 "artifact's stored f16/int8 (dequantize row-blocks on "
                 "the fly, minimal memory)",
        )
        parser.add_argument("--method", default="ndsnn", choices=METHOD_CHOICES + ("structured",))
        parser.add_argument(
            "--compact", action="store_true",
            help="physically remove structurally-pruned filters at load "
                 "time (smaller dense kernels; see compact_model)",
        )
        parser.add_argument(
            "--max-batch", type=int, default=8,
            help="canonical serving batch size (requests are padded to "
                 "it so results never depend on batching)",
        )

    infer = commands.add_parser(
        "infer", help="evaluate a checkpoint through the serving engine"
    )
    add_workload_arguments(infer)
    add_serving_arguments(infer)

    serve = commands.add_parser(
        "serve", help="run the batched inference server under synthetic load"
    )
    add_workload_arguments(serve)
    add_serving_arguments(serve)
    serve.add_argument("--workers", type=int, default=2, help="worker thread count")
    serve.add_argument(
        "--max-latency-ms", type=float, default=5.0,
        help="micro-batch flush deadline (oldest request age)",
    )
    serve.add_argument(
        "--requests", type=int, default=64,
        help="synthetic closed-loop requests to issue",
    )
    serve.add_argument(
        "--clients", type=int, default=4,
        help="concurrent closed-loop client threads",
    )

    export = commands.add_parser(
        "export",
        help="pack a checkpoint into a single-file .reprom serving artifact",
    )
    add_workload_arguments(export, include_out=False)
    export.add_argument(
        "--checkpoint", required=True,
        help="checkpoint to pack (save_checkpoint or save_training_state)",
    )
    export.add_argument(
        "--out", required=True,
        help="output .reprom path (delta+varint indices, quantized "
             "values, f16 biases, mmap-ready layout)",
    )
    export.add_argument(
        "--precision", default="int8", choices=("f32", "f16", "int8"),
        help="stored value precision (default int8: per-row absmax "
             "calibration, ~4x smaller than the f32 checkpoint at 90%% "
             "sparsity)",
    )
    export.add_argument(
        "--method", default="ndsnn", choices=METHOD_CHOICES + ("structured",)
    )

    def add_queue_arguments(parser: argparse.ArgumentParser, spool_required: bool) -> None:
        # Defaults are applied in _queue_params, not here, so the sweep
        # command can tell "flag passed" from "default" and reject queue
        # flags when the backend is local.
        parser.add_argument(
            "--spool", required=spool_required, default=None,
            help="spool directory of the durable job queue (shared "
                 "across hosts for multi-host sweeps)",
        )
        parser.add_argument(
            "--lease-seconds", type=float, default=None,
            help="heartbeat lease: a claimed job whose worker stops "
                 f"renewing for this long is re-queued "
                 f"(default {DEFAULT_LEASE_SECONDS:g})",
        )
        parser.add_argument(
            "--max-attempts", type=int, default=None,
            help=f"attempts per job before it lands in failed/ "
                 f"(default {DEFAULT_MAX_ATTEMPTS})",
        )
        parser.add_argument(
            "--backoff-seconds", type=float, default=None,
            help="base of the exponential retry backoff "
                 f"(default {DEFAULT_BACKOFF_SECONDS:g})",
        )

    sweep = commands.add_parser(
        "sweep", help="train several methods, optionally across processes"
    )
    add_workload_arguments(sweep)
    sweep.add_argument(
        "--method", action="append", choices=METHOD_CHOICES, default=None,
        help="method to include (repeatable; default: the full zoo)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (1 = sequential)",
    )
    sweep.add_argument(
        "--backend", default="local", choices=("local", "queue"),
        help="local = in-process pool; queue = durable spool-directory "
             "job queue (crash-safe, joinable from other hosts)",
    )
    add_queue_arguments(sweep, spool_required=False)

    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
        return parsed

    worker = commands.add_parser(
        "worker", help="drain jobs from a sweep spool until it is empty"
    )
    add_queue_arguments(worker, spool_required=True)
    worker.add_argument(
        "--max-jobs", type=positive_int, default=None,
        help="stop after processing this many jobs",
    )
    worker.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this many seconds without claiming a job "
             "(a worker on a still-empty spool waits for the sweep to "
             "submit; without this flag it waits indefinitely)",
    )
    worker.add_argument(
        "--checkpoint-every", type=positive_int, default=1,
        help="epochs between resumable checkpoints",
    )

    status = commands.add_parser(
        "sweep-status", help="inspect a sweep spool (also reaps expired leases)"
    )
    add_queue_arguments(status, spool_required=True)
    status.add_argument(
        "--jobs-detail", action="store_true", dest="jobs_detail",
        help="print one line per job, not just the census",
    )

    stream = commands.add_parser(
        "stream", help="event-driven streaming inference over a telemetry feed"
    )
    stream.add_argument(
        "--source", default="telemetry", choices=("telemetry",),
        help="event source (synthetic sensor telemetry)",
    )
    stream.add_argument("--streams", type=int, default=4, help="simulated devices")
    stream.add_argument("--channels", type=int, default=16, help="sensor channels per event")
    stream.add_argument("--events", type=int, default=256, help="events per device")
    stream.add_argument("--rate-hz", type=float, default=100.0, help="mean arrival rate")
    stream.add_argument("--window", type=int, default=8, help="events per readout window")
    stream.add_argument(
        "--stride", type=int, default=None,
        help="events between readouts (default: window, i.e. tumbling)",
    )
    stream.add_argument(
        "--encoder", default="direct", choices=("direct", "rate", "latency"),
        help="online encoder applied per event",
    )
    stream.add_argument("--hidden", type=int, default=32, help="hidden layer width")
    stream.add_argument("--classes", type=int, default=4, help="readout classes")
    stream.add_argument("--sparsity", type=float, default=0.9, help="mask sparsity")
    stream.add_argument(
        "--ttl", type=float, default=None,
        help="stale-state TTL in event-time seconds (default: no TTL)",
    )
    stream.add_argument(
        "--reset-policy", default="reset", choices=("reset", "carry"),
        help="what to do with a stale stream's state",
    )
    stream.add_argument(
        "--adapt", action="store_true",
        help="thaw the masks and run online drop/grow adaptation",
    )
    stream.add_argument(
        "--adapt-every", type=int, default=4,
        help="windows between adaptation rounds (with --adapt)",
    )
    stream.add_argument(
        "--fault", action="append", default=None, metavar="SPEC",
        help="stream fault spec, repeatable (e.g. channel_dropout:fraction=0.5,p=0.2; "
             "stall:duration=1.0,p=0.05; reconnect:gap=2.0,drop=3,p=0.02)",
    )
    stream.add_argument(
        "--workers", type=int, default=1,
        help=">1 serves the feed through the sharded StreamServer",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--out", default=None, help="write the outcome as JSON")

    commands.add_parser("list", help="list datasets, models and methods")

    memory = commands.add_parser("memory", help="Section III-D footprint of a model")
    memory.add_argument("--model", default="vgg16", choices=sorted(MODEL_REGISTRY))
    memory.add_argument("--sparsity", type=float, default=0.9)
    memory.add_argument("--timesteps", type=int, default=5)
    memory.add_argument("--width-mult", type=float, default=1.0)
    memory.add_argument("--image-size", type=int, default=32)
    return parser


def _config_from_args(args: argparse.Namespace, method: str):
    return scaled_config(
        args.dataset,
        args.model,
        method,
        args.sparsity,
        initial_sparsity=args.initial_sparsity,
        epochs=args.epochs,
        timesteps=args.timesteps,
        batch_size=args.batch_size,
        learning_rate=args.lr,
        width_mult=args.width_mult,
        image_size=args.image_size,
        train_samples=args.train_samples,
        test_samples=args.test_samples,
        update_frequency=args.update_frequency,
        seed=args.seed,
        encoder=args.encoder,
        execution=args.execution,
    )


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args, args.method)
    outcome = run_method(
        config,
        verbose=not args.quiet,
        checkpoint_path=args.checkpoint,
    )
    summary = {
        "dataset": args.dataset,
        "model": args.model,
        "method": args.method,
        "target_sparsity": args.sparsity,
        "final_sparsity": outcome.final_sparsity,
        "final_accuracy": outcome.final_accuracy,
        "best_accuracy": outcome.best_accuracy,
        "epochs_trained": len(outcome.history),
        "history": [stats.as_dict() for stats in outcome.history],
    }
    print(
        format_table(
            ["dataset", "model", "method", "sparsity", "test_acc"],
            [(args.dataset, args.model, args.method,
              f"{outcome.final_sparsity:.3f}", outcome.final_accuracy)],
        )
    )
    if args.out:
        save_json(args.out, summary)
        print(f"wrote {args.out}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    methods = args.method or list(METHOD_CHOICES)
    base = _config_from_args(args, methods[0])
    configs = sweep_configs(base, methods)
    if args.backend == "queue":
        outcomes = run_sweep(
            configs,
            jobs=args.jobs,
            backend="queue",
            spool=args.spool,
            **_queue_params(args),
        )
    else:
        stray = [
            flag
            for flag, value in (
                ("--spool", args.spool),
                ("--lease-seconds", args.lease_seconds),
                ("--max-attempts", args.max_attempts),
                ("--backoff-seconds", args.backoff_seconds),
            )
            if value is not None
        ]
        if stray:
            print(
                f"error: {', '.join(stray)} require(s) --backend queue "
                "(the local backend has no spool, leases or retries)",
                file=sys.stderr,
            )
            return 2
        outcomes = run_sweep(configs, jobs=args.jobs)
    rows = [
        (
            config.dataset,
            config.model,
            config.method,
            f"{outcome.final_sparsity:.3f}",
            outcome.final_accuracy,
        )
        for config, outcome in zip(configs, outcomes)
    ]
    print(
        format_table(
            ["dataset", "model", "method", "sparsity", "test_acc"],
            rows,
            title=f"sweep over {len(configs)} runs (jobs={args.jobs})",
        )
    )
    if args.out:
        payload = [
            {
                "dataset": config.dataset,
                "model": config.model,
                "method": config.method,
                "target_sparsity": config.sparsity,
                "final_sparsity": outcome.final_sparsity,
                "final_accuracy": outcome.final_accuracy,
                "best_accuracy": outcome.best_accuracy,
                "epochs_trained": len(outcome.history),
            }
            for config, outcome in zip(configs, outcomes)
        ]
        save_json(args.out, payload)
        print(f"wrote {args.out}")
    return 0


def _queue_params(args: argparse.Namespace) -> dict:
    """Queue knobs from flags, with defaults for the ones not passed."""
    return {
        "lease_seconds": (
            DEFAULT_LEASE_SECONDS if args.lease_seconds is None else args.lease_seconds
        ),
        "max_attempts": (
            DEFAULT_MAX_ATTEMPTS if args.max_attempts is None else args.max_attempts
        ),
        "backoff_seconds": (
            DEFAULT_BACKOFF_SECONDS if args.backoff_seconds is None else args.backoff_seconds
        ),
    }


def _queue_from_args(args: argparse.Namespace) -> JobQueue:
    return JobQueue(args.spool, **_queue_params(args))


def _command_worker(args: argparse.Namespace) -> int:
    queue = _queue_from_args(args)
    worker = QueueWorker(queue, checkpoint_every=args.checkpoint_every)
    completed = worker.run(max_jobs=args.max_jobs, idle_timeout=args.idle_timeout)
    tail = f", {worker.jobs_failed} failed" if worker.jobs_failed else ""
    print(f"worker {worker.worker_id}: completed {completed} job(s){tail}")
    failures = queue.failures()
    if failures:
        for job_id, error in sorted(failures.items()):
            print(f"FAILED {job_id}: {error}")
        return 1
    return 0


def _command_sweep_status(args: argparse.Namespace) -> int:
    queue = _queue_from_args(args)
    reaped = queue.reap_expired()
    status = queue.status()
    print(
        format_table(
            ["jobs", "pending", "claimed", "requeue", "results", "done", "failed"],
            [(status.jobs, status.pending, status.claimed, status.requeue,
              status.results, status.done, status.failed)],
            title=f"spool {args.spool}",
        )
    )
    if reaped:
        print(f"reaped {len(reaped)} expired lease(s): {', '.join(reaped)}")
    if args.jobs_detail:
        rows = []
        for job_id, entry in queue.job_states().items():
            note = entry.get("error") or entry.get("worker") or ""
            if entry.get("lease_remaining") is not None:
                note += f" (lease {entry['lease_remaining']:.1f}s)"
            rows.append((job_id, entry["state"], entry.get("attempt", 1), note))
        print(format_table(["job", "state", "attempt", "detail"], rows))
    return 0 if status.failed == 0 else 1


def _serving_registry(args: argparse.Namespace):
    """Registry with the checkpoint/package from ``args`` under name 'model'."""
    from .serve import ModelRegistry

    if (args.checkpoint is None) == (args.package is None):
        raise SystemExit(
            "error: pass exactly one of --checkpoint or --package"
        )
    config = _config_from_args(args, args.method)
    registry = ModelRegistry()
    if args.package is not None:
        registry.load_package(
            "model",
            args.package,
            precision=args.precision,
            max_batch=args.max_batch,
        )
    else:
        registry.load_checkpoint(
            "model",
            config,
            args.checkpoint,
            execution=args.execution,
            compact=args.compact,
            max_batch=args.max_batch,
        )
    return registry, config


def _command_export(args: argparse.Namespace) -> int:
    from .experiments.runner import build_experiment_model
    from .sparse.engine import SparsityManager
    from .sparse.packaging import spec_from_config, write_package
    from .train.checkpoint import load_inference_state

    config = _config_from_args(args, args.method)
    model = build_experiment_model(config)
    state = load_inference_state(args.checkpoint, model)
    manager = SparsityManager(model)
    if state.masks:
        manager.load_masks(state.masks)
    if state.calibration is not None:
        manager.calibration = state.calibration
    manager.set_execution(args.execution)
    model.eval()
    summary = write_package(
        args.out, model, manager, spec_from_config(config),
        precision=args.precision,
    )
    storage = summary["storage"]
    print(
        format_table(
            ["precision", "layers", "dense_entries", "file_bytes",
             "layer_bytes", "dense_bytes"],
            [(summary["precision"], summary["layers"],
              summary["dense_entries"], summary["file_bytes"],
              storage["layer_bytes"], storage["dense_bytes"])],
            title=f"packed {args.out}",
        )
    )
    return 0


def _command_infer(args: argparse.Namespace) -> int:
    from .experiments.runner import build_loaders

    registry, config = _serving_registry(args)
    session = registry.session("model")
    _, test_loader, _ = build_loaders(config)
    correct = 0
    seen = 0
    for images, labels in test_loader:
        predictions = session.predict(images.data).argmax(axis=1)
        correct += int((predictions == labels).sum())
        seen += len(labels)
    accuracy = correct / seen if seen else 0.0
    dispatch = session.dispatch_report()
    storage = session.storage_report()
    print(
        format_table(
            ["layer", "shape", "density", "route", "cutoff_source"],
            [(d["layer"], "x".join(map(str, d["shape"])), d["density"],
              d["route"], d["cutoff_source"]) for d in dispatch],
            title=f"serving dispatch (execution={args.execution}, "
                  f"compact={args.compact})",
        )
    )
    print(f"test accuracy: {accuracy:.4f} over {seen} samples")
    if args.out:
        save_json(args.out, {
            "accuracy": accuracy,
            "samples": seen,
            "compact": args.compact,
            "execution": args.execution,
            "dispatch": dispatch,
            "storage": storage,
        })
        print(f"wrote {args.out}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import threading
    import time as _time

    import numpy as np

    from .experiments.runner import build_loaders
    from .serve import InferenceServer

    registry, config = _serving_registry(args)
    _, test_loader, _ = build_loaders(config)
    samples = np.concatenate([images.data for images, _ in test_loader], axis=0)
    if args.requests < 1 or args.clients < 1:
        print("error: --requests and --clients must be >= 1", file=sys.stderr)
        return 2
    server = InferenceServer(
        lambda: registry.session("model"),
        workers=args.workers,
        max_batch=args.max_batch,
        max_latency_s=args.max_latency_ms / 1000.0,
    )
    latencies: List[float] = []
    latency_lock = threading.Lock()

    def client(count: int) -> None:
        rng = np.random.default_rng()
        for _ in range(count):
            sample = samples[rng.integers(0, len(samples))]
            begin = _time.perf_counter()
            server.predict(sample, timeout=60.0)
            elapsed = _time.perf_counter() - begin
            with latency_lock:
                latencies.append(elapsed)

    per_client = [args.requests // args.clients] * args.clients
    per_client[0] += args.requests % args.clients
    server.start()
    wall_begin = _time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(count,)) for count in per_client
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = _time.perf_counter() - wall_begin
    server.stop()
    stats = server.stats()
    ordered = np.sort(latencies)
    p50 = float(np.percentile(ordered, 50)) * 1000.0
    p99 = float(np.percentile(ordered, 99)) * 1000.0
    throughput = len(latencies) / wall if wall > 0 else 0.0
    print(
        format_table(
            ["requests", "workers", "max_batch", "p50_ms", "p99_ms",
             "req_per_s", "batches", "restarts"],
            [(len(latencies), args.workers, args.max_batch, f"{p50:.2f}",
              f"{p99:.2f}", f"{throughput:.1f}", stats["batches"],
              stats["restarts"])],
            title=f"serving load (execution={args.execution}, "
                  f"compact={args.compact})",
        )
    )
    if args.out:
        save_json(args.out, {
            "requests": len(latencies),
            "workers": args.workers,
            "max_batch": args.max_batch,
            "clients": args.clients,
            "p50_ms": p50,
            "p99_ms": p99,
            "throughput_rps": throughput,
            "stats": stats,
            "compact": args.compact,
            "execution": args.execution,
        })
        print(f"wrote {args.out}")
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    print("datasets:", ", ".join(sorted(DATASET_SPECS)))
    print("models  :", ", ".join(sorted(MODEL_REGISTRY)))
    print("methods :", ", ".join(METHOD_CHOICES))
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    import time as _time

    import numpy as np

    from .data.telemetry import make_telemetry_stream
    from .snn.models import SpikingMLP
    from .sparse.engine import SparsityManager
    from .stream import AdaptiveStreamSession, StreamFaultInjector, StreamSession

    def build_session():
        model = SpikingMLP(
            in_features=args.channels,
            num_classes=args.classes,
            hidden=(args.hidden,),
            timesteps=max(1, args.window),
            rng=np.random.default_rng(args.seed + 2),
        )
        manager = SparsityManager(model, rng=np.random.default_rng(args.seed + 3))
        manager.init_random(
            {name: 1.0 - args.sparsity for name in manager.states}
        )
        common = dict(
            window=args.window,
            stride=args.stride,
            encoder=args.encoder,
            ttl=args.ttl,
            reset_policy=args.reset_policy,
            seed=args.seed,
        )
        if args.adapt:
            return AdaptiveStreamSession(
                model, manager, adapt_every=args.adapt_every, **common
            )
        manager.freeze()
        return StreamSession(model, manager=manager, **common)

    feed = make_telemetry_stream(
        num_streams=args.streams,
        num_channels=args.channels,
        num_events=args.events,
        rate_hz=args.rate_hz,
        seed=args.seed,
    )
    events = iter(feed)
    injector = None
    if args.fault:
        injector = StreamFaultInjector(args.fault, seed=args.seed)
        events = injector.apply(events)

    started = _time.perf_counter()
    if args.workers > 1:
        from .serve import StreamServer

        with StreamServer(build_session, workers=args.workers) as server:
            results = server.process_stream(events)
            stats = server.stats()
        per_stream = stats["streams"]
        restarts = stats["restarts"]
    else:
        session = build_session()
        results = [r for event in events if (r := session.process(event)) is not None]
        per_stream = session.stats()
        restarts = 0
    elapsed = _time.perf_counter() - started

    total_events = sum(s["events"] for s in per_stream.values())
    summary = {
        "events": total_events,
        "windows": len(results),
        "events_per_sec": total_events / elapsed if elapsed > 0 else 0.0,
        "elapsed_s": elapsed,
        "workers": args.workers,
        "restarts": restarts,
        "stale_resets": sum(s["stale_resets"] for s in per_stream.values()),
        "fault_counts": injector.counts if injector is not None else {},
        "streams": per_stream,
    }
    if args.adapt and args.workers <= 1:
        summary["adaptation_rounds"] = session.adaptation_rounds
    rows = [
        (sid, s["events"], s["windows"], s["stale_resets"])
        for sid, s in sorted(per_stream.items())
    ]
    print(
        format_table(
            ["stream", "events", "windows", "stale_resets"],
            rows,
            title=(
                f"streamed {total_events} events -> {len(results)} windows "
                f"({summary['events_per_sec']:.0f} ev/s, window={args.window}, "
                f"encoder={args.encoder})"
            ),
        )
    )
    if args.out:
        save_json(args.out, summary)
        print(f"wrote {args.out}")
    return 0


def _command_memory(args: argparse.Namespace) -> int:
    model = build_model(
        args.model,
        num_classes=10,
        image_size=args.image_size,
        width_mult=args.width_mult,
    )
    report = model_footprint(model, sparsity=args.sparsity, timesteps=args.timesteps)
    print(
        format_table(
            ["model", "weights", "sparsity", "timesteps", "train_MB"],
            [(
                args.model,
                f"{report.total_weights:,}",
                f"{report.sparsity:.0%}",
                report.timesteps,
                report.megabytes,
            )],
            title="Section III-D training memory footprint",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "infer": _command_infer,
        "serve": _command_serve,
        "export": _command_export,
        "sweep": _command_sweep,
        "worker": _command_worker,
        "sweep-status": _command_sweep_status,
        "stream": _command_stream,
        "list": _command_list,
        "memory": _command_memory,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
