"""Command-line interface: run reproduction experiments from the shell.

Examples
--------
Run one cell of Table I and save the result::

    python -m repro run --dataset cifar10 --model vgg16 --method ndsnn \
        --sparsity 0.95 --epochs 10 --out result.json

List the available models/methods/datasets::

    python -m repro list

Print the analytic memory footprint of a model::

    python -m repro memory --model vgg16 --sparsity 0.99 --timesteps 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .data import DATASET_SPECS
from .experiments import run_method, scaled_config
from .experiments.tables import format_table
from .snn.models import MODEL_REGISTRY, build_model
from .train import model_footprint
from .utils import save_json

METHOD_CHOICES = ("dense", "ndsnn", "set", "rigl", "lth", "admm", "gmp", "snip")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NDSNN (DAC 2023) reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="train one method on one workload")
    run.add_argument("--dataset", default="cifar10", choices=sorted(DATASET_SPECS))
    run.add_argument("--model", default="vgg16", choices=sorted(MODEL_REGISTRY))
    run.add_argument("--method", default="ndsnn", choices=METHOD_CHOICES)
    run.add_argument("--sparsity", type=float, default=0.9)
    run.add_argument("--initial-sparsity", type=float, default=0.6)
    run.add_argument("--epochs", type=int, default=10)
    run.add_argument("--timesteps", type=int, default=2)
    run.add_argument("--batch-size", type=int, default=16)
    run.add_argument("--lr", type=float, default=0.1)
    run.add_argument("--width-mult", type=float, default=0.125)
    run.add_argument("--image-size", type=int, default=16)
    run.add_argument("--train-samples", type=int, default=224)
    run.add_argument("--test-samples", type=int, default=64)
    run.add_argument("--update-frequency", type=int, default=8)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", default=None, help="write the outcome as JSON")
    run.add_argument("--quiet", action="store_true")

    commands.add_parser("list", help="list datasets, models and methods")

    memory = commands.add_parser("memory", help="Section III-D footprint of a model")
    memory.add_argument("--model", default="vgg16", choices=sorted(MODEL_REGISTRY))
    memory.add_argument("--sparsity", type=float, default=0.9)
    memory.add_argument("--timesteps", type=int, default=5)
    memory.add_argument("--width-mult", type=float, default=1.0)
    memory.add_argument("--image-size", type=int, default=32)
    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = scaled_config(
        args.dataset,
        args.model,
        args.method,
        args.sparsity,
        initial_sparsity=args.initial_sparsity,
        epochs=args.epochs,
        timesteps=args.timesteps,
        batch_size=args.batch_size,
        learning_rate=args.lr,
        width_mult=args.width_mult,
        image_size=args.image_size,
        train_samples=args.train_samples,
        test_samples=args.test_samples,
        update_frequency=args.update_frequency,
        seed=args.seed,
    )
    outcome = run_method(config, verbose=not args.quiet)
    summary = {
        "dataset": args.dataset,
        "model": args.model,
        "method": args.method,
        "target_sparsity": args.sparsity,
        "final_sparsity": outcome.final_sparsity,
        "final_accuracy": outcome.final_accuracy,
        "best_accuracy": outcome.best_accuracy,
        "epochs_trained": len(outcome.history),
        "history": [stats.as_dict() for stats in outcome.history],
    }
    print(
        format_table(
            ["dataset", "model", "method", "sparsity", "test_acc"],
            [(args.dataset, args.model, args.method,
              f"{outcome.final_sparsity:.3f}", outcome.final_accuracy)],
        )
    )
    if args.out:
        save_json(args.out, summary)
        print(f"wrote {args.out}")
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    print("datasets:", ", ".join(sorted(DATASET_SPECS)))
    print("models  :", ", ".join(sorted(MODEL_REGISTRY)))
    print("methods :", ", ".join(METHOD_CHOICES))
    return 0


def _command_memory(args: argparse.Namespace) -> int:
    model = build_model(
        args.model,
        num_classes=10,
        image_size=args.image_size,
        width_mult=args.width_mult,
    )
    report = model_footprint(model, sparsity=args.sparsity, timesteps=args.timesteps)
    print(
        format_table(
            ["model", "weights", "sparsity", "timesteps", "train_MB"],
            [(
                args.model,
                f"{report.total_weights:,}",
                f"{report.sparsity:.0%}",
                report.timesteps,
                report.megabytes,
            )],
            title="Section III-D training memory footprint",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "list": _command_list,
        "memory": _command_memory,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
