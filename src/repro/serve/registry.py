"""Model registry and inference sessions over trained checkpoints."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..nn.module import Module
from ..sparse.engine import SparsityManager
from ..sparse.inference import serving_storage_report
from ..sparse.structured import compact_model
from ..tensor import Tensor, no_grad

# NOTE: repro.train / repro.experiments are imported lazily inside
# load_checkpoint only.  Package-backed serving (load_package) must work
# without the training stack in the process — the no-training-import
# test pins this.

DEFAULT_MAX_BATCH = 8


class InferenceSession:
    """One inference-frozen model instance owned by one worker thread.

    Spiking forwards are stateful (neuron membranes reset per call), so
    sessions must never be shared between threads — the registry hands
    each worker its own.  On construction the model goes to eval mode
    and the manager freezes: masks applied, CSR values gathered into
    read-only buffers, dense gradient tracking off, and every mutation
    path raising instead of corrupting the serving weights.

    Every forward runs at one canonical batch shape (``max_batch``,
    short batches zero-padded and the padding rows discarded): BLAS
    kernels pick different reduction orders for different GEMM shapes,
    so without the padding a request's result would depend on how the
    batcher happened to group it.  With it, batched and sequential
    inference are bit-identical — the concurrency tests pin this down.
    """

    def __init__(
        self,
        model: Module,
        manager: SparsityManager,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.model = model
        self.manager = manager
        self.max_batch = int(max_batch)
        model.eval()
        manager.freeze()

    def predict(self, inputs) -> np.ndarray:
        """Model outputs for a batch of inputs (any row count)."""
        data = np.asarray(inputs, dtype=np.float32)
        if data.ndim < 2:
            raise ValueError("predict expects a batch (rows are samples)")
        rows = data.shape[0]
        outputs = []
        with no_grad():
            for start in range(0, rows, self.max_batch):
                chunk = data[start:start + self.max_batch]
                n = chunk.shape[0]
                if n < self.max_batch:
                    pad = np.zeros(
                        (self.max_batch - n,) + chunk.shape[1:], dtype=np.float32
                    )
                    chunk = np.concatenate([chunk, pad], axis=0)
                out = self.model(Tensor(chunk)).data
                outputs.append(out[:n])
        return np.concatenate(outputs, axis=0)

    def predict_one(self, sample) -> np.ndarray:
        """Model output for a single sample."""
        return self.predict(np.asarray(sample)[None])[0]

    def dispatch_report(self) -> List[Dict]:
        """Per-layer dense-vs-CSR routing decisions."""
        return [
            self.manager.explain_dispatch(name) for name in self.manager.states
        ]

    def storage_report(self) -> Dict:
        """Per-layer CSR-vs-dense storage accounting (§III-D, live)."""
        return serving_storage_report(self.manager)


#: A factory returns a fresh ``(model, manager)`` pair per call, so
#: every worker session owns independent membrane state.
SessionFactory = Callable[[], Tuple[Module, SparsityManager]]


class ModelRegistry:
    """Named model factories that mint per-worker inference sessions."""

    def __init__(self) -> None:
        self._factories: Dict[str, SessionFactory] = {}
        self._max_batch: Dict[str, int] = {}

    def register(
        self,
        name: str,
        factory: SessionFactory,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> "ModelRegistry":
        """Register a factory under ``name`` (later wins, like a dict)."""
        self._factories[name] = factory
        self._max_batch[name] = int(max_batch)
        return self

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def session(self, name: str, max_batch: Optional[int] = None) -> InferenceSession:
        """Build a fresh session for one worker thread."""
        if name not in self._factories:
            raise KeyError(
                f"no model {name!r} registered (have: {self.names()})"
            )
        model, manager = self._factories[name]()
        batch = max_batch if max_batch is not None else self._max_batch[name]
        return InferenceSession(model, manager, max_batch=batch)

    def load_checkpoint(
        self,
        name: str,
        config,
        path: Union[str, Path],
        execution: str = "auto",
        compact: bool = False,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> "ModelRegistry":
        """Register a checkpoint-backed model.

        The factory rebuilds the model geometry from ``config``
        (:func:`~repro.experiments.runner.build_experiment_model`),
        restores weights/masks/calibration from the checkpoint (both
        ``save_checkpoint`` and ``save_training_state`` formats), and
        under ``compact=True`` slices structurally-pruned filters out
        (:func:`~repro.sparse.structured.compact_model`) so serving
        runs genuinely smaller dense kernels while unstructured-sparse
        layers keep the CSR route.
        """
        from ..experiments.runner import build_experiment_model
        from ..train.checkpoint import load_inference_state

        path = Path(path)

        def factory() -> Tuple[Module, SparsityManager]:
            model = build_experiment_model(config)
            state = load_inference_state(path, model)
            manager = SparsityManager(model)
            if state.masks:
                manager.load_masks(state.masks)
            if state.calibration is not None:
                manager.calibration = state.calibration
            manager.set_execution(execution)
            if compact:
                manager = compact_model(model, manager)
            return model, manager

        return self.register(name, factory, max_batch=max_batch)

    def load_package(
        self,
        name: str,
        path: Union[str, Path],
        precision: Optional[str] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> "ModelRegistry":
        """Register a packed ``.reprom`` artifact (mmap, zero-copy).

        The file is mapped **once**; every session the factory mints
        rebuilds only the model geometry (under
        :func:`~repro.nn.init.skip_init`) and aliases the shared map
        for its CSR values and f16 biases — N workers cost one copy of
        the weights.  ``precision`` picks the runtime: the default
        ``"f32"`` pre-scales quantized values into frozen float32 CSR
        buffers at load (full engine dispatch speed); ``"f16"`` /
        ``"int8"`` keep the mapped buffers at stored precision and
        dequantize row-blocks on the fly.  No training-stack module is
        imported on this path.
        """
        from ..sparse.packaging import PackedModel, build_packed_runtime

        package = PackedModel(path)

        def factory():
            return build_packed_runtime(package, precision=precision)

        return self.register(name, factory, max_batch=max_batch)
