"""Supervised streaming workers beside the micro-batch server.

A :class:`StreamServer` serves an event feed instead of request
batches.  Ordering matters here — a stream's events must hit its
session in arrival order, and per-stream neuron state must survive
worker crashes — so the layout differs from
:class:`~repro.serve.server.InferenceServer` in two ways:

* **Sharding**: streams are routed to ``workers`` shards by a stable
  hash of ``stream_id``; each shard is one strict-FIFO
  :class:`~repro.serve.batcher.MicroBatcher` (``max_batch=1``) drained
  by one worker thread, so per-stream order is preserved while
  distinct streams still run in parallel.
* **Server-owned sessions**: each shard's
  :class:`~repro.stream.session.StreamSession` belongs to the server,
  not the worker thread.  ``StreamSession.process`` is transactional,
  so when a worker dies mid-event the committed per-stream state is
  intact; the supervisor restarts the thread, the event retries from
  the queue front, and no membrane state or readout is lost.

The crash/retry/supervision policy (attempt budgets, requeue-to-front,
restart budget with abort) is the same contract as the batch server.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import Future
from typing import Callable, Dict, Iterable, List, Optional

from ..stream.events import StreamEvent
from ..stream.session import StreamResult, StreamSession
from .batcher import InferenceRequest, MicroBatcher


class StreamServer:
    """Sharded, supervised streaming inference over per-stream state.

    Parameters
    ----------
    session_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.stream.session.StreamSession`; called once per
        shard (sessions are stateful and single-threaded).
    workers:
        Shard/worker count.
    max_attempts:
        Dispatch attempts per event before its future fails.
    max_restarts:
        Worker restarts before the server gives up.
    """

    def __init__(
        self,
        session_factory: Callable[[], StreamSession],
        workers: int = 2,
        max_attempts: int = 3,
        max_restarts: int = 8,
        supervise_interval_s: float = 0.01,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._session_factory = session_factory
        self.workers = int(workers)
        self.max_attempts = int(max_attempts)
        self.max_restarts = int(max_restarts)
        self.supervise_interval_s = float(supervise_interval_s)
        # max_batch=1 + requeue-to-front == strict per-shard FIFO even
        # across crashes; max_latency_s=0 dispatches immediately.
        self._shards = [
            MicroBatcher(max_batch=1, max_latency_s=0.0) for _ in range(self.workers)
        ]
        self._sessions: List[Optional[StreamSession]] = [None] * self.workers
        self._threads: List[Optional[threading.Thread]] = [None] * self.workers
        self._supervisor: Optional[threading.Thread] = None
        self._running = False
        self._aborted = False
        self._stats_lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._windows = 0
        self._restarts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StreamServer":
        if self._running:
            return self
        self._running = True
        for index in range(self.workers):
            # Sessions outlive worker threads on purpose (see module
            # docstring); build them up front so a factory error fails
            # fast instead of inside a worker.
            if self._sessions[index] is None:
                self._sessions[index] = self._session_factory()
            self._threads[index] = self._spawn(index)
        self._supervisor = threading.Thread(
            target=self._supervise, name="stream-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if not self._running:
            return
        self._running = False
        leftovers: List[InferenceRequest] = []
        for shard in self._shards:
            if not drain:
                leftovers.extend(shard.drain_pending())
            shard.close()
        for thread in self._threads:
            if thread is not None:
                thread.join(timeout=timeout)
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        for shard in self._shards:
            leftovers.extend(shard.drain_pending())
        self._fail_requests(leftovers, RuntimeError("stream server stopped"))

    def __enter__(self) -> "StreamServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def shard_of(self, stream_id: str) -> int:
        """Stable shard index for a stream (process-independent)."""
        return zlib.crc32(stream_id.encode("utf-8")) % self.workers

    def submit(self, event: StreamEvent) -> Future:
        """Enqueue one event; the future resolves to the session's
        :class:`StreamResult` (or ``None`` when no window closed)."""
        return self._shards[self.shard_of(event.stream_id)].submit(event)

    def process_stream(
        self, events: Iterable[StreamEvent], timeout: Optional[float] = None
    ) -> List[StreamResult]:
        """Feed a whole event iterable; blocking, returns the readouts."""
        futures = [self.submit(event) for event in events]
        results = [future.result(timeout=timeout) for future in futures]
        return [result for result in results if result is not None]

    def flush(self) -> List[StreamResult]:
        """Emit partial windows from every shard (idle feed only)."""
        results: List[StreamResult] = []
        for session in self._sessions:
            if session is not None:
                results.extend(session.flush())
        return results

    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            stats = {
                "submitted": sum(shard.submitted for shard in self._shards),
                "completed": self._completed,
                "failed": self._failed,
                "windows": self._windows,
                "restarts": self._restarts,
                "workers_alive": sum(
                    1 for t in self._threads if t is not None and t.is_alive()
                ),
            }
        stats["streams"] = {
            sid: per_stream
            for session in self._sessions
            if session is not None
            for sid, per_stream in session.stats().items()
        }
        return stats

    # ------------------------------------------------------------------
    # Worker / supervisor loops
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._worker_loop,
            args=(index,),
            name=f"stream-worker-{index}",
            daemon=True,
        )
        thread.start()
        return thread

    def _worker_loop(self, index: int) -> None:
        shard = self._shards[index]
        session = self._sessions[index]
        while True:
            batch = shard.next_batch()
            if batch is None:
                return
            request = batch[0]
            try:
                result = session.process(request.payload)
            except BaseException as error:
                self._handle_crash(shard, batch, error)
                raise
            request.future.set_result(result)
            with self._stats_lock:
                self._completed += 1
                if result is not None:
                    self._windows += 1

    def _handle_crash(
        self,
        shard: MicroBatcher,
        batch: List[InferenceRequest],
        error: BaseException,
    ) -> None:
        retry = [r for r in batch if r.attempts < self.max_attempts]
        exhausted = [r for r in batch if r.attempts >= self.max_attempts]
        if retry:
            shard.requeue(retry)
        self._fail_requests(exhausted, error)

    def _fail_requests(
        self, requests: List[InferenceRequest], error: BaseException
    ) -> None:
        for request in requests:
            if not request.future.done():
                request.future.set_exception(error)
        if requests:
            with self._stats_lock:
                self._failed += len(requests)

    def _supervise(self) -> None:
        while self._running:
            for index, thread in enumerate(self._threads):
                if not self._running:
                    return
                if thread is not None and thread.is_alive():
                    continue
                if self._restarts >= self.max_restarts:
                    self._abort()
                    return
                with self._stats_lock:
                    self._restarts += 1
                self._threads[index] = self._spawn(index)
            time.sleep(self.supervise_interval_s)

    def _abort(self) -> None:
        self._aborted = True
        leftovers: List[InferenceRequest] = []
        for shard in self._shards:
            shard.close()
            leftovers.extend(shard.drain_pending())
        self._fail_requests(
            leftovers,
            RuntimeError(
                f"stream server gave up after {self.max_restarts} worker restarts"
            ),
        )
