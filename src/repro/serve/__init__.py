"""Inference serving: registry, micro-batching, supervised workers.

The training side of the repository produces checkpoints; this package
turns them into a service.  Three pieces compose:

* :class:`~repro.serve.registry.ModelRegistry` — named model factories;
  each worker gets its *own* :class:`~repro.serve.registry.InferenceSession`
  (spiking forwards are stateful through the neuron membranes, so
  sessions are never shared across threads).  Sessions run the engine
  inference-frozen (read-only CSR buffers, no dense grads) and pad
  every forward to one canonical batch shape so results are
  bit-identical no matter how requests were grouped.
* :class:`~repro.serve.batcher.MicroBatcher` — request queue with a
  max-batch / max-latency flush policy.
* :class:`~repro.serve.server.InferenceServer` — proactor-style worker
  pool: a supervisor restarts crashed workers and their in-flight
  requests are re-dispatched, not dropped.
"""

from .batcher import InferenceRequest, MicroBatcher
from .registry import InferenceSession, ModelRegistry
from .server import InferenceServer
from .stream_worker import StreamServer

__all__ = [
    "InferenceRequest",
    "MicroBatcher",
    "InferenceSession",
    "ModelRegistry",
    "InferenceServer",
    "StreamServer",
]
