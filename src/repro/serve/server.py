"""Supervised multi-worker inference server (proactor-style).

Workers pull micro-batches from a shared :class:`MicroBatcher` and run
them through their own :class:`InferenceSession`.  A supervisor thread
restarts any worker that dies; the dying worker hands its in-flight
requests back to the queue front first, so a crash costs a retry, not
an answer.  Requests whose retry budget is exhausted fail with the
underlying error instead of retrying forever (a poison request must
not wedge the pool).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional

import numpy as np

from .batcher import InferenceRequest, MicroBatcher


class InferenceServer:
    """Worker pool over one model's sessions.

    Parameters
    ----------
    session_factory:
        Zero-argument callable returning a fresh session per worker
        (e.g. ``lambda: registry.session("mnist")``).  Sessions are
        per-thread because spiking forwards are stateful.
    workers:
        Worker thread count.
    max_batch / max_latency_s:
        Micro-batch flush policy (see :class:`MicroBatcher`).
    max_attempts:
        Dispatch attempts per request before its future fails.
    max_restarts:
        Total worker restarts before the server gives up and fails all
        queued work (guards against a factory that can never succeed).
    """

    def __init__(
        self,
        session_factory: Callable[[], object],
        workers: int = 2,
        max_batch: int = 8,
        max_latency_s: float = 0.005,
        max_attempts: int = 3,
        max_restarts: int = 8,
        supervise_interval_s: float = 0.01,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._session_factory = session_factory
        self.workers = int(workers)
        self.max_attempts = int(max_attempts)
        self.max_restarts = int(max_restarts)
        self.supervise_interval_s = float(supervise_interval_s)
        self.batcher = MicroBatcher(max_batch=max_batch, max_latency_s=max_latency_s)
        self._threads: List[threading.Thread] = []
        self._supervisor: Optional[threading.Thread] = None
        self._running = False
        self._aborted = False
        self._stats_lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._restarts = 0
        self._largest_batch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._running:
            return self
        self._running = True
        self._threads = [self._spawn(index) for index in range(self.workers)]
        self._supervisor = threading.Thread(
            target=self._supervise, name="infer-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut the pool down; ``drain=True`` answers queued work first."""
        if not self._running:
            return
        self._running = False
        leftovers: List[InferenceRequest] = []
        if not drain:
            leftovers = self.batcher.drain_pending()
        self.batcher.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        leftovers.extend(self.batcher.drain_pending())
        self._fail_requests(leftovers, RuntimeError("inference server stopped"))

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, sample) -> Future:
        """Enqueue one sample; the future resolves to its output row."""
        return self.batcher.submit(np.asarray(sample, dtype=np.float32))

    def predict(self, sample, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(sample).result(timeout=timeout)

    def stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "submitted": self.batcher.submitted,
                "completed": self._completed,
                "failed": self._failed,
                "batches": self._batches,
                "restarts": self._restarts,
                "largest_batch": self._largest_batch,
                "workers_alive": sum(
                    thread.is_alive() for thread in self._threads
                ),
            }

    # ------------------------------------------------------------------
    # Worker / supervisor loops
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._worker_loop, name=f"infer-worker-{index}", daemon=True
        )
        thread.start()
        return thread

    def _worker_loop(self) -> None:
        # A session-factory failure kills the worker before any batch is
        # taken; the supervisor replaces it and queued requests wait.
        session = self._session_factory()
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            try:
                inputs = np.stack([request.payload for request in batch])
                outputs = session.predict(inputs)
            except BaseException as error:
                self._handle_crash(batch, error)
                raise
            for request, output in zip(batch, outputs):
                request.future.set_result(output)
            with self._stats_lock:
                self._completed += len(batch)
                self._batches += 1
                self._largest_batch = max(self._largest_batch, len(batch))

    def _handle_crash(self, batch: List[InferenceRequest], error: BaseException) -> None:
        retry = [r for r in batch if r.attempts < self.max_attempts]
        exhausted = [r for r in batch if r.attempts >= self.max_attempts]
        if retry:
            self.batcher.requeue(retry)
        self._fail_requests(exhausted, error)

    def _fail_requests(self, requests: List[InferenceRequest], error: BaseException) -> None:
        for request in requests:
            if not request.future.done():
                request.future.set_exception(error)
        if requests:
            with self._stats_lock:
                self._failed += len(requests)

    def _supervise(self) -> None:
        while self._running:
            for index, thread in enumerate(self._threads):
                if not self._running:
                    return
                if thread.is_alive():
                    continue
                if self._restarts >= self.max_restarts:
                    self._abort()
                    return
                with self._stats_lock:
                    self._restarts += 1
                self._threads[index] = self._spawn(index)
            time.sleep(self.supervise_interval_s)

    def _abort(self) -> None:
        """Restart budget exhausted: fail everything still queued."""
        self._aborted = True
        self.batcher.close()
        self._fail_requests(
            self.batcher.drain_pending(),
            RuntimeError(
                f"inference server gave up after {self.max_restarts} "
                "worker restarts"
            ),
        )
