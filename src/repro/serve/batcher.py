"""Request micro-batching with a max-latency / max-batch flush policy."""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import List, Optional


class InferenceRequest:
    """One queued inference request: payload, result future, retry count."""

    __slots__ = ("payload", "future", "enqueued_at", "attempts")

    def __init__(self, payload) -> None:
        self.payload = payload
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()
        self.attempts = 0


class MicroBatcher:
    """Thread-safe request queue that releases micro-batches to workers.

    Flush policy: :meth:`next_batch` hands out up to ``max_batch``
    requests as soon as either the queue holds a full batch or the
    oldest queued request has waited ``max_latency_s`` — the standard
    throughput/latency trade of batched serving.  Crashed workers hand
    their in-flight requests back through :meth:`requeue`, which puts
    them at the *front* of the queue so retried work is never starved
    by new arrivals.
    """

    def __init__(self, max_batch: int = 8, max_latency_s: float = 0.005) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be >= 0")
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)
        self._pending: "deque[InferenceRequest]" = deque()
        self._condition = threading.Condition()
        self._closed = False
        self.submitted = 0

    @property
    def pending(self) -> int:
        with self._condition:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, payload) -> Future:
        """Enqueue one payload; returns the future carrying its result."""
        request = InferenceRequest(payload)
        with self._condition:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            self._pending.append(request)
            self.submitted += 1
            self._condition.notify_all()
        return request.future

    def requeue(self, requests: List[InferenceRequest]) -> None:
        """Put in-flight requests back at the front (crash recovery)."""
        with self._condition:
            for request in reversed(requests):
                self._pending.appendleft(request)
            self._condition.notify_all()

    def next_batch(self) -> Optional[List[InferenceRequest]]:
        """Block until a batch is due; ``None`` once closed and drained.

        Each returned request has had its ``attempts`` counter bumped,
        so retry accounting happens exactly once per dispatch.
        """
        with self._condition:
            while True:
                if self._pending:
                    if len(self._pending) >= self.max_batch or self._closed:
                        return self._take()
                    oldest_age = time.monotonic() - self._pending[0].enqueued_at
                    remaining = self.max_latency_s - oldest_age
                    if remaining <= 0:
                        return self._take()
                    self._condition.wait(remaining)
                elif self._closed:
                    return None
                else:
                    self._condition.wait()

    def _take(self) -> List[InferenceRequest]:
        batch = []
        while self._pending and len(batch) < self.max_batch:
            request = self._pending.popleft()
            request.attempts += 1
            batch.append(request)
        return batch

    def drain_pending(self) -> List[InferenceRequest]:
        """Remove and return every queued request (server shutdown)."""
        with self._condition:
            remaining = list(self._pending)
            self._pending.clear()
            self._condition.notify_all()
        return remaining

    def close(self) -> None:
        """Stop accepting submissions; queued work can still be taken."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
