"""Durable, filesystem-backed job queue for distributed sweeps.

``run_sweep`` fans a config grid across local processes; this module
scales the same pure-function worker across processes *and hosts* that
share a filesystem (NFS scratch, a cluster home directory, one laptop's
``/tmp``).  There is no broker and no daemon: every piece of queue
state is a file in a spool directory, and every state transition is an
atomic ``os.rename``::

    spool/
      jobs/<id>.json         immutable job spec (the ExperimentConfig)
      pending/<id>.json      claim token: attempt counter + not-before
      claimed/<id>.json      the same token, owned by exactly one worker
      requeue/<id>.json      transient: a token being reaped back
      leases/<id>.json       worker heartbeat with an expiry timestamp
      checkpoints/<id>.*     resumable training state, one per epoch
      results/<id>.json      one manifest entry per finished job
      done/<id>.json         retired tokens of completed jobs
      failed/<id>.json       tokens of jobs that exhausted max_attempts

**Claiming** is ``rename(pending/x -> claimed/x)``: on POSIX the rename
succeeds for exactly one claimant, so no locks are needed.  The winner
immediately writes a *lease* with an expiry ``lease_seconds`` in the
future and refreshes it at every epoch boundary while training.

**Crash recovery**: when a worker is SIGKILLed its lease stops being
renewed.  Any other process (a worker's claim loop, the scheduler, or
``repro sweep-status``) *reaps* expired claims — rename the token to
``requeue/`` (the mutual-exclusion step), bump its attempt counter,
stamp an exponential-backoff ``not_before``, and rename it back to
``pending/``.  Tokens that exhaust ``max_attempts`` land in ``failed/``.
Because the worker checkpointed the complete training state each epoch
(see :func:`~repro.train.checkpoint.save_training_state`), the next
claimant *resumes* from the last finished epoch rather than recomputing
— and since the checkpoint restores every RNG stream bit for bit, the
resumed result is identical to an uninterrupted run's.

**Exactly-one manifest**: results are written tmp-then-rename, and a
claimant that finds a result manifest already present finalises the job
instead of re-running it.  In the worst race (a stalled-but-alive
worker is reaped, then both it and the re-claimant finish) both writers
produce byte-identical manifests — every job is a deterministic
function of its config — so the manifest set always ends up with
exactly one entry per job, no duplicates and no holes.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..train import EpochStats
from ..train.hooks import TrainerCallback
from ..utils import load_json, save_json, save_json_atomic
from .config import ExperimentConfig

DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_SECONDS = 1.0

_STATE_DIRS = (
    "jobs",
    "pending",
    "claimed",
    "requeue",
    "leases",
    "checkpoints",
    "results",
    "done",
    "failed",
)


def job_id_for(config: ExperimentConfig, index: int) -> str:
    """Deterministic job id: grid position, method, and a config hash.

    The id is stable across resubmissions of the same grid, which is
    what makes ``submit`` idempotent (re-running an interrupted
    ``repro sweep`` against the same spool picks up where it left off).
    """
    payload = json.dumps(config.to_dict(), sort_keys=True).encode()
    digest = hashlib.sha1(payload).hexdigest()[:8]
    return f"job{index:04d}-{config.method}-{digest}"


def outcome_to_manifest(outcome) -> Dict:
    """Serialize an ExperimentOutcome as a result-manifest entry."""
    return {
        "config": outcome.config.to_dict(),
        "final_accuracy": float(outcome.final_accuracy),
        "best_accuracy": float(outcome.best_accuracy),
        "final_sparsity": float(outcome.final_sparsity),
        "history": [stats.as_dict() for stats in outcome.history],
    }


def manifest_to_outcome(manifest: Dict):
    """Rebuild an ExperimentOutcome from a result-manifest entry.

    JSON serializes floats with shortest-roundtrip ``repr``, so the
    rebuilt outcome compares equal, value for value, with the original.
    """
    from .runner import ExperimentOutcome

    return ExperimentOutcome(
        config=ExperimentConfig.from_dict(manifest["config"]),
        final_accuracy=manifest["final_accuracy"],
        best_accuracy=manifest["best_accuracy"],
        final_sparsity=manifest["final_sparsity"],
        history=[EpochStats(**entry) for entry in manifest.get("history", [])],
    )


@dataclass
class QueueStatus:
    """Spool-directory census (one ``scandir`` per state)."""

    jobs: int
    pending: int
    claimed: int
    requeue: int
    results: int
    done: int
    failed: int

    @property
    def in_flight(self) -> int:
        """Jobs not yet resolved: a drained queue has zero of these."""
        return self.pending + self.claimed + self.requeue


@dataclass
class ClaimedJob:
    """A job owned by one worker, from claim to completion."""

    queue: "JobQueue"
    job_id: str
    config: ExperimentConfig
    attempt: int
    worker_id: str

    @property
    def checkpoint_path(self) -> Path:
        """Spool-resident training-state path shared by all claimants."""
        return self.queue.spool / "checkpoints" / self.job_id

    def heartbeat(self) -> None:
        """Renew the lease; called at every epoch boundary."""
        self.queue._write_lease(self.job_id, self.worker_id)

    def complete(self, manifest: Dict) -> None:
        """Write the result manifest (atomically) and retire the job."""
        save_json_atomic(self.queue.result_path(self.job_id), manifest)
        self.queue._finalize(self.job_id)

    def fail(self, error: str) -> None:
        """Report a job error: requeue with backoff, or fail for good."""
        self.queue._handle_failure(self.job_id, self.attempt, error, self.worker_id)


class JobQueue:
    """The spool-directory queue: submit, claim, reap, inspect.

    Safe to instantiate from any number of processes on any number of
    hosts sharing the spool path; all coordination happens through
    atomic renames inside the directory.
    """

    def __init__(
        self,
        spool: Union[str, Path],
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.spool = Path(spool)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.backoff_seconds = float(backoff_seconds)
        for name in _STATE_DIRS:
            (self.spool / name).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _state_path(self, state: str, job_id: str) -> Path:
        return self.spool / state / f"{job_id}.json"

    def job_path(self, job_id: str) -> Path:
        return self._state_path("jobs", job_id)

    def result_path(self, job_id: str) -> Path:
        return self._state_path("results", job_id)

    def _job_ids(self, state: str) -> List[str]:
        directory = self.spool / state
        return sorted(
            entry.name[: -len(".json")]
            for entry in directory.glob("*.json")
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, configs: Iterable[ExperimentConfig]) -> List[str]:
        """Enqueue a config grid; returns job ids in input order.

        Idempotent: a job whose id already exists anywhere in the spool
        is left alone, and a job file orphaned by a crash mid-submit
        (spec written, token not) gets its pending token restored.
        """
        job_ids = []
        for index, config in enumerate(configs):
            job_id = job_id_for(config, index)
            job_ids.append(job_id)
            if not self.job_path(job_id).exists():
                save_json_atomic(
                    self.job_path(job_id),
                    {"job_id": job_id, "config": config.to_dict()},
                )
            if self._token_state(job_id) is None and not self.result_path(job_id).exists():
                self._publish_fresh_token(job_id)
        return job_ids

    def _publish_fresh_token(self, job_id: str) -> None:
        """Create ``pending/<id>.json`` at attempt 1 — but never clobber.

        Uses ``os.link`` (fails with EEXIST) rather than a rename, so a
        reaper racing us with a requeue->pending move of the *real*
        token (attempt counter, backoff stamp) always wins; a plain
        atomic write here could reset a crashing job's attempt count
        every time the sweep is re-submitted against a live spool.
        """
        pending = self._state_path("pending", job_id)
        tmp = pending.with_name(pending.name + f".new-{socket.gethostname()}-{os.getpid()}")
        save_json(tmp, {"job_id": job_id, "attempt": 1, "not_before": 0.0})
        try:
            os.link(tmp, pending)
        except FileExistsError:
            pass  # a real token got there first; keep it
        finally:
            try:
                os.remove(tmp)
            except OSError:
                pass  # don't mask the original error if save_json failed

    def _token_state(self, job_id: str) -> Optional[str]:
        for state in ("pending", "claimed", "requeue", "done", "failed"):
            if self._state_path(state, job_id).exists():
                return state
        return None

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def _lease_path(self, job_id: str) -> Path:
        return self._state_path("leases", job_id)

    def _write_lease(self, job_id: str, worker_id: str) -> None:
        now = time.time()
        save_json_atomic(
            self._lease_path(job_id),
            {
                "worker": worker_id,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "renewed_at": now,
                "expires_at": now + self.lease_seconds,
            },
        )

    def _read_lease(self, job_id: str) -> Optional[Dict]:
        try:
            return load_json(self._lease_path(job_id))
        except (OSError, json.JSONDecodeError):
            return None

    def _remove_lease(self, job_id: str) -> None:
        try:
            os.remove(self._lease_path(job_id))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------
    def claim(self, worker_id: str) -> Optional[ClaimedJob]:
        """Claim one runnable job, or return None if nothing is eligible.

        Reaps expired leases first, then walks the pending tokens in id
        order; the atomic rename into ``claimed/`` is the race arbiter.
        Tokens inside their retry-backoff window are skipped.
        """
        self.reap_expired()
        now = time.time()
        for job_id in self._job_ids("pending"):
            token_path = self._state_path("pending", job_id)
            try:
                token = load_json(token_path)
            except (OSError, json.JSONDecodeError):
                continue  # claimed (or rewritten) under our feet
            if float(token.get("not_before", 0.0)) > now:
                continue
            claimed_path = self._state_path("claimed", job_id)
            try:
                os.rename(token_path, claimed_path)
            except OSError:
                continue  # another worker won this token
            self._write_lease(job_id, worker_id)
            if self.result_path(job_id).exists():
                # A previous owner crashed after writing its manifest:
                # nothing left to compute, just retire the token.
                self._finalize(job_id)
                continue
            spec = load_json(self.job_path(job_id))
            return ClaimedJob(
                queue=self,
                job_id=job_id,
                config=ExperimentConfig.from_dict(spec["config"]),
                attempt=int(token.get("attempt", 1)),
                worker_id=worker_id,
            )
        return None

    # ------------------------------------------------------------------
    # Reaping / retry
    # ------------------------------------------------------------------
    def reap_expired(self) -> List[str]:
        """Requeue claimed jobs whose lease has lapsed.

        Runs opportunistically from every claim loop and from
        ``sweep-status``; safe (and useful) to call from any process.
        Returns the ids whose state changed.
        """
        now = time.time()
        reaped = []
        # A reaper killed between its two renames strands a token in
        # requeue/; nothing else scans that directory, so recover any
        # entry older than a lease straight back to pending/.  The
        # token may predate the dead reaper's attempt bump — losing one
        # bump grants a benign extra retry, never a lost job.
        # A failed token whose job nevertheless has a result (a stalled
        # original owner finished after a re-claimant burned the last
        # attempt, then died before _finalize) is retired here so every
        # job settles into exactly one terminal state.
        for job_id in self._job_ids("failed"):
            if self.result_path(job_id).exists():
                try:
                    os.replace(
                        self._state_path("failed", job_id),
                        self._state_path("done", job_id),
                    )
                except OSError:
                    continue
                self._cleanup_job_scratch(job_id)
                reaped.append(job_id)
        for job_id in self._job_ids("requeue"):
            hold_path = self._state_path("requeue", job_id)
            try:
                stat = hold_path.stat()
            except OSError:
                continue  # its owner finished moving it after all
            if now - max(stat.st_mtime, stat.st_ctime) < self.lease_seconds:
                continue
            try:
                os.rename(hold_path, self._state_path("pending", job_id))
            except OSError:
                continue
            reaped.append(job_id)
        for job_id in self._job_ids("claimed"):
            claimed_path = self._state_path("claimed", job_id)
            lease = self._read_lease(job_id)
            if lease is not None and float(lease.get("expires_at", 0.0)) > now:
                continue
            if lease is None:
                # Claimed but no lease yet: either the claimant died in
                # the claim/lease gap, or it is about to write one.
                # Only reap once the token is older than a full lease.
                # st_ctime reflects the claim rename itself (st_mtime
                # still carries the submit/requeue write time, which
                # may be arbitrarily old for a long-pending job).
                try:
                    stat = claimed_path.stat()
                except OSError:
                    continue
                if now - max(stat.st_mtime, stat.st_ctime) < self.lease_seconds:
                    continue
            hold_path = self._state_path("requeue", job_id)
            try:
                os.rename(claimed_path, hold_path)
            except OSError:
                continue  # another reaper won
            if self.result_path(job_id).exists():
                # The owner died after writing its manifest: just retire.
                os.replace(hold_path, self._state_path("done", job_id))
                self._finalize(job_id)
                reaped.append(job_id)
                continue
            try:
                token = load_json(hold_path)
            except (OSError, json.JSONDecodeError):
                token = {"job_id": job_id, "attempt": 1}
            attempt = int(token.get("attempt", 1))
            if attempt >= self.max_attempts:
                token["error"] = token.get("error") or (
                    f"lease expired after attempt {attempt}/{self.max_attempts}"
                )
                save_json_atomic(hold_path, token)
                os.replace(hold_path, self._state_path("failed", job_id))
            else:
                token["attempt"] = attempt + 1
                token["not_before"] = now + self.backoff_seconds * (2 ** (attempt - 1))
                save_json_atomic(hold_path, token)
                os.replace(hold_path, self._state_path("pending", job_id))
            self._remove_lease(job_id)
            reaped.append(job_id)
        return reaped

    def _handle_failure(self, job_id: str, attempt: int, error: str, worker_id: str) -> None:
        """A worker hit an exception: requeue with backoff or fail.

        Only the current lease holder may move the token — if our lease
        lapsed and the job was reaped and re-claimed, the claimed token
        now belongs to a healthy successor and must not be yanked.
        """
        lease = self._read_lease(job_id)
        if lease is None or lease.get("worker") != worker_id:
            return  # reaped; the token (and the job) moved on without us
        claimed_path = self._state_path("claimed", job_id)
        hold_path = self._state_path("requeue", job_id)
        try:
            os.rename(claimed_path, hold_path)
        except OSError:
            return
        token = {"job_id": job_id, "attempt": attempt, "error": error}
        if attempt >= self.max_attempts:
            save_json_atomic(hold_path, token)
            os.replace(hold_path, self._state_path("failed", job_id))
        else:
            token["attempt"] = attempt + 1
            token["not_before"] = time.time() + self.backoff_seconds * (2 ** (attempt - 1))
            save_json_atomic(hold_path, token)
            os.replace(hold_path, self._state_path("pending", job_id))
        self._remove_lease(job_id)

    def _finalize(self, job_id: str) -> None:
        """Retire a completed job's token and scratch state.

        A result manifest always wins over a ``failed/`` token: if a
        re-claimant burned the last attempt while a stalled original
        owner was still (successfully) finishing, the failed token is
        retired too, so every job ends in exactly one terminal state.
        """
        try:
            os.replace(
                self._state_path("claimed", job_id), self._state_path("done", job_id)
            )
        except OSError:
            pass  # token already moved (reaped or finalized elsewhere)
        try:
            os.replace(
                self._state_path("failed", job_id), self._state_path("done", job_id)
            )
        except OSError:
            pass
        self._cleanup_job_scratch(job_id)

    def _cleanup_job_scratch(self, job_id: str) -> None:
        """Drop a finished job's lease and resumable checkpoints."""
        self._remove_lease(job_id)
        for suffix in (".npz", ".json"):
            try:
                os.remove((self.spool / "checkpoints" / job_id).with_suffix(suffix))
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Inspection / collection
    # ------------------------------------------------------------------
    def status(self) -> QueueStatus:
        return QueueStatus(
            jobs=len(self._job_ids("jobs")),
            pending=len(self._job_ids("pending")),
            claimed=len(self._job_ids("claimed")),
            requeue=len(self._job_ids("requeue")),
            results=len(self._job_ids("results")),
            done=len(self._job_ids("done")),
            failed=len(self._job_ids("failed")),
        )

    def job_states(self) -> Dict[str, Dict]:
        """Per-job state/attempt/lease map, for ``repro sweep-status``."""
        states: Dict[str, Dict] = {}
        for job_id in self._job_ids("jobs"):
            token_state = self._token_state(job_id)
            state = token_state or "unknown"
            if self.result_path(job_id).exists():
                # A result manifest is authoritative: the job is done
                # even if a racing final-attempt failure left a token
                # (which _finalize retires on its next pass).
                state = "done"
            entry: Dict = {"state": state}
            if token_state in ("pending", "claimed", "requeue", "done", "failed"):
                try:
                    token = load_json(self._state_path(token_state, job_id))
                    entry["attempt"] = int(token.get("attempt", 1))
                    if token.get("error"):
                        entry["error"] = token["error"]
                except (OSError, json.JSONDecodeError):
                    pass
            lease = self._read_lease(job_id)
            if lease is not None and state == "claimed":
                entry["worker"] = lease.get("worker")
                entry["lease_remaining"] = float(lease.get("expires_at", 0.0)) - time.time()
            states[job_id] = entry
        return states

    def failures(self) -> Dict[str, str]:
        """Errors of jobs that exhausted their attempts."""
        errors = {}
        for job_id in self._job_ids("failed"):
            try:
                token = load_json(self._state_path("failed", job_id))
            except (OSError, json.JSONDecodeError):
                token = {}
            errors[job_id] = str(token.get("error", "unknown error"))
        return errors

    def results(self, job_ids: Optional[Sequence[str]] = None) -> Dict[str, Dict]:
        """Load result manifests (all of them, or a requested subset)."""
        job_ids = list(job_ids) if job_ids is not None else self._job_ids("results")
        manifests = {}
        for job_id in job_ids:
            path = self.result_path(job_id)
            if path.exists():
                manifests[job_id] = load_json(path)
        return manifests

    def wait(
        self,
        job_ids: Sequence[str],
        timeout: Optional[float] = None,
        poll_seconds: float = 0.1,
        on_poll: Optional[callable] = None,
    ) -> Dict[str, Dict]:
        """Block until every job has a result (or failed), reaping as we go.

        Raises ``RuntimeError`` listing per-job errors if any job lands
        in ``failed/``, and ``TimeoutError`` if ``timeout`` elapses.
        ``on_poll`` (if given) runs once per polling round — the
        scheduler uses it to respawn/replace dead worker processes.
        """
        deadline = None if timeout is None else time.time() + timeout
        remaining = set(job_ids)
        while True:
            self.reap_expired()
            if on_poll is not None:
                on_poll()
            remaining = {
                job_id for job_id in remaining if not self.result_path(job_id).exists()
            }
            failures = {j: e for j, e in self.failures().items() if j in remaining}
            if failures:
                detail = "; ".join(f"{j}: {e}" for j, e in sorted(failures.items()))
                raise RuntimeError(f"{len(failures)} sweep job(s) failed — {detail}")
            if not remaining:
                return self.results(job_ids)
            if deadline is not None and time.time() > deadline:
                raise TimeoutError(
                    f"timed out waiting for {len(remaining)} job(s): "
                    + ", ".join(sorted(remaining))
                )
            time.sleep(poll_seconds)


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
class _LeaseHeartbeat(TrainerCallback):
    """Renews a claimed job's lease while its trainer makes progress.

    Renewal is checked per optimizer step (and epoch end) but only
    written once a third of the lease has elapsed, so long epochs —
    the case where an epoch outlasts ``lease_seconds`` — never let the
    lease lapse under a healthy worker, while short jobs do not spam
    the spool with lease writes.
    """

    def __init__(self, job: ClaimedJob) -> None:
        self.job = job
        self.interval = job.queue.lease_seconds / 3.0
        self._last_renewal = time.time()

    def _renew_if_due(self) -> None:
        if time.time() - self._last_renewal >= self.interval:
            self.job.heartbeat()
            self._last_renewal = time.time()

    def on_step_end(self, trainer, iteration: int) -> None:
        self._renew_if_due()

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        self._renew_if_due()


class _CrashAfterEpochs(TrainerCallback):
    """Test-only fault injector: die as if SIGKILLed after N epoch ends.

    ``os._exit`` skips every Python-level cleanup (atexit, finally,
    flushing), which is exactly what a kill -9 mid-job looks like to
    the rest of the queue.  Fires *after* the checkpoint callback for
    the same epoch, mirroring a worker that died between epochs.
    """

    def __init__(self, epochs: int) -> None:
        self.remaining = int(epochs)

    def on_epoch_end(self, trainer, epoch: int, stats) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            os._exit(113)


class QueueWorker:
    """Claims jobs from a spool and runs them to a result manifest.

    Each job runs through :func:`~repro.experiments.runner.run_method`
    with epoch-granular checkpointing into the spool, so any later
    claimant resumes instead of recomputing, and with a lease heartbeat
    so healthy long jobs are never reaped.  Results are bit-identical
    to a plain in-process ``run_method`` of the same config.
    """

    def __init__(
        self,
        queue: JobQueue,
        worker_id: Optional[str] = None,
        checkpoint_every: int = 1,
        poll_seconds: float = 0.2,
        fault_epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> None:
        self.queue = queue
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.checkpoint_every = int(checkpoint_every)
        self.poll_seconds = float(poll_seconds)
        self.fault_epochs = fault_epochs
        self.verbose = verbose
        #: Jobs this worker finished with a result manifest.
        self.jobs_completed = 0
        #: Jobs this worker claimed but that raised (requeued/failed).
        self.jobs_failed = 0

    def run_one(self) -> Optional[str]:
        """Claim and run a single job; returns its id (None if idle).

        Success and failure are tallied on :attr:`jobs_completed` /
        :attr:`jobs_failed`; a failed job is reported to the queue
        (retry with backoff, or ``failed/`` after max attempts) and
        never kills the worker.
        """
        job = self.queue.claim(self.worker_id)
        if job is None:
            return None
        callbacks: List[TrainerCallback] = [_LeaseHeartbeat(job)]
        if self.fault_epochs is not None:
            callbacks.append(_CrashAfterEpochs(self.fault_epochs))
        from .runner import run_method

        try:
            outcome = run_method(
                job.config,
                verbose=self.verbose,
                checkpoint_path=job.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                resume=True,
                extra_callbacks=callbacks,
            )
        except Exception as exc:  # noqa: BLE001 — job errors must not kill the worker
            job.fail(f"{type(exc).__name__}: {exc}")
            self.jobs_failed += 1
            return job.job_id
        job.complete(outcome_to_manifest(outcome))
        self.jobs_completed += 1
        return job.job_id

    def run(self, max_jobs: Optional[int] = None, idle_timeout: Optional[float] = None) -> int:
        """Work the queue until it drains; returns jobs *completed*.

        ``max_jobs`` bounds how many claims this worker processes
        (successes and failures both count — each is one unit of work);
        the return value counts only successful completions, with
        failures tallied on :attr:`jobs_failed`.

        The worker keeps polling while *any* job is pending, claimed or
        mid-requeue (tokens inside their backoff window count), so it
        can pick up work reaped from a crashed peer.  A spool with no
        job specs at all counts as *idle*, not drained — workers may be
        started before the sweep submits — so ``idle_timeout`` is what
        bounds the wait on a spool that never fills.
        """
        completed_before = self.jobs_completed
        processed = 0
        idle_since: Optional[float] = None
        while True:
            if max_jobs is not None and processed >= max_jobs:
                break
            job_id = self.run_one()
            if job_id is not None:
                processed += 1
                idle_since = None
                continue
            status = self.queue.status()
            # Drained = every submitted job reached a terminal state.
            # (Checking in_flight == 0 instead would race submit()'s
            # spec-then-token write pair and exit a pre-started worker
            # just as the sweep begins enqueueing.)
            if status.jobs > 0 and status.results + status.failed >= status.jobs:
                break
            now = time.time()
            if idle_timeout is not None:
                idle_since = idle_since if idle_since is not None else now
                if now - idle_since >= idle_timeout:
                    break
            time.sleep(self.poll_seconds)
        return self.jobs_completed - completed_before


def _worker_main(
    spool: str,
    lease_seconds: float,
    max_attempts: int,
    backoff_seconds: float,
    checkpoint_every: int,
    fault_epochs: Optional[int] = None,
    verbose: bool = False,
) -> None:
    """Module-level worker entry point (picklable under spawn)."""
    queue = JobQueue(
        spool,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        backoff_seconds=backoff_seconds,
    )
    QueueWorker(
        queue,
        checkpoint_every=checkpoint_every,
        fault_epochs=fault_epochs,
        verbose=verbose,
    ).run()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class SweepScheduler:
    """Shards a config grid across workers through the spool queue.

    On one host it launches ``jobs`` worker processes itself; across
    hosts, point extra ``repro worker --spool DIR`` processes at the
    same directory and they join the pool — the queue does not care who
    claims a token.  If every launched worker dies (faults included),
    the scheduler drains the remainder in-process, so :meth:`run`
    always returns the complete, input-ordered outcome list.
    """

    def __init__(
        self,
        spool: Optional[Union[str, Path]] = None,
        jobs: int = 1,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        checkpoint_every: int = 1,
        keep_spool: bool = False,
        verbose: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spool = None if spool is None else Path(spool)
        self.jobs = int(jobs)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.backoff_seconds = float(backoff_seconds)
        self.checkpoint_every = int(checkpoint_every)
        self.keep_spool = keep_spool
        self.verbose = verbose

    def _make_queue(self, spool: Union[str, Path]) -> JobQueue:
        return JobQueue(
            spool,
            lease_seconds=self.lease_seconds,
            max_attempts=self.max_attempts,
            backoff_seconds=self.backoff_seconds,
        )

    def run(
        self,
        configs: Sequence[ExperimentConfig],
        timeout: Optional[float] = None,
    ) -> List:
        """Submit, fan out, wait, and collect outcomes in input order."""
        import multiprocessing
        import tempfile

        configs = list(configs)
        spool = self.spool
        ephemeral = spool is None
        if ephemeral:
            spool = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
        try:
            queue = self._make_queue(spool)
            job_ids = queue.submit(configs)
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = multiprocessing.get_context("spawn")
            workers = [
                context.Process(
                    target=_worker_main,
                    args=(
                        str(spool),
                        self.lease_seconds,
                        self.max_attempts,
                        self.backoff_seconds,
                        self.checkpoint_every,
                        None,
                        self.verbose,
                    ),
                    daemon=True,
                )
                for _ in range(min(self.jobs, max(1, len(configs))))
            ]
            for worker in workers:
                worker.start()

            def drain_if_workers_died() -> None:
                # Every worker process died (crash, OOM, fault
                # injection): finish the remainder ourselves so run()
                # always returns the complete outcome list.
                if not any(worker.is_alive() for worker in workers):
                    if queue.status().in_flight > 0:
                        QueueWorker(
                            queue,
                            checkpoint_every=self.checkpoint_every,
                            verbose=self.verbose,
                        ).run()

            try:
                manifests = queue.wait(
                    job_ids, timeout=timeout, on_poll=drain_if_workers_died
                )
            finally:
                for worker in workers:
                    worker.join(timeout=5.0)
                    if worker.is_alive():
                        worker.terminate()
            return [manifest_to_outcome(manifests[job_id]) for job_id in job_ids]
        finally:
            if ephemeral and not self.keep_spool:
                shutil.rmtree(spool, ignore_errors=True)
