"""Experiment configs and runners behind every table/figure bench."""

from .config import SCALED_IMAGE_SIZE, SCALED_NUM_CLASSES, ExperimentConfig, scaled_config
from .queue import (
    ClaimedJob,
    JobQueue,
    QueueStatus,
    QueueWorker,
    SweepScheduler,
    job_id_for,
    manifest_to_outcome,
    outcome_to_manifest,
)
from .runner import (
    ExperimentOutcome,
    build_experiment_model,
    build_loaders,
    build_method,
    iterations_per_epoch,
    run_experiment,
    run_lth_experiment,
    run_method,
    run_sweep,
    sweep_configs,
)

__all__ = [
    "ExperimentConfig",
    "scaled_config",
    "SCALED_NUM_CLASSES",
    "SCALED_IMAGE_SIZE",
    "ExperimentOutcome",
    "run_experiment",
    "run_lth_experiment",
    "run_method",
    "run_sweep",
    "sweep_configs",
    "build_loaders",
    "build_experiment_model",
    "build_method",
    "iterations_per_epoch",
    "JobQueue",
    "QueueWorker",
    "QueueStatus",
    "ClaimedJob",
    "SweepScheduler",
    "job_id_for",
    "outcome_to_manifest",
    "manifest_to_outcome",
]
