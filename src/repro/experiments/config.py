"""Experiment configuration shared by benchmarks and examples.

The paper's full-scale recipe (300 epochs, batch 128, lr 0.3, SGD
momentum 0.9, weight decay 5e-4, T=5) is encoded here as defaults;
the CPU-scale benchmark harness shrinks widths/resolutions/samples
while keeping every algorithmic knob identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional


@dataclass
class ExperimentConfig:
    """One training run of one method on one dataset/model pair."""

    dataset: str = "cifar10"
    model: str = "convnet"
    method: str = "ndsnn"
    sparsity: float = 0.9

    # Paper hyper-parameters (full-scale defaults).
    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    timesteps: int = 5
    # Input coding: ``direct`` (the paper's setup), ``poisson`` for the
    # rate-coded ablation, ``latency`` for time-to-first-spike.  The
    # Poisson encoder's RNG derives from ``seed`` (stream seed + 4) and
    # is checkpointed with the other RNG streams.
    encoder: str = "direct"

    # NDSNN-specific knobs.  The paper's d0 = 0.5 suits 300-epoch runs;
    # at CPU-scale run lengths a gentler 0.25 keeps the drop-and-grow
    # churn proportionate (see EXPERIMENTS.md calibration note).
    initial_sparsity: float = 0.6
    update_frequency: int = 8
    initial_death_rate: float = 0.25
    minimum_death_rate: float = 0.05
    growth_mode: str = "gradient"
    ramp_power: float = 3.0
    distribution: str = "erk"

    # Baseline knobs.
    set_prune_rate: float = 0.3
    rigl_alpha: float = 0.3
    rigl_stop_fraction: float = 0.75
    lth_rounds: int = 3
    admm_rho: float = 1e-2
    admm_fraction: float = 0.5

    # CPU-scale substitutions (see DESIGN.md): shrink the workload, not
    # the algorithm.
    width_mult: float = 0.125
    image_size: Optional[int] = 16
    num_classes: Optional[int] = None
    train_samples: int = 256
    test_samples: int = 128
    seed: int = 0

    # Masked-layer execution: ``dense`` always multiplies the masked
    # dense weights, ``auto`` (the default) routes layers through the
    # CSR kernels when their measured density drops below the dispatch
    # cutoff (per-shape calibrated by the runners), ``csr`` forces the
    # sparse kernels everywhere.
    execution: str = "auto"

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Copy with field overrides."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict:
        """JSON-able dict of every field (the queue's job-file format).

        >>> ExperimentConfig(method="set").to_dict()["method"]
        'set'
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so old
        spool directories stay readable as the config grows fields.

        >>> ExperimentConfig.from_dict({"method": "rigl", "mystery": 1}).method
        'rigl'
        """
        names = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in names})


#: Reduced class counts for the scaled-down versions of the paper's
#: datasets.  The full class counts (100 / 200) would leave only a
#: couple of training samples per class at CPU-scale sample budgets.
SCALED_NUM_CLASSES: Dict[str, int] = {
    "cifar10": 10,
    "cifar100": 20,
    "tiny_imagenet": 30,
}

#: Image resolutions for the scaled harness, preserving the paper's
#: relative resolution structure (Tiny-ImageNet is 2x CIFAR).
SCALED_IMAGE_SIZE: Dict[str, int] = {
    "cifar10": 16,
    "cifar100": 16,
    "tiny_imagenet": 32,
}


def scaled_config(
    dataset: str,
    model: str,
    method: str,
    sparsity: float,
    **overrides,
) -> ExperimentConfig:
    """Build a CPU-scale configuration for a paper experiment cell."""
    config = ExperimentConfig(
        dataset=dataset,
        model=model,
        method=method,
        sparsity=sparsity,
        num_classes=SCALED_NUM_CLASSES.get(dataset),
        image_size=SCALED_IMAGE_SIZE.get(dataset, 16),
    )
    return config.scaled(**overrides)
