"""Plain-text table rendering for the reproduction benches.

Formats results in the same row/column layout as the paper's tables so
EXPERIMENTS.md can be filled by copy-paste from the bench output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Monospace table with per-column alignment.

    Floats are rendered with 2 decimal places (accuracy percent style).
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.2f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float], x_label: str = "x") -> str:
    """Render a figure series as aligned text (for figure benches)."""
    pairs = ", ".join(f"{x}:{y:.3f}" for x, y in zip(xs, ys))
    return f"{name} [{x_label}] {pairs}"


def ascii_plot(series: dict, width: int = 60, height: int = 12, title: str = "") -> str:
    """Crude ASCII line chart of one or more named series.

    Each series is a list of floats; x is the index, scaled to
    ``width``.  Good enough to see the Fig. 1 sparsity-curve shapes in
    bench output.
    """
    if not series:
        return "(empty plot)"
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@"
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        n = len(values)
        for column in range(width):
            position = column / max(1, width - 1) * (n - 1)
            value = values[int(round(position))]
            row = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][column] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={hi:.3f}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min={lo:.3f}")
    for index, name in enumerate(sorted(series)):
        lines.append(f"  {markers[index % len(markers)]} = {name}")
    return "\n".join(lines)
