"""Experiment runners: build everything from a config and train.

These runners are the single code path behind every table/figure bench
and the examples, so the reproduction results always exercise the real
library API.  :func:`run_sweep` fans a list of configs out across
worker processes (``--jobs`` on the CLI) for table/figure grids.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..data import DataLoader, make_dataset, standard_train_transform
from ..optim import SGD, CosineAnnealingLR
from ..snn.encoding import build_encoder
from ..snn.models import build_model
from ..sparse import (
    ADMMPruner,
    DenseMethod,
    GMPSNN,
    LTHSNN,
    NDSNN,
    RigLSNN,
    SETSNN,
    SNIPSNN,
    SparseTrainingMethod,
)
from ..train import (
    CheckpointCallback,
    EpochStats,
    Trainer,
    has_training_state,
    load_training_state,
)
from .config import ExperimentConfig


@dataclass
class ExperimentOutcome:
    """Everything a table/figure needs from one training run."""

    config: ExperimentConfig
    final_accuracy: float
    best_accuracy: float
    final_sparsity: float
    history: List[EpochStats] = field(default_factory=list)

    @property
    def spike_rates(self) -> List[float]:
        return [s.spike_rate for s in self.history]

    @property
    def densities(self) -> List[float]:
        return [s.density for s in self.history]

    @property
    def sparsities(self) -> List[float]:
        return [s.sparsity for s in self.history]


def build_loaders(config: ExperimentConfig, augment: bool = False):
    """Train/test loaders for a config's dataset.

    Each consumer of randomness — augmentation and train-loader
    shuffling — gets its own seed-derived generator (spawned from one
    root ``SeedSequence``), so enabling augmentation never perturbs the
    shuffle order, and sweep workers running under ``--jobs`` reproduce
    the exact single-process streams.
    """
    augment_rng, shuffle_rng = (
        np.random.default_rng(seq)
        for seq in np.random.SeedSequence(config.seed).spawn(2)
    )
    train_set = make_dataset(
        config.dataset,
        train=True,
        num_samples=config.train_samples,
        image_size=config.image_size,
        num_classes=config.num_classes,
        seed=config.seed,
    )
    test_set = make_dataset(
        config.dataset,
        train=False,
        num_samples=config.test_samples,
        image_size=config.image_size,
        num_classes=config.num_classes,
        seed=config.seed,
    )
    transform = standard_train_transform(padding=2, rng=augment_rng) if augment else None
    train_loader = DataLoader(
        train_set, batch_size=config.batch_size, shuffle=True,
        transform=transform, rng=shuffle_rng,
    )
    test_loader = DataLoader(test_set, batch_size=config.batch_size, shuffle=False)
    return train_loader, test_loader, train_set


def build_experiment_model(config: ExperimentConfig, dataset=None):
    """Model instance matching a config (and dataset geometry)."""
    if dataset is not None:
        num_classes = dataset.num_classes
        image_size = dataset.spec.image_size
        in_channels = dataset.spec.in_channels
    else:
        num_classes = config.num_classes or 10
        image_size = config.image_size or 32
        in_channels = 3
    rng = np.random.default_rng(config.seed + 2)
    kwargs = dict(
        num_classes=num_classes,
        in_channels=in_channels,
        image_size=image_size,
        timesteps=config.timesteps,
        rng=rng,
    )
    if config.model != "convnet":
        kwargs["width_mult"] = config.width_mult
    model = build_model(config.model, **kwargs)
    if config.encoder != "direct":
        encoder_kwargs = {}
        if config.encoder == "poisson":
            # Dedicated seed stream (seed + 4, after model/method/loader)
            # so rate coding is reproducible and resumable; the
            # checkpoint layer captures/restores ``encoder.rng``.
            encoder_kwargs["rng"] = np.random.default_rng(config.seed + 4)
        model.encoder = build_encoder(
            config.encoder, config.timesteps, **encoder_kwargs
        )
    return model


def iterations_per_epoch(config: ExperimentConfig) -> int:
    """Number of optimizer steps per epoch under a config's loader."""
    return max(1, (config.train_samples + config.batch_size - 1) // config.batch_size)


def build_method(config: ExperimentConfig, total_iterations: int) -> SparseTrainingMethod:
    """Instantiate the sparse-training method named in the config."""
    rng = np.random.default_rng(config.seed + 3)
    name = config.method
    if name == "dense":
        return DenseMethod()
    if name == "ndsnn":
        return NDSNN(
            initial_sparsity=config.initial_sparsity,
            final_sparsity=config.sparsity,
            total_iterations=total_iterations,
            update_frequency=config.update_frequency,
            initial_death_rate=config.initial_death_rate,
            minimum_death_rate=config.minimum_death_rate,
            distribution=config.distribution,
            growth_mode=config.growth_mode,
            ramp_power=config.ramp_power,
            rng=rng,
        )
    if name == "set":
        return SETSNN(
            sparsity=config.sparsity,
            total_iterations=total_iterations,
            update_frequency=config.update_frequency,
            prune_rate=config.set_prune_rate,
            distribution=config.distribution,
            rng=rng,
        )
    if name == "rigl":
        return RigLSNN(
            sparsity=config.sparsity,
            total_iterations=total_iterations,
            update_frequency=config.update_frequency,
            alpha=config.rigl_alpha,
            stop_fraction=config.rigl_stop_fraction,
            distribution=config.distribution,
            rng=rng,
        )
    if name == "gmp":
        return GMPSNN(
            initial_sparsity=0.0,
            final_sparsity=config.sparsity,
            total_iterations=total_iterations,
            update_frequency=config.update_frequency,
            distribution=config.distribution,
            ramp_power=config.ramp_power,
            rng=rng,
        )
    if name == "snip":
        return SNIPSNN(sparsity=config.sparsity, rng=rng)
    if name == "admm":
        return ADMMPruner(
            sparsity=config.sparsity,
            total_iterations=total_iterations,
            admm_fraction=config.admm_fraction,
            rho=config.admm_rho,
            update_frequency=config.update_frequency,
            distribution=config.distribution,
            rng=rng,
        )
    raise ValueError(f"unknown method {name!r} (use run_lth_experiment for 'lth')")


def run_experiment(
    config: ExperimentConfig,
    verbose: bool = False,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    resume: bool = True,
    extra_callbacks: Optional[Sequence] = None,
) -> ExperimentOutcome:
    """Train one method per the config; returns accuracy and traces.

    With ``checkpoint_path`` set, the complete training state is saved
    every ``checkpoint_every`` epochs, and (if ``resume`` and a
    checkpoint exists) the run continues from the last saved epoch
    boundary instead of epoch zero.  Because the checkpoint restores
    every RNG stream, optimizer buffer and schedule position, the
    resumed run is bit-identical to an uninterrupted one — this is the
    contract the sweep queue's crash-recovery is built on.
    """
    total_iterations = iterations_per_epoch(config) * config.epochs

    def build_trainer():
        train_loader, test_loader, train_set = build_loaders(config)
        model = build_experiment_model(config, train_set)
        optimizer = SGD(
            model.parameters(),
            lr=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        scheduler = CosineAnnealingLR(optimizer, t_max=max(1, config.epochs))
        method = build_method(config, total_iterations)
        trainer = Trainer(
            model,
            method,
            optimizer,
            train_loader,
            test_loader=test_loader,
            scheduler=scheduler,
        )
        method.set_execution(config.execution, calibrate=True)
        return trainer, method

    trainer, method = build_trainer()
    start_epoch = 0
    initial_history: List[EpochStats] = []
    if checkpoint_path is not None:
        checkpoint_path = Path(checkpoint_path)
        if resume and has_training_state(checkpoint_path):
            try:
                metadata = load_training_state(checkpoint_path, trainer)
                start_epoch = int(metadata["epochs_completed"])
                initial_history = [
                    EpochStats(**entry) for entry in metadata.get("history", [])
                ]
            except Exception:
                # A torn or mismatched checkpoint (e.g. two claimants
                # raced the save) must cost a recompute, not the job;
                # a partial load may have touched anything, so rebuild
                # the whole trainer stack and start fresh.
                trainer, method = build_trainer()
                start_epoch = 0
                initial_history = []
        trainer.add_callback(CheckpointCallback(checkpoint_path, every=checkpoint_every))
    for callback in extra_callbacks or ():
        trainer.add_callback(callback)
    result = trainer.fit(
        config.epochs,
        verbose=verbose,
        start_epoch=start_epoch,
        initial_history=initial_history,
    )
    return ExperimentOutcome(
        config=config,
        final_accuracy=result.final_accuracy,
        best_accuracy=result.best_accuracy,
        final_sparsity=method.sparsity(),
        history=result.history,
    )


def run_lth_experiment(
    config: ExperimentConfig,
    rounds: Optional[int] = None,
    epochs_per_round: Optional[int] = None,
    verbose: bool = False,
    extra_callbacks: Optional[Sequence] = None,
) -> ExperimentOutcome:
    """Iterative magnitude pruning: ``rounds`` train/prune/rewind cycles.

    The returned history concatenates every round's epochs, which is the
    honest accounting for LTH's training cost (Fig. 5).  LTH's
    multi-round meta-loop has no mid-run checkpoint seam, so a
    re-claimed queue job recomputes it deterministically from scratch;
    ``extra_callbacks`` (lease heartbeats and the like) attach to every
    round's trainer.
    """
    rounds = rounds if rounds is not None else config.lth_rounds
    epochs_per_round = epochs_per_round if epochs_per_round is not None else config.epochs
    train_loader, test_loader, train_set = build_loaders(config)
    model = build_experiment_model(config, train_set)
    controller = LTHSNN(
        model,
        target_sparsity=config.sparsity,
        rounds=rounds,
        rng=np.random.default_rng(config.seed + 3),
    )
    combined_history: List[EpochStats] = []
    final_accuracy = 0.0
    best_accuracy = 0.0
    total_iterations = iterations_per_epoch(config) * epochs_per_round
    for round_index in range(1, rounds + 1):
        method = controller.method_for_round(round_index)
        optimizer = SGD(
            model.parameters(),
            lr=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        scheduler = CosineAnnealingLR(optimizer, t_max=max(1, epochs_per_round))
        trainer = Trainer(
            model,
            method,
            optimizer,
            train_loader,
            test_loader=test_loader,
            scheduler=scheduler,
        )
        for callback in extra_callbacks or ():
            trainer.add_callback(callback)
        method.set_execution(config.execution, calibrate=True)
        result = trainer.fit(epochs_per_round, verbose=verbose)
        combined_history.extend(result.history)
        final_accuracy = result.final_accuracy
        best_accuracy = max(best_accuracy, result.best_accuracy)
        controller.prune(round_index)
        if round_index < rounds:
            controller.rewind()
        else:
            # Final mask applied to the trained weights for evaluation.
            for name, parameter in controller.parameters.items():
                parameter.data *= controller.masks[name]
            from ..train.metrics import evaluate

            final_accuracy = evaluate(model, test_loader)
    return ExperimentOutcome(
        config=config,
        final_accuracy=final_accuracy,
        best_accuracy=best_accuracy,
        final_sparsity=controller.current_sparsity(),
        history=combined_history,
    )


def run_method(
    config: ExperimentConfig,
    verbose: bool = False,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    resume: bool = True,
    extra_callbacks: Optional[Sequence] = None,
) -> ExperimentOutcome:
    """Dispatch on ``config.method``, including the LTH meta-method.

    Checkpoint/resume arguments apply to single-run methods; LTH
    ignores them (its re-runs are deterministic recomputations).
    """
    if config.method == "lth":
        return run_lth_experiment(config, verbose=verbose, extra_callbacks=extra_callbacks)
    return run_experiment(
        config,
        verbose=verbose,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume=resume,
        extra_callbacks=extra_callbacks,
    )


def _sweep_worker(config: ExperimentConfig) -> ExperimentOutcome:
    """Module-level worker so it pickles under every start method."""
    return run_method(config, verbose=False)


@contextlib.contextmanager
def _calibration_scope():
    """Point all sweep workers at one shared dispatch-calibration cache.

    Under ``auto`` execution each worker calibrates its dispatch cutoffs
    by timing kernels; with the write-once cache in a shared directory,
    the first worker to measure a shape publishes the cutoff and every
    later worker (same process or sibling) adopts it — so all runs of a
    sweep route dense-vs-CSR identically regardless of per-process
    timing jitter.  Respects a pre-set ``REPRO_CALIBRATION_DIR`` (the
    queue backend's cross-host workers set it to the spool).
    """
    from ..sparse.dispatch import CALIBRATION_ENV, clear_process_cache

    if os.environ.get(CALIBRATION_ENV):
        yield
        return
    with tempfile.TemporaryDirectory(prefix="repro-calib-") as shared:
        os.environ[CALIBRATION_ENV] = shared
        try:
            yield
        finally:
            os.environ.pop(CALIBRATION_ENV, None)
            clear_process_cache()


def sweep_configs(
    base: ExperimentConfig,
    methods: Sequence[str],
    sparsities: Optional[Sequence[float]] = None,
) -> List[ExperimentConfig]:
    """Cross a base config with a method (and optional sparsity) grid."""
    configs = []
    for method in methods:
        for sparsity in sparsities if sparsities else (base.sparsity,):
            configs.append(base.scaled(method=method, sparsity=sparsity))
    return configs


def run_sweep(
    configs: Iterable[ExperimentConfig],
    jobs: int = 1,
    verbose: bool = False,
    backend: str = "local",
    spool: Optional[Union[str, Path]] = None,
    **queue_options,
) -> List[ExperimentOutcome]:
    """Run many experiments, optionally fanned out across processes.

    Backends:

    * ``local`` — ``jobs <= 1`` runs sequentially in-process; otherwise
      a ``multiprocessing`` pool of ``jobs`` workers maps over the
      configs.
    * ``queue`` — the configs are submitted to a durable file-backed
      job queue in ``spool`` (a temporary directory if omitted) and
      ``jobs`` worker processes drain it; workers on *other* hosts can
      join by pointing ``repro worker --spool`` at the same directory.
      Extra ``queue_options`` (``lease_seconds``, ``max_attempts``,
      ``backoff_seconds``, ``checkpoint_every``) are forwarded to
      :class:`~repro.experiments.queue.SweepScheduler`.

    Outcomes come back in input order either way, and each experiment
    derives every random stream from its own config seed, so results
    are bit-identical across backends and at any worker count.
    """
    configs = list(configs)
    with _calibration_scope():
        if backend == "queue":
            from .queue import SweepScheduler

            scheduler = SweepScheduler(
                spool=spool, jobs=jobs, verbose=verbose, **queue_options
            )
            return scheduler.run(configs)
        if backend != "local":
            raise ValueError(f"unknown sweep backend {backend!r} (use 'local' or 'queue')")
        if queue_options:
            unknown = ", ".join(sorted(queue_options))
            raise TypeError(f"queue options ({unknown}) require backend='queue'")
        if jobs <= 1 or len(configs) <= 1:
            return [run_method(config, verbose=verbose) for config in configs]
        # fork shares the already-imported interpreter state (cheapest);
        # spawn is the portable fallback where fork is unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(jobs, len(configs))) as pool:
            return pool.map(_sweep_worker, configs)
