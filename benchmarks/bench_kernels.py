"""Micro-benchmarks of the compute kernels (supplementary).

Two modes:

* pytest-benchmark timings (many rounds) of the operations that
  dominate NDSNN training: convolution forward/backward, the LIF
  temporal loop, mask enforcement and a drop-and-grow round;
* a dense-vs-CSR comparison mode emitting ``BENCH_kernels.json``::

      PYTHONPATH=src python benchmarks/bench_kernels.py --out BENCH_kernels.json

  For each (shape, sparsity) cell it times the dense masked matmul
  ``(W*mask) @ X`` against the CSR fast path, both kernel-only (pattern
  and values resident, the steady-state write-through case) and
  including a per-call value refresh (the historical CSR tax), plus the
  transposed product used by the input gradient, the standalone refresh
  cost amortized over a training step, direct sparse-filter convolution
  cells, and the routing an ``--execution auto`` run would take per
  cell under measured calibration;
* a regression gate over the committed numbers::

      PYTHONPATH=src python benchmarks/bench_kernels.py --check BENCH_kernels.json

  re-times the grid and exits non-zero if any headline metric regressed
  by more than 15% (tier-1 runs the gate mechanism via a smoke test).
"""

import argparse
import json
import time

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn import LIFNeuron, reset_net
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN, CSRPattern, MaskManager
from repro.tensor import Tensor, conv2d, cross_entropy


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 16, 16, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((32, 16, 3, 3)).astype(np.float32) * 0.1, requires_grad=True)
    return x, w


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    benchmark(lambda: conv2d(x, w, None, padding=1))


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def run():
        x.zero_grad()
        w.zero_grad()
        (conv2d(x, w, None, padding=1) ** 2).sum().backward()

    benchmark(run)


def test_lif_temporal_loop(benchmark):
    rng = np.random.default_rng(1)
    neuron = LIFNeuron()
    frames = [Tensor(rng.standard_normal((16, 64)).astype(np.float32)) for _ in range(5)]

    def run():
        neuron.reset_state()
        for frame in frames:
            neuron(frame)

    benchmark(run)


def test_mask_enforcement(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(32, 64), rng=np.random.default_rng(2)
    )
    masks = MaskManager(model, rng=np.random.default_rng(3))
    masks.init_random({name: 0.1 for name in masks.masks})
    benchmark(masks.apply_masks)


def test_drop_and_grow_round(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(32, 64),
        timesteps=2, rng=np.random.default_rng(4),
    )
    method = NDSNN(
        initial_sparsity=0.5, final_sparsity=0.95,
        total_iterations=1000, update_frequency=10,
        rng=np.random.default_rng(5),
    )
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    method.bind(model, optimizer)
    rng = np.random.default_rng(6)
    x = Tensor(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
    y = rng.integers(0, 10, 4)
    loss = cross_entropy(model(x), y)
    loss.backward()
    iteration = {"value": 10}

    def run():
        method._drop_and_grow(iteration["value"])
        iteration["value"] = min(iteration["value"] + 10, 990)

    benchmark(run)


def test_spiking_forward_pass(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(16, 32),
        timesteps=4, rng=np.random.default_rng(7),
    )
    x = Tensor(np.random.default_rng(8).standard_normal((8, 3, 16, 16)).astype(np.float32))
    benchmark(lambda: model(x))


# ----------------------------------------------------------------------
# Dense-vs-CSR comparison mode
# ----------------------------------------------------------------------

COMPARISON_SHAPES = ((512, 512, 16), (1024, 1024, 16))
COMPARISON_SPARSITIES = (0.5, 0.9, 0.99)
#: Direct sparse-filter convolution cells: (filters, channels, kernel,
#: height, width, batch), padded same, stride 1.
CONV_SHAPES = ((32, 16, 3, 16, 16, 8),)
#: SNN timesteps over which one optimizer-step refresh amortizes (the
#: reproduction's default temporal window).
DEFAULT_TIMESTEPS = 5
#: Headline metrics may regress by at most this fraction before
#: ``--check`` fails.
CHECK_TOLERANCE = 0.15
#: Headline speedup metrics the regression gate compares (higher is
#: better); ``refresh_overhead_at_90`` is gated separately (lower is
#: better).
HEADLINE_METRICS = (
    "best_speedup_at_90",
    "best_speedup_with_refresh_at_90",
    "best_speedup_train_step_at_90",
    "conv_speedup_at_90",
    "min_auto_speedup",
)


def _time(fn, repeats):
    fn()  # warm-up (touches caches, triggers lazy allocations)
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def compare_masked_matmul(
    rows, cols, batch, sparsity, repeats=50, seed=0, timesteps=DEFAULT_TIMESTEPS
):
    """One comparison cell: dense masked matmul vs the CSR fast path.

    ``timesteps`` sets the amortization window for the write-through
    refresh: a training step gathers active values once and reuses them
    for ``timesteps`` forward products plus ``timesteps`` transposed
    (input-gradient) products.
    """
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((rows, cols)).astype(np.float32)
    keep = max(1, int(round((1.0 - sparsity) * rows * cols)))
    mask = np.zeros(rows * cols, dtype=np.float32)
    mask[rng.choice(rows * cols, size=keep, replace=False)] = 1.0
    mask = mask.reshape(rows, cols)
    weight *= mask  # trainer invariant: masked weights are exactly zero
    x = rng.standard_normal((cols, batch)).astype(np.float32)
    grad = rng.standard_normal((rows, batch)).astype(np.float32)

    pattern = CSRPattern.from_mask(mask)
    data = pattern.gather(weight)

    dense_s = _time(lambda: (weight * mask) @ x, repeats)
    csr_kernel_s = _time(lambda: pattern.matmul(data, x), repeats)
    csr_refresh_s = _time(lambda: pattern.matmul(pattern.gather(weight), x), repeats)
    dense_t_s = _time(lambda: (weight * mask).T @ grad, repeats)
    csr_t_s = _time(lambda: pattern.t_matmul(data, grad), repeats)
    refresh_s = _time(lambda: pattern.gather(weight), repeats)

    # One training step at T timesteps: dense pays T masked products each
    # direction; write-through CSR pays the same products sparse plus a
    # single value refresh.
    step_csr_s = timesteps * (csr_kernel_s + csr_t_s) + refresh_s
    step_dense_s = timesteps * (dense_s + dense_t_s)

    # Correctness guard: a fast wrong kernel is not a fast kernel.
    reference = (weight * mask) @ x
    max_err = float(np.abs(pattern.matmul(data, x) - reference).max())
    tolerance = 1e-4 * max(1.0, float(np.abs(reference).max()))
    if max_err > tolerance:
        raise AssertionError(
            f"CSR kernel diverges from dense reference: max abs error "
            f"{max_err:.3e} > {tolerance:.3e} at sparsity {sparsity}"
        )
    return {
        "rows": rows,
        "cols": cols,
        "batch": batch,
        "sparsity": sparsity,
        "timesteps": timesteps,
        "dense_us": dense_s * 1e6,
        "csr_kernel_us": csr_kernel_s * 1e6,
        "csr_with_refresh_us": csr_refresh_s * 1e6,
        "dense_t_us": dense_t_s * 1e6,
        "csr_t_us": csr_t_s * 1e6,
        "refresh_us": refresh_s * 1e6,
        "refresh_overhead": refresh_s / (timesteps * (csr_kernel_s + csr_t_s)),
        "speedup_kernel": dense_s / csr_kernel_s,
        "speedup_with_refresh": dense_s / csr_refresh_s,
        "speedup_transposed": dense_t_s / csr_t_s,
        "speedup_train_step": step_dense_s / step_csr_s,
        "max_abs_error": max_err,
    }


class _BenchState:
    """Minimal MaskedParameter stand-in forcing the CSR conv route."""

    class _Manager:
        @staticmethod
        def use_csr(state):
            return True

    def __init__(self, mask, weight):
        self.mask = mask
        self.manager = self._Manager()
        self._pattern = CSRPattern.from_mask(mask)
        self._pattern.gather(weight)

    def csr_pattern(self):
        return self._pattern

    def csr_values(self):
        return self._pattern.values


def compare_masked_conv(filters, channels, kernel, height, width, batch,
                        sparsity, repeats=20, seed=0):
    """One conv cell: dense conv2d vs the direct sparse-filter kernel."""
    from repro.tensor import masked_conv2d

    rng = np.random.default_rng(seed)
    shape = (filters, channels, kernel, kernel)
    weight = rng.standard_normal(shape).astype(np.float32) * 0.1
    total = int(np.prod(shape))
    keep = max(1, int(round((1.0 - sparsity) * total)))
    mask = np.zeros(total, dtype=np.float32)
    mask[rng.choice(total, size=keep, replace=False)] = 1.0
    mask = mask.reshape(shape)
    weight *= mask
    x = Tensor(rng.standard_normal((batch, channels, height, width)).astype(np.float32))
    weight_t = Tensor(weight)
    state = _BenchState(mask, weight)
    padding = kernel // 2

    dense_s = _time(lambda: conv2d(x, weight_t, None, padding=padding), repeats)
    csr_s = _time(
        lambda: masked_conv2d(x, weight_t, None, padding=padding, state=state), repeats
    )

    reference = conv2d(x, weight_t, None, padding=padding).data
    produced = masked_conv2d(x, weight_t, None, padding=padding, state=state).data
    max_err = float(np.abs(produced - reference).max())
    tolerance = 1e-4 * max(1.0, float(np.abs(reference).max()))
    if max_err > tolerance:
        raise AssertionError(
            f"sparse conv kernel diverges from dense reference: max abs "
            f"error {max_err:.3e} > {tolerance:.3e} at sparsity {sparsity}"
        )
    return {
        "filters": filters,
        "channels": channels,
        "kernel": kernel,
        "height": height,
        "width": width,
        "batch": batch,
        "sparsity": sparsity,
        "dense_us": dense_s * 1e6,
        "csr_us": csr_s * 1e6,
        "speedup": dense_s / csr_s,
        "max_abs_error": max_err,
    }


def auto_route_cells(matmul_cells):
    """Per-cell routing an ``--execution auto`` run would take.

    Uses the same measured calibration machinery as the training
    runners (:func:`repro.sparse.dispatch.get_cutoff`).  A cell routed
    dense has speedup exactly 1.0 by construction — auto never pays for
    a losing CSR dispatch.
    """
    from repro.sparse.dispatch import get_cutoff

    cells = []
    for cell in matmul_cells:
        density = 1.0 - cell["sparsity"]
        cutoff = get_cutoff(cell["rows"], cell["cols"])
        route = "csr" if density <= cutoff else "dense"
        cells.append(
            {
                "rows": cell["rows"],
                "cols": cell["cols"],
                "sparsity": cell["sparsity"],
                "density": density,
                "cutoff": cutoff,
                "route": route,
                "speedup_auto": cell["speedup_train_step"] if route == "csr" else 1.0,
            }
        )
    return cells


def run_comparison(
    shapes=COMPARISON_SHAPES,
    sparsities=COMPARISON_SPARSITIES,
    conv_shapes=CONV_SHAPES,
    repeats=50,
    timesteps=DEFAULT_TIMESTEPS,
):
    """Full dense-vs-CSR grid; returns the BENCH_kernels payload."""
    cells = []
    for rows, cols, batch in shapes:
        for sparsity in sparsities:
            cells.append(
                compare_masked_matmul(
                    rows, cols, batch, sparsity, repeats=repeats, timesteps=timesteps
                )
            )
    conv_cells = []
    for filters, channels, kernel, height, width, batch in conv_shapes:
        for sparsity in sparsities:
            conv_cells.append(
                compare_masked_conv(
                    filters, channels, kernel, height, width, batch,
                    sparsity, repeats=max(1, repeats // 2),
                )
            )
    auto_cells = auto_route_cells(cells)
    at_90 = [c for c in cells if c["sparsity"] == 0.9]
    conv_at_90 = [c for c in conv_cells if c["sparsity"] == 0.9]
    return {
        "bench": "dense_masked_matmul_vs_csr",
        "repeats": repeats,
        "timesteps": timesteps,
        "cells": cells,
        "conv_cells": conv_cells,
        "auto_cells": auto_cells,
        "best_speedup_at_90": max(c["speedup_kernel"] for c in at_90),
        "best_speedup_with_refresh_at_90": max(
            c["speedup_with_refresh"] for c in at_90
        ),
        "best_speedup_train_step_at_90": max(c["speedup_train_step"] for c in at_90),
        "refresh_overhead_at_90": max(c["refresh_overhead"] for c in at_90),
        "conv_speedup_at_90": max(c["speedup"] for c in conv_at_90),
        "min_auto_speedup": min(c["speedup_auto"] for c in auto_cells),
    }


def check_regressions(baseline, payload, tolerance=CHECK_TOLERANCE):
    """Compare headline metrics against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    Speedup metrics fail when they fall more than ``tolerance`` below
    the baseline; the refresh overhead fails when it grows more than
    ``tolerance`` above it (with an absolute floor of 0.10, the
    exit-state budget, so sub-budget jitter never trips the gate).
    """
    failures = []
    for metric in HEADLINE_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue  # older baselines predate this metric
        current = payload[metric]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{metric}: {current:.3f} < {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
    base_overhead = baseline.get("refresh_overhead_at_90")
    if base_overhead is not None:
        ceiling = max(base_overhead * (1.0 + tolerance), 0.10)
        current = payload["refresh_overhead_at_90"]
        if current > ceiling:
            failures.append(
                f"refresh_overhead_at_90: {current:.3f} > {ceiling:.3f} "
                f"(baseline {base_overhead:.3f} + {tolerance:.0%})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="dense-vs-CSR kernel comparison")
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=50)
    parser.add_argument("--timesteps", type=int, default=DEFAULT_TIMESTEPS)
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-time the grid and fail (exit 1) if any headline metric "
             f"regressed more than {CHECK_TOLERANCE:.0%} vs this JSON",
    )
    args = parser.parse_args(argv)
    payload = run_comparison(repeats=args.repeats, timesteps=args.timesteps)
    for cell in payload["cells"]:
        print(
            f"{cell['rows']}x{cell['cols']} b={cell['batch']} "
            f"sparsity={cell['sparsity']:.2f}: dense {cell['dense_us']:8.1f}us  "
            f"csr {cell['csr_kernel_us']:8.1f}us ({cell['speedup_kernel']:.2f}x, "
            f"{cell['speedup_train_step']:.2f}x/step, refresh "
            f"{100 * cell['refresh_overhead']:.1f}%)"
        )
    for cell in payload["conv_cells"]:
        print(
            f"conv {cell['filters']}x{cell['channels']}x{cell['kernel']} "
            f"sparsity={cell['sparsity']:.2f}: dense {cell['dense_us']:8.1f}us  "
            f"csr {cell['csr_us']:8.1f}us ({cell['speedup']:.2f}x)"
        )
    for cell in payload["auto_cells"]:
        print(
            f"auto {cell['rows']}x{cell['cols']} density={cell['density']:.2f} "
            f"cutoff={cell['cutoff']:.2f} -> {cell['route']} "
            f"({cell['speedup_auto']:.2f}x)"
        )
    print(f"best speedup at 90% sparsity: {payload['best_speedup_at_90']:.2f}x")
    print(f"refresh overhead at 90% sparsity: {100 * payload['refresh_overhead_at_90']:.1f}%")
    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regressions(baseline, payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"no headline regression vs {args.check}")
        return 0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
