"""Micro-benchmarks of the compute kernels (supplementary).

Two modes:

* pytest-benchmark timings (many rounds) of the operations that
  dominate NDSNN training: convolution forward/backward, the LIF
  temporal loop, mask enforcement and a drop-and-grow round;
* a dense-vs-CSR comparison mode emitting ``BENCH_kernels.json``::

      PYTHONPATH=src python benchmarks/bench_kernels.py --out BENCH_kernels.json

  For each (shape, sparsity) cell it times the dense masked matmul
  ``(W*mask) @ X`` against the CSR fast path, both kernel-only (pattern
  and values resident, the inference/steady-state case) and including
  the per-step value refresh (the training case), plus the transposed
  product used by the input gradient.
"""

import argparse
import json
import time

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn import LIFNeuron, reset_net
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN, CSRPattern, MaskManager
from repro.tensor import Tensor, conv2d, cross_entropy


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 16, 16, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((32, 16, 3, 3)).astype(np.float32) * 0.1, requires_grad=True)
    return x, w


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    benchmark(lambda: conv2d(x, w, None, padding=1))


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def run():
        x.zero_grad()
        w.zero_grad()
        (conv2d(x, w, None, padding=1) ** 2).sum().backward()

    benchmark(run)


def test_lif_temporal_loop(benchmark):
    rng = np.random.default_rng(1)
    neuron = LIFNeuron()
    frames = [Tensor(rng.standard_normal((16, 64)).astype(np.float32)) for _ in range(5)]

    def run():
        neuron.reset_state()
        for frame in frames:
            neuron(frame)

    benchmark(run)


def test_mask_enforcement(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(32, 64), rng=np.random.default_rng(2)
    )
    masks = MaskManager(model, rng=np.random.default_rng(3))
    masks.init_random({name: 0.1 for name in masks.masks})
    benchmark(masks.apply_masks)


def test_drop_and_grow_round(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(32, 64),
        timesteps=2, rng=np.random.default_rng(4),
    )
    method = NDSNN(
        initial_sparsity=0.5, final_sparsity=0.95,
        total_iterations=1000, update_frequency=10,
        rng=np.random.default_rng(5),
    )
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    method.bind(model, optimizer)
    rng = np.random.default_rng(6)
    x = Tensor(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
    y = rng.integers(0, 10, 4)
    loss = cross_entropy(model(x), y)
    loss.backward()
    iteration = {"value": 10}

    def run():
        method._drop_and_grow(iteration["value"])
        iteration["value"] = min(iteration["value"] + 10, 990)

    benchmark(run)


def test_spiking_forward_pass(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(16, 32),
        timesteps=4, rng=np.random.default_rng(7),
    )
    x = Tensor(np.random.default_rng(8).standard_normal((8, 3, 16, 16)).astype(np.float32))
    benchmark(lambda: model(x))


# ----------------------------------------------------------------------
# Dense-vs-CSR comparison mode
# ----------------------------------------------------------------------

COMPARISON_SHAPES = ((512, 512, 16), (1024, 1024, 16))
COMPARISON_SPARSITIES = (0.5, 0.9, 0.99)


def _time(fn, repeats):
    fn()  # warm-up (touches caches, triggers lazy allocations)
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def compare_masked_matmul(rows, cols, batch, sparsity, repeats=50, seed=0):
    """One comparison cell: dense masked matmul vs the CSR fast path."""
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((rows, cols)).astype(np.float32)
    keep = max(1, int(round((1.0 - sparsity) * rows * cols)))
    mask = np.zeros(rows * cols, dtype=np.float32)
    mask[rng.choice(rows * cols, size=keep, replace=False)] = 1.0
    mask = mask.reshape(rows, cols)
    weight *= mask  # trainer invariant: masked weights are exactly zero
    x = rng.standard_normal((cols, batch)).astype(np.float32)
    grad = rng.standard_normal((rows, batch)).astype(np.float32)

    pattern = CSRPattern.from_mask(mask)
    data = pattern.gather(weight)

    dense_s = _time(lambda: (weight * mask) @ x, repeats)
    csr_kernel_s = _time(lambda: pattern.matmul(data, x), repeats)
    csr_refresh_s = _time(lambda: pattern.matmul(pattern.gather(weight), x), repeats)
    dense_t_s = _time(lambda: (weight * mask).T @ grad, repeats)
    csr_t_s = _time(lambda: pattern.t_matmul(data, grad), repeats)

    # Correctness guard: a fast wrong kernel is not a fast kernel.
    reference = (weight * mask) @ x
    max_err = float(np.abs(pattern.matmul(data, x) - reference).max())
    tolerance = 1e-4 * max(1.0, float(np.abs(reference).max()))
    if max_err > tolerance:
        raise AssertionError(
            f"CSR kernel diverges from dense reference: max abs error "
            f"{max_err:.3e} > {tolerance:.3e} at sparsity {sparsity}"
        )
    return {
        "rows": rows,
        "cols": cols,
        "batch": batch,
        "sparsity": sparsity,
        "dense_us": dense_s * 1e6,
        "csr_kernel_us": csr_kernel_s * 1e6,
        "csr_with_refresh_us": csr_refresh_s * 1e6,
        "dense_t_us": dense_t_s * 1e6,
        "csr_t_us": csr_t_s * 1e6,
        "speedup_kernel": dense_s / csr_kernel_s,
        "speedup_with_refresh": dense_s / csr_refresh_s,
        "speedup_transposed": dense_t_s / csr_t_s,
        "max_abs_error": max_err,
    }


def run_comparison(repeats=50):
    """Full dense-vs-CSR grid; returns the BENCH_kernels payload."""
    cells = []
    for rows, cols, batch in COMPARISON_SHAPES:
        for sparsity in COMPARISON_SPARSITIES:
            cells.append(
                compare_masked_matmul(rows, cols, batch, sparsity, repeats=repeats)
            )
    at_90 = [c for c in cells if c["sparsity"] == 0.9]
    return {
        "bench": "dense_masked_matmul_vs_csr",
        "repeats": repeats,
        "cells": cells,
        "best_speedup_at_90": max(c["speedup_kernel"] for c in at_90),
        "best_speedup_with_refresh_at_90": max(
            c["speedup_with_refresh"] for c in at_90
        ),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description="dense-vs-CSR kernel comparison")
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=50)
    args = parser.parse_args(argv)
    payload = run_comparison(repeats=args.repeats)
    for cell in payload["cells"]:
        print(
            f"{cell['rows']}x{cell['cols']} b={cell['batch']} "
            f"sparsity={cell['sparsity']:.2f}: dense {cell['dense_us']:8.1f}us  "
            f"csr {cell['csr_kernel_us']:8.1f}us ({cell['speedup_kernel']:.2f}x, "
            f"{cell['speedup_with_refresh']:.2f}x with refresh)"
        )
    print(f"best speedup at 90% sparsity: {payload['best_speedup_at_90']:.2f}x")
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
