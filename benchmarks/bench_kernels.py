"""Micro-benchmarks of the compute kernels (supplementary).

These are classic pytest-benchmark timings (many rounds) of the
operations that dominate NDSNN training: convolution forward/backward,
the LIF temporal loop, mask enforcement and a drop-and-grow round.
"""

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn import LIFNeuron, reset_net
from repro.snn.models import SpikingConvNet
from repro.sparse import NDSNN, MaskManager
from repro.tensor import Tensor, conv2d, cross_entropy


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 16, 16, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((32, 16, 3, 3)).astype(np.float32) * 0.1, requires_grad=True)
    return x, w


def test_conv2d_forward(benchmark, conv_inputs):
    x, w = conv_inputs
    benchmark(lambda: conv2d(x, w, None, padding=1))


def test_conv2d_forward_backward(benchmark, conv_inputs):
    x, w = conv_inputs

    def run():
        x.zero_grad()
        w.zero_grad()
        (conv2d(x, w, None, padding=1) ** 2).sum().backward()

    benchmark(run)


def test_lif_temporal_loop(benchmark):
    rng = np.random.default_rng(1)
    neuron = LIFNeuron()
    frames = [Tensor(rng.standard_normal((16, 64)).astype(np.float32)) for _ in range(5)]

    def run():
        neuron.reset_state()
        for frame in frames:
            neuron(frame)

    benchmark(run)


def test_mask_enforcement(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(32, 64), rng=np.random.default_rng(2)
    )
    masks = MaskManager(model, rng=np.random.default_rng(3))
    masks.init_random({name: 0.1 for name in masks.masks})
    benchmark(masks.apply_masks)


def test_drop_and_grow_round(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(32, 64),
        timesteps=2, rng=np.random.default_rng(4),
    )
    method = NDSNN(
        initial_sparsity=0.5, final_sparsity=0.95,
        total_iterations=1000, update_frequency=10,
        rng=np.random.default_rng(5),
    )
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
    method.bind(model, optimizer)
    rng = np.random.default_rng(6)
    x = Tensor(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
    y = rng.integers(0, 10, 4)
    loss = cross_entropy(model(x), y)
    loss.backward()
    iteration = {"value": 10}

    def run():
        method._drop_and_grow(iteration["value"])
        iteration["value"] = min(iteration["value"] + 10, 990)

    benchmark(run)


def test_spiking_forward_pass(benchmark):
    model = SpikingConvNet(
        num_classes=10, image_size=16, channels=(16, 32),
        timesteps=4, rng=np.random.default_rng(7),
    )
    x = Tensor(np.random.default_rng(8).standard_normal((8, 3, 16, 16)).astype(np.float32))
    benchmark(lambda: model(x))
