"""Benchmark workload profiles.

The default (quick) profile keeps the full algorithmic pipeline — real
VGG-16/ResNet-19 topologies, ERK, BPTT, every method — but shrinks
widths, resolutions, sample counts and epochs so the whole suite runs
on a CPU in minutes.  Set ``REPRO_BENCH_FULL=1`` for a heavier profile
(closer to the paper's recipe: T=5, all four sparsity levels, more
epochs); absolute accuracies still differ from the paper because the
substrate is synthetic data on a numpy engine, but orderings sharpen.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))


@dataclass(frozen=True)
class BenchProfile:
    """Workload sizing for all table/figure benches."""

    epochs: int
    epochs_resnet: int
    train_samples: int
    test_samples: int
    timesteps: int
    batch_size: int
    width_mult: float
    image_size_cifar: int
    image_size_tiny: int
    sparsities: Tuple[float, ...]
    lth_rounds: int
    update_frequency: int
    learning_rate: float
    seed: int = 0

    def epochs_for(self, model: str) -> int:
        return self.epochs_resnet if model == "resnet19" else self.epochs

    def image_size_for(self, dataset: str) -> int:
        return self.image_size_tiny if dataset == "tiny_imagenet" else self.image_size_cifar


QUICK_PROFILE = BenchProfile(
    epochs=10,
    epochs_resnet=8,
    train_samples=224,
    test_samples=64,
    timesteps=2,
    batch_size=16,
    width_mult=0.125,
    image_size_cifar=16,
    image_size_tiny=16,
    sparsities=(0.9, 0.99),
    lth_rounds=2,
    update_frequency=8,
    learning_rate=0.1,
)

FULL_PROFILE = BenchProfile(
    epochs=30,
    epochs_resnet=15,
    train_samples=512,
    test_samples=128,
    timesteps=5,
    batch_size=16,
    width_mult=0.25,
    image_size_cifar=16,
    image_size_tiny=32,
    sparsities=(0.9, 0.95, 0.98, 0.99),
    lth_rounds=3,
    update_frequency=8,
    learning_rate=0.1,
)

PROFILE = FULL_PROFILE if FULL else QUICK_PROFILE


def profile_config(dataset: str, model: str, method: str, sparsity: float, **overrides):
    """Scaled experiment config under the active bench profile."""
    from repro.experiments import scaled_config

    base = dict(
        epochs=PROFILE.epochs_for(model),
        train_samples=PROFILE.train_samples,
        test_samples=PROFILE.test_samples,
        timesteps=PROFILE.timesteps,
        batch_size=PROFILE.batch_size,
        width_mult=PROFILE.width_mult,
        image_size=PROFILE.image_size_for(dataset),
        update_frequency=PROFILE.update_frequency,
        learning_rate=PROFILE.learning_rate,
        lth_rounds=PROFILE.lth_rounds,
        seed=PROFILE.seed,
    )
    base.update(overrides)
    return scaled_config(dataset, model, method, sparsity, **base)
