"""Single entry point for every benchmark regression gate.

Runs the five ``--check`` gates (kernels, sweep scaling, serving,
streaming, packaging) against their committed ``BENCH_*.json``
baselines in one command::

    PYTHONPATH=src python benchmarks/check_all.py

Each gate re-times its grid and fails if a headline ratio fell more
than 15% below the committed number (see the individual bench modules
for what is gated; absolute times never are).  Exit code is non-zero
if *any* gate fails; gates keep running after a failure so one report
covers everything.

``--only NAME`` runs a subset; ``--baseline-dir`` points somewhere
other than the repo root (e.g. a CI artifact directory); extra
per-gate arguments are fixed fast settings chosen to keep a full run
in CI-friendly time.  ``--json PATH`` additionally writes a
machine-readable summary (per-gate exit codes and the overall verdict)
for CI dashboards; ``-`` prints it to stdout.
"""

import argparse
import importlib.util
import json
import os

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: gate name -> (bench module file, baseline file, fast extra args)
GATES = {
    "kernels": ("bench_kernels", "BENCH_kernels.json", ["--repeats", "10"]),
    "sweep": (
        "bench_sweep_scaling",
        "BENCH_sweep.json",
        ["--epochs", "1", "--train-samples", "32", "--workers", "1", "2"],
    ),
    "serving": ("bench_serving", "BENCH_serving.json", ["--repeats", "5", "--no-server"]),
    "streaming": ("bench_streaming", "BENCH_streaming.json", []),
    "packaging": (
        "bench_packaging",
        "BENCH_packaging.json",
        ["--repeats", "5", "--load-repeats", "3"],
    ),
}


def load_bench(name):
    path = os.path.join(BENCH_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_gate(gate, baseline_dir, extra_args=None):
    """One gate's exit code (2 = baseline missing, treated as failure)."""
    module_name, baseline_name, fast_args = GATES[gate]
    baseline = os.path.join(baseline_dir, baseline_name)
    if not os.path.exists(baseline):
        print(f"[{gate}] MISSING baseline {baseline}")
        return 2
    bench = load_bench(module_name)
    argv = list(fast_args) + list(extra_args or []) + ["--check", baseline]
    print(f"[{gate}] {module_name}.py {' '.join(argv)}")
    return bench.main(argv)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="run every benchmark regression gate against its baseline"
    )
    parser.add_argument(
        "--only", action="append", choices=sorted(GATES), default=None,
        help="gate to run (repeatable; default: all five)",
    )
    parser.add_argument(
        "--baseline-dir", default=REPO_ROOT,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write a machine-readable summary here ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    gates = args.only or sorted(GATES)
    results = {}
    failures = []
    for gate in gates:
        code = run_gate(gate, args.baseline_dir)
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"[{gate}] {status}")
        results[gate] = {
            "exit_code": code,
            "ok": code == 0,
            "baseline": GATES[gate][1],
        }
        if code != 0:
            failures.append(gate)
    if failures:
        print(f"{len(failures)}/{len(gates)} gate(s) failed: {', '.join(failures)}")
    else:
        print(f"all {len(gates)} gate(s) passed")
    if args.json is not None:
        summary = json.dumps({
            "gates": results,
            "failed": failures,
            "ok": not failures,
        }, indent=2, sort_keys=True)
        if args.json == "-":
            print(summary)
        else:
            with open(args.json, "w") as fh:
                fh.write(summary + "\n")
            print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
