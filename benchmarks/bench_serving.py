"""Serving-path benchmark: dense vs compact-structured vs frozen-CSR.

Times end-to-end :class:`~repro.serve.InferenceSession` predictions —
the exact code path ``repro serve`` workers run — across batch sizes
for three execution styles:

* **masked dense**: weights zeroed by the mask but every kernel still
  runs at the dense shape (the naive way to serve a sparse checkpoint);
* **frozen CSR**: unstructured sparsity served through the read-only
  CSR fast path (``execution="csr"``; calibrated ``auto`` dispatch on
  small hosts routes these shapes dense, so the cell forces the route
  it is measuring);
* **compact structured**: filter-pruned models with the dead filters
  *sliced out* (:func:`~repro.sparse.structured.compact_model`), so the
  dense kernels are genuinely smaller.

Emits ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py --out BENCH_serving.json

with p50/p99 latency and throughput per (variant, batch) cell, a
closed-loop :class:`~repro.serve.InferenceServer` measurement, and the
headline speedups the regression gate compares::

    PYTHONPATH=src python benchmarks/bench_serving.py --check BENCH_serving.json

re-times the grid and exits non-zero if a headline speedup fell more
than 15% below the committed numbers (tier-1 runs the gate mechanism
via a smoke test; only ratios are gated, never absolute times).
"""

import argparse
import json
import time

import numpy as np

from repro.serve import InferenceServer, InferenceSession
from repro.snn.models import SpikingConvNet, SpikingMLP
from repro.sparse import SparsityManager, compact_model

#: Unstructured MLP cell: width of the hidden layers.
MLP_WIDTH = 768
#: Unstructured sparsity of the MLP cell (the paper's headline regime).
UNSTRUCTURED_SPARSITY = 0.9
#: Filter sparsity of the structured conv cell.
FILTER_SPARSITY = 0.5
#: Conv cell geometry.
CONV_CHANNELS = (16, 32)
CONV_IMAGE_SIZE = 16
#: Batch sizes swept per variant.
BATCH_SIZES = (1, 4, 8, 16)
#: Headline metrics may regress by at most this fraction before
#: ``--check`` fails.
CHECK_TOLERANCE = 0.15
#: Gated metrics — all ratios (machine-robust), higher is better.
HEADLINE_METRICS = (
    "csr_p50_speedup_at_90",
    "compact_p50_speedup_at_50",
    "batch_throughput_gain",
)


def _unstructured_mask_densities(manager, sparsity):
    return {name: 1.0 - sparsity for name in manager.states}


def build_mlp_session(
    execution,
    width=MLP_WIDTH,
    sparsity=UNSTRUCTURED_SPARSITY,
    max_batch=8,
    timesteps=2,
    seed=0,
):
    """Fresh frozen MLP session; same seed => identical weights/masks."""
    model = SpikingMLP(
        width, 32, hidden=(width, width), timesteps=timesteps,
        rng=np.random.default_rng(seed),
    )
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random(_unstructured_mask_densities(manager, sparsity))
    manager.set_execution(execution)
    return InferenceSession(model, manager, max_batch=max_batch)


def _filter_masks(manager, filter_sparsity, rng):
    """Row (filter) masks for conv layers; linear layers stay dense."""
    masks = {}
    for name, state in manager.states.items():
        shape = state.parameter.data.shape
        mask = np.ones(shape, dtype=np.float32)
        if len(shape) == 4:
            dead = rng.choice(
                shape[0],
                size=max(1, int(round(filter_sparsity * shape[0]))),
                replace=False,
            )
            mask[dead] = 0.0
        masks[name] = mask
    return masks


def build_conv_session(
    compact,
    filter_sparsity=FILTER_SPARSITY,
    channels=CONV_CHANNELS,
    image_size=CONV_IMAGE_SIZE,
    max_batch=8,
    timesteps=2,
    seed=0,
):
    """Fresh frozen ConvNet session, filter-pruned; optionally compacted."""
    model = SpikingConvNet(
        num_classes=16, in_channels=3, image_size=image_size,
        channels=channels, timesteps=timesteps,
        rng=np.random.default_rng(seed),
    )
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    for name, mask in _filter_masks(
        manager, filter_sparsity, np.random.default_rng(seed + 2)
    ).items():
        manager.set_mask(name, mask)
    manager.apply_masks()
    manager.set_execution("dense")
    if compact:
        manager = compact_model(model, manager)
    return InferenceSession(model, manager, max_batch=max_batch)


def time_session(session, inputs, repeats):
    """Per-call wall times (seconds) of ``session.predict`` on ``inputs``."""
    session.predict(inputs)  # warm-up (lazy allocations, cache fills)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        session.predict(inputs)
        times.append(time.perf_counter() - start)
    return times


def _cell(variant, batch, times):
    seconds = np.asarray(times)
    p50 = float(np.percentile(seconds, 50))
    return {
        "variant": variant,
        "batch": batch,
        "p50_ms": p50 * 1e3,
        "p99_ms": float(np.percentile(seconds, 99)) * 1e3,
        "throughput_rps": batch / p50,
    }


def _sample_inputs(session, batch, seed=9):
    shape = None
    for module in session.model.modules():
        weight = getattr(module, "weight", None)
        if weight is None:
            continue
        if weight.data.ndim == 4:
            shape = (batch, weight.data.shape[1],
                     CONV_IMAGE_SIZE, CONV_IMAGE_SIZE)
        else:
            shape = (batch, weight.data.shape[1])
        break
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def _compare_variants(make_baseline, make_candidate, batch_sizes, repeats,
                      baseline_name, candidate_name, tolerance=1e-4):
    """Latency cells for two variants of the same weights, plus a
    correctness guard: a fast wrong serving path is not a fast path."""
    cells = []
    for batch in batch_sizes:
        baseline = make_baseline(batch)
        candidate = make_candidate(batch)
        inputs = _sample_inputs(baseline, batch)
        reference = baseline.predict(inputs)
        produced = candidate.predict(inputs)
        max_err = float(np.abs(produced - reference).max())
        bound = tolerance * max(1.0, float(np.abs(reference).max()))
        if max_err > bound:
            raise AssertionError(
                f"{candidate_name} diverges from {baseline_name}: "
                f"max abs error {max_err:.3e} > {bound:.3e} at batch {batch}"
            )
        cells.append(_cell(baseline_name, batch,
                           time_session(baseline, inputs, repeats)))
        cells.append(_cell(candidate_name, batch,
                           time_session(candidate, inputs, repeats)))
    return cells


def _speedup(cells, baseline_name, candidate_name):
    base = {c["batch"]: c["p50_ms"] for c in cells if c["variant"] == baseline_name}
    cand = {c["batch"]: c["p50_ms"] for c in cells if c["variant"] == candidate_name}
    return max(base[batch] / cand[batch] for batch in base)


def measure_server(session_factory, requests=48, clients=4, workers=2,
                   max_batch=8, sample=None):
    """Closed-loop latency through the full batcher/worker/supervisor
    path (absolute times: reported, never gated)."""
    import threading

    latencies = []
    lock = threading.Lock()

    def client(count):
        for _ in range(count):
            start = time.perf_counter()
            server.predict(sample, timeout=60.0)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    with InferenceServer(
        session_factory, workers=workers, max_batch=max_batch
    ) as server:
        share = requests // clients
        counts = [share + (1 if i < requests % clients else 0)
                  for i in range(clients)]
        threads = [threading.Thread(target=client, args=(count,))
                   for count in counts if count]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
    seconds = np.asarray(latencies)
    return {
        "requests": requests,
        "clients": clients,
        "workers": workers,
        "max_batch": max_batch,
        "p50_ms": float(np.percentile(seconds, 50)) * 1e3,
        "p99_ms": float(np.percentile(seconds, 99)) * 1e3,
        "throughput_rps": len(seconds) / float(seconds.sum() / clients),
        "batches": stats["batches"],
        "restarts": stats["restarts"],
    }


def run_comparison(
    width=MLP_WIDTH,
    sparsity=UNSTRUCTURED_SPARSITY,
    filter_sparsity=FILTER_SPARSITY,
    channels=CONV_CHANNELS,
    batch_sizes=BATCH_SIZES,
    repeats=20,
    include_server=True,
):
    """Full serving grid; returns the BENCH_serving payload."""
    mlp_cells = _compare_variants(
        lambda b: build_mlp_session("dense", width=width, sparsity=sparsity,
                                    max_batch=b),
        lambda b: build_mlp_session("csr", width=width, sparsity=sparsity,
                                    max_batch=b),
        batch_sizes, repeats, "masked_dense", "frozen_csr",
    )
    conv_repeats = max(3, repeats // 2)
    conv_cells = _compare_variants(
        lambda b: build_conv_session(False, filter_sparsity=filter_sparsity,
                                     channels=channels, max_batch=b),
        lambda b: build_conv_session(True, filter_sparsity=filter_sparsity,
                                     channels=channels, max_batch=b),
        batch_sizes, conv_repeats, "masked_dense", "compact_structured",
    )
    csr_throughputs = [c["throughput_rps"] for c in mlp_cells
                       if c["variant"] == "frozen_csr"]
    payload = {
        "bench": "serving_dense_vs_compact_vs_csr",
        "repeats": repeats,
        "mlp": {
            "width": width,
            "sparsity": sparsity,
            "cells": mlp_cells,
        },
        "conv": {
            "channels": list(channels),
            "filter_sparsity": filter_sparsity,
            "cells": conv_cells,
        },
        "csr_p50_speedup_at_90": _speedup(mlp_cells, "masked_dense", "frozen_csr"),
        "compact_p50_speedup_at_50": _speedup(
            conv_cells, "masked_dense", "compact_structured"
        ),
        # Micro-batching is the point of the server: throughput at the
        # best batch size over single-sample throughput.
        "batch_throughput_gain": max(csr_throughputs) / csr_throughputs[0],
    }
    if include_server:
        payload["server"] = measure_server(
            lambda: build_mlp_session("csr", width=width, sparsity=sparsity,
                                      max_batch=8),
            sample=_sample_inputs(
                build_mlp_session("csr", width=width, sparsity=sparsity), 1
            )[0],
        )
    return payload


def check_regressions(baseline, payload, tolerance=CHECK_TOLERANCE):
    """Compare headline speedups against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    Only ratios are compared, so the gate is meaningful across hosts.
    """
    failures = []
    for metric in HEADLINE_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue  # older baselines predate this metric
        current = payload[metric]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{metric}: {current:.3f} < {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serving-path comparison: dense vs compact vs frozen CSR"
    )
    parser.add_argument("--out", default="BENCH_serving.json")
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument("--width", type=int, default=MLP_WIDTH)
    parser.add_argument("--no-server", action="store_true",
                        help="skip the closed-loop server measurement")
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-time the grid and fail (exit 1) if any headline speedup "
             f"regressed more than {CHECK_TOLERANCE:.0%} vs this JSON",
    )
    args = parser.parse_args(argv)
    payload = run_comparison(
        width=args.width, repeats=args.repeats,
        include_server=not args.no_server,
    )
    for group in ("mlp", "conv"):
        for cell in payload[group]["cells"]:
            print(
                f"{group} {cell['variant']:>18s} batch={cell['batch']:>2d}: "
                f"p50 {cell['p50_ms']:7.2f}ms  p99 {cell['p99_ms']:7.2f}ms  "
                f"{cell['throughput_rps']:8.1f} req/s"
            )
    print(
        f"frozen-CSR p50 speedup at {UNSTRUCTURED_SPARSITY:.0%} sparsity: "
        f"{payload['csr_p50_speedup_at_90']:.2f}x"
    )
    print(
        f"compact-structured p50 speedup at {FILTER_SPARSITY:.0%} filter "
        f"sparsity: {payload['compact_p50_speedup_at_50']:.2f}x"
    )
    print(f"batch throughput gain: {payload['batch_throughput_gain']:.2f}x")
    if "server" in payload:
        server = payload["server"]
        print(
            f"server ({server['workers']} workers, {server['clients']} "
            f"clients): p50 {server['p50_ms']:.2f}ms  "
            f"p99 {server['p99_ms']:.2f}ms  "
            f"{server['throughput_rps']:.1f} req/s  "
            f"{server['batches']} batches  {server['restarts']} restarts"
        )
    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regressions(baseline, payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"no headline regression vs {args.check}")
        return 0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
