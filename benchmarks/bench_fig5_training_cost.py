"""Fig. 5 reproduction: normalized training cost of Dense / LTH / NDSNN
on CIFAR-10 and CIFAR-100 with VGG-16 and ResNet-19.

Cost model (paper §IV-C): cost_i = R_s^i * density_i / R_d^i summed over
all training epochs (LTH pays for every round), normalized to the dense
run.  Paper shape: NDSNN trains for a small fraction of the dense cost
(~10-30%) and well under half of LTH's.
"""

import pytest

from repro.experiments import run_method
from repro.experiments.tables import format_table
from repro.train import relative_training_cost

from _profiles import PROFILE, profile_config

COMBOS = (
    ("vgg16", "cifar10"),
    ("resnet19", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet19", "cifar100"),
)

SPARSITY = 0.95


def _run_combo(model: str, dataset: str):
    dense = run_method(profile_config(dataset, model, "dense", SPARSITY))
    dense_rates = dense.spike_rates
    costs = {"dense": 100.0}

    lth = run_method(profile_config(dataset, model, "lth", SPARSITY))
    # The paper's Fig. 5 charges LTH for the winning-ticket retrain (the
    # final round); the all-rounds figure is the honest total and is
    # reported alongside.
    per_round = len(dense_rates)
    final_round = slice(-per_round, None)
    costs["lth (final round)"] = relative_training_cost(
        lth.spike_rates[final_round], lth.densities[final_round], dense_rates, method="lth"
    ).percent_of_dense
    costs["lth (all rounds)"] = relative_training_cost(
        lth.spike_rates, lth.densities, dense_rates, method="lth"
    ).percent_of_dense

    ndsnn = run_method(profile_config(dataset, model, "ndsnn", SPARSITY))
    costs["ndsnn"] = relative_training_cost(
        ndsnn.spike_rates, ndsnn.densities, dense_rates, method="ndsnn"
    ).percent_of_dense
    return costs


@pytest.mark.parametrize("model,dataset", COMBOS)
def test_fig5_training_cost(benchmark, model, dataset):
    costs = benchmark.pedantic(lambda: _run_combo(model, dataset), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["method", "normalized_training_cost_%"],
            [(name, value) for name, value in costs.items()],
            title=f"Fig. 5 bar group: {model} on {dataset} (sparsity {SPARSITY:.0%})",
        )
    )
    # Shape checks — the core efficiency claim of the paper:
    # 1. NDSNN costs a small fraction of dense training.
    assert costs["ndsnn"] < 60.0, f"NDSNN cost {costs['ndsnn']:.1f}% of dense"
    # 2. NDSNN is cheaper than LTH under either accounting.
    assert costs["ndsnn"] < costs["lth (final round)"]
    assert costs["ndsnn"] < costs["lth (all rounds)"]
    # 3. The all-rounds LTH total exceeds its final-round cost (the
    #    multi-round overhead the paper's Fig. 1 grey area highlights).
    assert costs["lth (all rounds)"] > costs["lth (final round)"]
