"""Streaming-inference benchmark: sustained events/sec over stateful sessions.

Times the exact code path ``repro stream`` runs — a
:class:`~repro.stream.session.StreamSession` consuming a deterministic
multiplexed telemetry feed — across three cells:

* **masked dense, tumbling**: persistent per-stream state, one
  ``forward_once`` per event, masked weights served dense;
* **frozen CSR, tumbling**: same session over ``execution="csr"`` —
  the frozen sparse fast path the serving stack uses;
* **masked dense, sliding (stride=1)**: dense readout cadence; every
  emission replays the retained window tail, which is what stateful
  tumbling execution avoids.

Emits ``BENCH_streaming.json``::

    PYTHONPATH=src python benchmarks/bench_streaming.py --out BENCH_streaming.json

with sustained events/sec per cell, the headline ratios the regression
gate compares, and a feed-wide bit-identity verdict (every emitted
window must equal the offline ``forward_window`` pass over the same
frames)::

    PYTHONPATH=src python benchmarks/bench_streaming.py --check BENCH_streaming.json

re-times the grid and exits non-zero if a headline ratio fell more
than 15% below the committed numbers or any window diverged (tier-1
runs the gate mechanism via a smoke test; only ratios and correctness
are gated, never absolute times).
"""

import argparse
import json
import time

import numpy as np

from repro.data.telemetry import make_telemetry_stream
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.stream import StreamSession

#: Feed geometry (events = per device).
NUM_STREAMS = 4
NUM_CHANNELS = 64
NUM_EVENTS = 192
#: Readout window (events per emission).
WINDOW = 8
#: Model geometry.
HIDDEN = 256
NUM_CLASSES = 16
#: Mask sparsity of the streamed model (the paper's headline regime).
SPARSITY = 0.9
#: Headline metrics may regress by at most this fraction before
#: ``--check`` fails.
CHECK_TOLERANCE = 0.15
#: Gated metrics — ratios only (machine-robust), higher is better.
HEADLINE_METRICS = (
    "csr_event_speedup",
    "tumbling_vs_sliding_speedup",
)


def build_session(execution, stride=None, window=WINDOW, channels=NUM_CHANNELS,
                  hidden=HIDDEN, sparsity=SPARSITY, seed=0):
    """Fresh frozen streaming session; same seed => identical weights."""
    model = SpikingMLP(
        channels, NUM_CLASSES, hidden=(hidden, hidden), timesteps=window,
        rng=np.random.default_rng(seed),
    )
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random({name: 1.0 - sparsity for name in manager.states})
    manager.set_execution(execution)
    manager.freeze()
    return StreamSession(model, window=window, stride=stride, manager=manager)


def time_feed(session, feed_events, repeats, verify=False):
    """Sustained events/sec over ``repeats`` fresh passes of the feed.

    With ``verify=True`` the first pass checks every emitted window
    against the offline ``forward_window`` oracle (bit-exact).
    """
    best = 0.0
    identical = True
    for attempt in range(repeats):
        for stream_id in list(session.stream_ids):
            session.drop_stream(stream_id)
        start = time.perf_counter()
        results = [
            result for event in feed_events
            if (result := session.process(event)) is not None
        ]
        elapsed = time.perf_counter() - start
        best = max(best, len(feed_events) / elapsed)
        if verify and attempt == 0:
            for result in results:
                reference = session.offline_reference(result.frames)
                if not np.array_equal(reference, result.logits):
                    identical = False
    return best, len(results), identical


def run_streaming(
    streams=NUM_STREAMS,
    channels=NUM_CHANNELS,
    events=NUM_EVENTS,
    window=WINDOW,
    hidden=HIDDEN,
    sparsity=SPARSITY,
    repeats=5,
):
    """Full streaming grid; returns the BENCH_streaming payload."""
    feed = list(
        make_telemetry_stream(
            num_streams=streams, num_channels=channels,
            num_events=events, seed=0,
        )
    )
    cells = []
    dense_rate, windows, dense_identical = time_feed(
        build_session("dense", window=window, channels=channels,
                      hidden=hidden, sparsity=sparsity),
        feed, repeats, verify=True,
    )
    cells.append({
        "variant": "masked_dense_tumbling",
        "events_per_sec": dense_rate,
        "windows": windows,
        "bit_identical": dense_identical,
    })
    csr_rate, _, csr_identical = time_feed(
        build_session("csr", window=window, channels=channels,
                      hidden=hidden, sparsity=sparsity),
        feed, repeats, verify=True,
    )
    cells.append({
        "variant": "frozen_csr_tumbling",
        "events_per_sec": csr_rate,
        "windows": windows,
        "bit_identical": csr_identical,
    })
    sliding_rate, sliding_windows, sliding_identical = time_feed(
        build_session("dense", stride=1, window=window, channels=channels,
                      hidden=hidden, sparsity=sparsity),
        feed, max(2, repeats // 2), verify=True,
    )
    cells.append({
        "variant": "masked_dense_sliding1",
        "events_per_sec": sliding_rate,
        "windows": sliding_windows,
        "bit_identical": sliding_identical,
    })
    return {
        "bench": "streaming_stateful_sessions",
        "streams": streams,
        "channels": channels,
        "events_per_stream": events,
        "window": window,
        "hidden": hidden,
        "sparsity": sparsity,
        "repeats": repeats,
        "cells": cells,
        # The headline absolute number the ISSUE asks for (reported,
        # never gated — absolute rates are machine-specific).
        "sustained_events_per_sec": csr_rate,
        "csr_event_speedup": csr_rate / dense_rate,
        "tumbling_vs_sliding_speedup": dense_rate / sliding_rate,
        "all_bit_identical": all(cell["bit_identical"] for cell in cells),
    }


def check_regressions(baseline, payload, tolerance=CHECK_TOLERANCE):
    """Compare headline ratios against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    Streaming must also stay bit-identical to offline batch inference —
    a fast diverging stream is not a fast stream.
    """
    failures = []
    for metric in HEADLINE_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue  # older baselines predate this metric
        current = payload[metric]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{metric}: {current:.3f} < {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
    if not payload["all_bit_identical"]:
        failures.append(
            "all_bit_identical: a streamed window diverged from the "
            "offline forward_window reference"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="stateful streaming inference: sustained events/sec"
    )
    parser.add_argument("--out", default="BENCH_streaming.json")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--streams", type=int, default=NUM_STREAMS)
    parser.add_argument("--channels", type=int, default=NUM_CHANNELS)
    parser.add_argument("--events", type=int, default=NUM_EVENTS)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--hidden", type=int, default=HIDDEN)
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-time the grid and fail (exit 1) if any headline ratio "
             f"regressed more than {CHECK_TOLERANCE:.0%} vs this JSON",
    )
    args = parser.parse_args(argv)
    payload = run_streaming(
        streams=args.streams, channels=args.channels, events=args.events,
        window=args.window, hidden=args.hidden, repeats=args.repeats,
    )
    for cell in payload["cells"]:
        print(
            f"{cell['variant']:>24s}: {cell['events_per_sec']:9.0f} ev/s  "
            f"{cell['windows']:4d} windows  "
            f"bit_identical={cell['bit_identical']}"
        )
    print(f"sustained (frozen CSR): {payload['sustained_events_per_sec']:.0f} ev/s")
    print(f"CSR event speedup at {SPARSITY:.0%}: {payload['csr_event_speedup']:.2f}x")
    print(
        "tumbling vs sliding(1) speedup: "
        f"{payload['tumbling_vs_sliding_speedup']:.2f}x"
    )
    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regressions(baseline, payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"no headline regression vs {args.check}")
        return 0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0 if payload["all_bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
