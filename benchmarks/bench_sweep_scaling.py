"""Sweep-scaling benchmark: local pool vs the durable queue backend.

Times one method-grid sweep at several worker counts for both sweep
backends, and re-verifies at every cell that the results are
bit-identical to the sequential single-process reference — the
guarantee the queue backend must preserve while adding durability.

Emits ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --out BENCH_sweep.json

The default grid is 8 configs (4 methods x 2 sparsities) at the quick
CPU profile; ``--epochs``/``--train-samples`` scale the per-job cost so
the parallel speedup is visible above process-startup overhead.
"""

import argparse
import json
import os
import time

from repro.experiments import run_sweep, scaled_config, sweep_configs

METHODS = ("ndsnn", "set", "rigl", "gmp")
SPARSITIES = (0.9, 0.95)


def build_grid(epochs: int, train_samples: int):
    base = scaled_config(
        "cifar10", "convnet", METHODS[0], SPARSITIES[0],
        epochs=epochs, train_samples=train_samples,
        test_samples=max(16, train_samples // 4),
        timesteps=2, batch_size=16, update_frequency=4,
    )
    return sweep_configs(base, list(METHODS), sparsities=list(SPARSITIES))


def outcome_fingerprint(outcome):
    return (
        outcome.config.method,
        outcome.config.sparsity,
        outcome.final_accuracy,
        outcome.best_accuracy,
        outcome.final_sparsity,
        tuple(tuple(sorted(stats.as_dict().items())) for stats in outcome.history),
    )


def time_sweep(configs, backend: str, jobs: int):
    start = time.perf_counter()
    outcomes = run_sweep(configs, jobs=jobs, backend=backend)
    return time.perf_counter() - start, outcomes


def run_scaling(epochs: int, train_samples: int, worker_counts):
    configs = build_grid(epochs, train_samples)
    reference_seconds, reference = time_sweep(configs, "local", jobs=1)
    reference_prints = [outcome_fingerprint(outcome) for outcome in reference]
    cells = []
    for backend in ("local", "queue"):
        for jobs in worker_counts:
            if backend == "local" and jobs == 1:
                seconds, identical = reference_seconds, True
            else:
                seconds, outcomes = time_sweep(configs, backend, jobs)
                identical = [
                    outcome_fingerprint(outcome) for outcome in outcomes
                ] == reference_prints
            cells.append(
                {
                    "backend": backend,
                    "jobs": jobs,
                    "seconds": seconds,
                    "speedup_vs_sequential": reference_seconds / seconds,
                    "bit_identical": identical,
                }
            )
    queue_cells = [c for c in cells if c["backend"] == "queue"]
    return {
        "bench": "sweep_scaling_local_vs_queue",
        # Worker counts beyond the core count only add overhead, so the
        # speedup columns are meaningful relative to this.
        "cpu_count": os.cpu_count(),
        "grid_configs": len(configs),
        "methods": list(METHODS),
        "sparsities": list(SPARSITIES),
        "epochs": epochs,
        "train_samples": train_samples,
        "sequential_seconds": reference_seconds,
        "cells": cells,
        "all_bit_identical": all(c["bit_identical"] for c in cells),
        "best_queue_speedup": max(c["speedup_vs_sequential"] for c in queue_cells),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description="sweep backend scaling comparison")
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--train-samples", type=int, default=128)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    args = parser.parse_args(argv)
    payload = run_scaling(args.epochs, args.train_samples, args.workers)
    for cell in payload["cells"]:
        print(
            f"{cell['backend']:>5s} jobs={cell['jobs']}: "
            f"{cell['seconds']:6.2f}s  "
            f"({cell['speedup_vs_sequential']:.2f}x vs sequential, "
            f"bit-identical: {cell['bit_identical']})"
        )
    print(f"best queue-backend speedup: {payload['best_queue_speedup']:.2f}x")
    if not payload["all_bit_identical"]:
        print("WARNING: backend results diverged from the sequential reference")
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.out}")
    return 0 if payload["all_bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
