"""Sweep-scaling benchmark: local pool vs the durable queue backend.

Times one method-grid sweep at several worker counts for both sweep
backends, and re-verifies at every cell that the results are
bit-identical to the sequential single-process reference — the
guarantee the queue backend must preserve while adding durability.

Emits ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --out BENCH_sweep.json

The default grid is 8 configs (4 methods x 2 sparsities) at the quick
CPU profile; ``--epochs``/``--train-samples`` scale the per-job cost so
the parallel speedup is visible above process-startup overhead, and
``--methods``/``--sparsities`` shrink the grid for quick gate runs.

A regression gate over the committed numbers::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --check BENCH_sweep.json

re-times the grid and exits non-zero if the headline queue-backend
speedup regressed by more than 15% or any backend's results diverge
from the sequential reference (tier-1 runs the gate mechanism via a
smoke test; only the speedup ratio is gated, never absolute times).
"""

import argparse
import json
import os
import time

from repro.experiments import run_sweep, scaled_config, sweep_configs

METHODS = ("ndsnn", "set", "rigl", "gmp")
SPARSITIES = (0.9, 0.95)
#: The headline speedup may regress by at most this fraction before
#: ``--check`` fails.
CHECK_TOLERANCE = 0.15
#: Headline metrics the regression gate compares (higher is better).
HEADLINE_METRICS = ("best_queue_speedup",)


def build_grid(epochs: int, train_samples: int,
               methods=METHODS, sparsities=SPARSITIES):
    base = scaled_config(
        "cifar10", "convnet", methods[0], sparsities[0],
        epochs=epochs, train_samples=train_samples,
        test_samples=max(16, train_samples // 4),
        timesteps=2, batch_size=16, update_frequency=4,
    )
    return sweep_configs(base, list(methods), sparsities=list(sparsities))


def outcome_fingerprint(outcome):
    return (
        outcome.config.method,
        outcome.config.sparsity,
        outcome.final_accuracy,
        outcome.best_accuracy,
        outcome.final_sparsity,
        tuple(tuple(sorted(stats.as_dict().items())) for stats in outcome.history),
    )


def time_sweep(configs, backend: str, jobs: int):
    start = time.perf_counter()
    outcomes = run_sweep(configs, jobs=jobs, backend=backend)
    return time.perf_counter() - start, outcomes


def run_scaling(epochs: int, train_samples: int, worker_counts,
                methods=METHODS, sparsities=SPARSITIES):
    configs = build_grid(epochs, train_samples,
                         methods=methods, sparsities=sparsities)
    reference_seconds, reference = time_sweep(configs, "local", jobs=1)
    reference_prints = [outcome_fingerprint(outcome) for outcome in reference]
    cells = []
    for backend in ("local", "queue"):
        for jobs in worker_counts:
            if backend == "local" and jobs == 1:
                seconds, identical = reference_seconds, True
            else:
                seconds, outcomes = time_sweep(configs, backend, jobs)
                identical = [
                    outcome_fingerprint(outcome) for outcome in outcomes
                ] == reference_prints
            cells.append(
                {
                    "backend": backend,
                    "jobs": jobs,
                    "seconds": seconds,
                    "speedup_vs_sequential": reference_seconds / seconds,
                    "bit_identical": identical,
                }
            )
    queue_cells = [c for c in cells if c["backend"] == "queue"]
    return {
        "bench": "sweep_scaling_local_vs_queue",
        # Worker counts beyond the core count only add overhead, so the
        # speedup columns are meaningful relative to this.
        "cpu_count": os.cpu_count(),
        "grid_configs": len(configs),
        "methods": list(methods),
        "sparsities": list(sparsities),
        "epochs": epochs,
        "train_samples": train_samples,
        "sequential_seconds": reference_seconds,
        "cells": cells,
        "all_bit_identical": all(c["bit_identical"] for c in cells),
        "best_queue_speedup": max(c["speedup_vs_sequential"] for c in queue_cells),
    }


def check_regressions(baseline, payload, tolerance=CHECK_TOLERANCE):
    """Compare headline metrics against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass):
    the queue-backend speedup may fall at most ``tolerance`` below the
    committed ratio, and every backend must still reproduce the
    sequential reference bit-for-bit.
    """
    failures = []
    for metric in HEADLINE_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue  # older baselines predate this metric
        current = payload[metric]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{metric}: {current:.3f} < {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
    if not payload["all_bit_identical"]:
        failures.append(
            "all_bit_identical: backend results diverged from the "
            "sequential reference"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="sweep backend scaling comparison")
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--train-samples", type=int, default=128)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--methods", nargs="+", default=list(METHODS))
    parser.add_argument("--sparsities", type=float, nargs="+",
                        default=list(SPARSITIES))
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-time the grid and fail (exit 1) if the headline "
             f"queue-throughput speedup regressed more than "
             f"{CHECK_TOLERANCE:.0%} vs this JSON",
    )
    args = parser.parse_args(argv)
    payload = run_scaling(
        args.epochs, args.train_samples, args.workers,
        methods=tuple(args.methods), sparsities=tuple(args.sparsities),
    )
    for cell in payload["cells"]:
        print(
            f"{cell['backend']:>5s} jobs={cell['jobs']}: "
            f"{cell['seconds']:6.2f}s  "
            f"({cell['speedup_vs_sequential']:.2f}x vs sequential, "
            f"bit-identical: {cell['bit_identical']})"
        )
    print(f"best queue-backend speedup: {payload['best_queue_speedup']:.2f}x")
    if not payload["all_bit_identical"]:
        print("WARNING: backend results diverged from the sequential reference")
    if args.check is not None:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_regressions(baseline, payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"no headline regression vs {args.check}")
        return 0
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.out}")
    return 0 if payload["all_bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
