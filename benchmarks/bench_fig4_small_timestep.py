"""Fig. 4 reproduction: NDSNN vs LTH at a small timestep (T=2) across
sparsity levels on the four model/dataset combinations.

Paper shape: NDSNN beats LTH at every sparsity with the cheap T=2
training configuration, with the largest gaps at 99% sparsity.
"""

import pytest

from repro.experiments import run_method
from repro.experiments.tables import format_table

from _profiles import PROFILE, profile_config

COMBOS = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet19", "cifar10"),
    ("resnet19", "cifar100"),
)


def _run_combo(model: str, dataset: str):
    rows = []
    gaps = []
    for sparsity in PROFILE.sparsities:
        ndsnn = run_method(
            profile_config(dataset, model, "ndsnn", sparsity, timesteps=2)
        ).final_accuracy
        lth = run_method(
            profile_config(dataset, model, "lth", sparsity, timesteps=2)
        ).final_accuracy
        rows.append((f"{sparsity:.0%}", ndsnn, lth, ndsnn - lth))
        gaps.append(ndsnn - lth)
    return rows, gaps


@pytest.mark.parametrize("model,dataset", COMBOS)
def test_fig4_small_timestep(benchmark, model, dataset):
    rows, gaps = benchmark.pedantic(lambda: _run_combo(model, dataset), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["sparsity", "NDSNN(T=2)", "LTH(T=2)", "gap"],
            rows,
            title=f"Fig. 4 panel: {model} on {dataset} (timestep=2)",
        )
    )
    # Shape check (soft): across the sweep NDSNN should not lose to LTH
    # on average — at CPU scale individual cells are noisy.
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap > -0.15, f"NDSNN lost to LTH on average by {-mean_gap:.3f}"
