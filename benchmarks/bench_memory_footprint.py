"""Section III-D memory-footprint model (supplementary bench).

Regenerates the training-memory comparison implied by the paper's
analysis: footprint as a function of sparsity and timesteps, for the
real (scaled) VGG-16 and ResNet-19 weight inventories, plus the
inference footprints on the cited neuromorphic platforms.
"""

import numpy as np
import pytest

from repro.experiments.tables import format_table
from repro.snn.models import build_model
from repro.train import (
    PLATFORM_WEIGHT_BITS,
    dense_training_footprint_bits,
    inference_footprint_bits,
    model_footprint,
)

SPARSITIES = (0.0, 0.5, 0.9, 0.95, 0.98, 0.99)


def _run_footprints():
    results = {}
    for name in ("vgg16", "resnet19"):
        model = build_model(name, num_classes=10, image_size=32, width_mult=0.125)
        reports = [model_footprint(model, sparsity=s, timesteps=5) for s in SPARSITIES]
        results[name] = reports
    return results


def test_memory_footprint_model(benchmark):
    results = benchmark.pedantic(_run_footprints, rounds=1, iterations=1)
    for name, reports in results.items():
        dense_bits = dense_training_footprint_bits(reports[0].total_weights, 5)
        rows = [
            (
                f"{report.sparsity:.0%}",
                report.megabytes,
                report.bits / dense_bits,
            )
            for report in reports
        ]
        print()
        print(
            format_table(
                ["sparsity", "train_footprint_MB", "vs_dense"],
                rows,
                title=f"§III-D training memory: {name} (T=5, fp32, 32-bit idx)",
            )
        )
        footprints = [report.bits for report in reports]
        assert all(b <= a for a, b in zip(footprints, footprints[1:])), (
            "footprint must fall monotonically with sparsity"
        )
        # At 99% sparsity the memory saving is ~two orders of magnitude.
        assert footprints[-1] < 0.05 * footprints[0]


def test_inference_platform_presets(benchmark):
    def run():
        model = build_model("vgg16", num_classes=10, image_size=32, width_mult=0.125)
        total = model_footprint(model, 0.0, 1).total_weights
        return {
            platform: inference_footprint_bits(total, 0.99, platform=platform) / 8 / 1024
            for platform in PLATFORM_WEIGHT_BITS
        }

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["platform", "deploy_KB_at_99%"],
            sorted(sizes.items()),
            title="Inference footprint by platform (§III-D citations)",
        )
    )
    assert sizes["hicann"] < sizes["loihi"] < sizes["gpu_fp32"]
