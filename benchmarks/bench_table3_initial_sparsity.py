"""Table III reproduction: effect of the initial sparsity theta_i on
final accuracy (NDSNN design-space exploration, paper §IV-D-1).

Paper shape: accuracy is fairly flat across theta_i in {0.5..0.9}; mid
values (0.6-0.8) are a good accuracy/cost trade-off, which is why the
paper picks from that range.  Lower theta_i also means higher average
density, i.e. more training FLOPs — both are reported here.
"""

import pytest

from repro.experiments import run_method
from repro.experiments.tables import format_table
from repro.train import training_flops_estimate

from _profiles import PROFILE, profile_config

INITIAL_SPARSITIES = (0.5, 0.6, 0.7, 0.8, 0.9) if __import__("os").environ.get("REPRO_BENCH_FULL") else (0.5, 0.7, 0.9)
TARGETS = (0.95, 0.98)


def _run_table3(model: str, dataset: str):
    rows = []
    accuracies = {}
    for target in TARGETS:
        for theta_i in INITIAL_SPARSITIES:
            outcome = run_method(
                profile_config(dataset, model, "ndsnn", target, initial_sparsity=theta_i)
            )
            # FLOPs proxy from the per-epoch density trace.
            total_weights = 1.0  # relative units: density trace is enough
            flops = training_flops_estimate(
                [d * total_weights for d in outcome.densities],
                timesteps=PROFILE.timesteps,
                samples_per_epoch=PROFILE.train_samples,
            )
            rows.append((f"{target:.2f}", f"{theta_i:.1f}", outcome.final_accuracy, flops))
            accuracies[(target, theta_i)] = outcome.final_accuracy
    return rows, accuracies


@pytest.mark.parametrize("model,dataset", [("vgg16", "cifar10"), ("resnet19", "cifar100")])
def test_table3_initial_sparsity(benchmark, model, dataset):
    rows, accuracies = benchmark.pedantic(
        lambda: _run_table3(model, dataset), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["target", "initial_sparsity", "test_acc", "train_flops(rel)"],
            rows,
            title=f"Table III: initial-sparsity ablation, {model} on {dataset}",
        )
    )
    # Shape check 1: lower theta_i never *reduces* training FLOPs.
    for target in TARGETS:
        flops = [row[3] for row in rows if row[0] == f"{target:.2f}"]
        assert all(b <= a + 1e-6 for a, b in zip(flops, flops[1:])), (
            "FLOPs should decrease as initial sparsity rises"
        )
    # Shape check 2 (soft): the accuracy spread across theta_i is bounded —
    # the paper's point is that the knob is forgiving.
    for target in TARGETS:
        values = [accuracies[(target, theta)] for theta in INITIAL_SPARSITIES]
        assert max(values) - min(values) < 0.5
