"""Fig. 1 reproduction: sparsity-vs-epoch curves of the three
sparsification families on VGG-16/CIFAR-10.

Paper shape:
* train-prune-retrain (ADMM): sparsity is 0 for the dense phase, then
  jumps to the target (orange curve);
* iterative pruning (LTH): sparsity rises in steps across rounds,
  spending many early epochs near-dense (blue curve);
* NDSNN: starts already sparse and ramps to the target (green curve),
  so its *average training sparsity* is far higher than both.
"""

import pytest

from repro.experiments import run_method
from repro.experiments.tables import ascii_plot, format_table

from _profiles import PROFILE, profile_config


def _trace(method: str, sparsity: float = 0.95):
    config = profile_config("cifar10", "vgg16", method, sparsity)
    outcome = run_method(config)
    return [stats.sparsity for stats in outcome.history]


def _run_fig1():
    return {
        "admm (train-prune-retrain)": _trace("admm"),
        "lth (iterative pruning)": _trace("lth"),
        "ndsnn (ours)": _trace("ndsnn"),
    }


def test_fig1_sparsity_schedules(benchmark):
    traces = benchmark.pedantic(_run_fig1, rounds=1, iterations=1)
    print()
    print(ascii_plot(traces, title="Fig. 1: training sparsity vs epoch (VGG-16/CIFAR-10)"))
    averages = {name: sum(t) / len(t) for name, t in traces.items()}
    print(
        format_table(
            ["method", "avg_training_sparsity", "final_sparsity"],
            [(name, averages[name], trace[-1]) for name, trace in traces.items()],
        )
    )
    ndsnn = traces["ndsnn (ours)"]
    lth = traces["lth (iterative pruning)"]
    admm = traces["admm (train-prune-retrain)"]
    # Shape checks, exactly the paper's grey-area argument:
    # 1. NDSNN trains sparse from epoch 0.
    assert ndsnn[0] > 0.4
    # 2. ADMM's dense phase has zero sparsity.
    assert admm[0] == 0.0
    # 3. LTH round 1 is dense.
    assert lth[0] == 0.0
    # 4. NDSNN's average training sparsity dominates both baselines.
    assert averages["ndsnn (ours)"] > averages["lth (iterative pruning)"]
    assert averages["ndsnn (ours)"] > averages["admm (train-prune-retrain)"]
    # 5. NDSNN sparsity is non-decreasing (connections only die off).
    assert all(b >= a - 1e-9 for a, b in zip(ndsnn, ndsnn[1:]))
