"""Packed-artifact benchmark: .reprom size, cold-load, quantized serving.

Measures what :mod:`repro.sparse.packaging` buys over checkpoint-based
serving on the standard bench MLP (width 768, 90% unstructured
sparsity):

* **artifact size** — int8 + delta/varint ``.reprom`` bytes vs the
  float32 ``save_checkpoint`` pair (``.npz`` + ``.json``);
* **cold load** — wall time from artifact on disk to a frozen
  :class:`~repro.serve.InferenceSession` ready to predict: npz
  decompress + re-init + mask load vs mmap + zero-copy bind;
* **quantized serving** — throughput of the int8 package (served at the
  default f32 runtime, values pre-scaled at load) against the
  frozen-f32 checkpoint session, with a hard max-abs-error assert —
  a fast wrong artifact is not a fast artifact;
* **f16 / int8 runtime cells** — the memory-minimal on-the-fly
  dequantization path, reported for the docs trade-off table (absolute
  times reported, never gated).

Emits ``BENCH_packaging.json``::

    PYTHONPATH=src python benchmarks/bench_packaging.py --out BENCH_packaging.json

``--check BENCH_packaging.json`` re-measures and exits non-zero if a
headline ratio fell more than 15% below the committed number (ratios
only; absolute times are host-dependent).
"""

import argparse
import json
import os
import tempfile
import time
from types import SimpleNamespace

import numpy as np

from repro.serve import InferenceSession
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.sparse.packaging import PackedModel, build_packed_runtime, write_package
from repro.train.checkpoint import load_inference_state, save_checkpoint

#: Bench MLP geometry — identical to bench_serving's unstructured cell.
MLP_WIDTH = 768
NUM_CLASSES = 32
SPARSITY = 0.9
TIMESTEPS = 2
BATCH = 8
#: int8 output error bound vs the frozen-f32 session (hard assert).
INT8_ERROR_BOUND = 1e-2
CHECK_TOLERANCE = 0.15
#: Gated metrics — ratios only, higher is better.
HEADLINE_METRICS = (
    "artifact_size_ratio",
    "cold_load_speedup",
    "int8_throughput_ratio",
)

MODEL_SPEC = {
    "model": "mlp",
    "kwargs": {
        "in_features": MLP_WIDTH,
        "num_classes": NUM_CLASSES,
        "hidden": [MLP_WIDTH, MLP_WIDTH],
        "timesteps": TIMESTEPS,
    },
    "encoder": "direct",
    "seed": 0,
}


def build_masked_mlp(seed=0, width=MLP_WIDTH, sparsity=SPARSITY):
    """The bench model with random unstructured masks, CSR execution."""
    model = SpikingMLP(
        width, NUM_CLASSES, hidden=(width, width), timesteps=TIMESTEPS,
        rng=np.random.default_rng(seed),
    )
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random({name: 1.0 - sparsity for name in manager.states})
    manager.set_execution("csr")
    model.eval()
    return model, manager


def checkpoint_bytes(path):
    """Total on-disk bytes of a save_checkpoint pair (.npz + .json)."""
    total = os.path.getsize(path)
    sidecar = os.path.splitext(path)[0] + ".json"
    if os.path.exists(sidecar):
        total += os.path.getsize(sidecar)
    return total


def load_checkpoint_session(path, width=MLP_WIDTH, max_batch=BATCH):
    """Checkpoint → frozen session, the registry ``load_checkpoint`` way.

    The bench MLP is not an experiment-config model, so this replicates
    the factory body: real init draws, npz decompress, mask load,
    freeze.  That is exactly the cold-start cost ``load_package``
    competes against.
    """
    model = SpikingMLP(
        width, NUM_CLASSES, hidden=(width, width), timesteps=TIMESTEPS,
        rng=np.random.default_rng(0),
    )
    state = load_inference_state(path, model)
    manager = SparsityManager(model)
    if state.masks:
        manager.load_masks(state.masks)
    if state.calibration is not None:
        manager.calibration = state.calibration
    manager.set_execution("csr")
    return InferenceSession(model, manager, max_batch=max_batch)


def load_package_session(path, precision=None, max_batch=BATCH):
    """Package → frozen session (mmap open included: true cold load)."""
    package = PackedModel(path)
    model, manager = build_packed_runtime(package, precision=precision)
    return InferenceSession(model, manager, max_batch=max_batch)


def time_cold_load(loader, repeats):
    """Median seconds of a cold session build (fresh call each time)."""
    loader()  # warm the page cache / imports so both sides start equal
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        loader()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def time_predict(session, inputs, repeats):
    session.predict(inputs)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        session.predict(inputs)
        times.append(time.perf_counter() - start)
    seconds = float(np.percentile(times, 50))
    return {
        "p50_ms": seconds * 1e3,
        "throughput_rps": inputs.shape[0] / seconds,
    }


def time_interleaved(session_a, session_b, inputs, repeats):
    """p50 cells for two sessions, measured A/B-interleaved.

    The gated int8-vs-f32 throughput ratio compares two nearly equal
    code paths, so host drift between two separate timing loops easily
    exceeds the real difference; alternating calls cancels it.
    """
    session_a.predict(inputs)
    session_b.predict(inputs)
    times_a, times_b = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        session_a.predict(inputs)
        times_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        session_b.predict(inputs)
        times_b.append(time.perf_counter() - start)
    cells = []
    for times in (times_a, times_b):
        seconds = float(np.percentile(times, 50))
        cells.append({
            "p50_ms": seconds * 1e3,
            "throughput_rps": inputs.shape[0] / seconds,
        })
    return cells


def run_comparison(repeats=20, load_repeats=5, width=MLP_WIDTH):
    """Full packaging grid; returns the BENCH_packaging payload."""
    model, manager = build_masked_mlp(width=width)
    spec = dict(MODEL_SPEC)
    spec["kwargs"] = dict(MODEL_SPEC["kwargs"],
                          in_features=width, hidden=[width, width])
    inputs = np.random.default_rng(9).standard_normal(
        (BATCH, width)).astype(np.float32)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "model.npz")
        save_checkpoint(ckpt, model, method=SimpleNamespace(masks=manager))
        packages = {}
        for precision in ("f32", "f16", "int8"):
            out = os.path.join(tmp, f"model_{precision}.reprom")
            summary = write_package(out, model, manager, spec,
                                    precision=precision)
            packages[precision] = summary

        ckpt_bytes = checkpoint_bytes(ckpt)
        int8_path = packages["int8"]["path"]

        # --- cold load: checkpoint factory vs package mmap ---------------
        ckpt_load_s = time_cold_load(
            lambda: load_checkpoint_session(ckpt, width=width), load_repeats)
        pkg_load_s = time_cold_load(
            lambda: load_package_session(int8_path), load_repeats)

        # --- serving: frozen-f32 checkpoint vs packed runtimes ----------
        ckpt_session = load_checkpoint_session(ckpt, width=width)
        reference = ckpt_session.predict(inputs)
        errors = {}
        # The gated pair runs interleaved with a higher floor on
        # repeats: both sides are sub-millisecond f32 CSR paths, so the
        # ratio needs tighter statistics than the reported-only cells.
        int8_f32_session = load_package_session(packages["int8"]["path"])
        errors["int8_runtime_f32"] = float(
            np.abs(int8_f32_session.predict(inputs) - reference).max())
        ckpt_cell, int8_cell = time_interleaved(
            ckpt_session, int8_f32_session, inputs, max(repeats, 60))
        cells = {
            "checkpoint_f32": ckpt_cell,
            "int8_runtime_f32": int8_cell,
        }
        for precision, runtime in (
            ("int8", "int8"), ("f16", "f16"), ("f32", None),
        ):
            label = f"{precision}_runtime_{runtime or 'f32'}"
            session = load_package_session(
                packages[precision]["path"], precision=runtime)
            produced = session.predict(inputs)
            errors[label] = float(np.abs(produced - reference).max())
            cells[label] = time_predict(session, inputs, repeats)

        int8_error = errors["int8_runtime_f32"]
        if int8_error > INT8_ERROR_BOUND:
            raise AssertionError(
                f"int8 serving error {int8_error:.3e} exceeds the "
                f"{INT8_ERROR_BOUND:.0e} bound — quantization is broken"
            )

        payload = {
            "bench": "packaging_size_coldload_quantized",
            "width": width,
            "sparsity": SPARSITY,
            "repeats": repeats,
            "checkpoint_bytes": ckpt_bytes,
            "package_bytes": {
                precision: packages[precision]["file_bytes"]
                for precision in packages
            },
            "cold_load": {
                "checkpoint_s": ckpt_load_s,
                "package_s": pkg_load_s,
            },
            "cells": cells,
            "max_abs_error": errors,
            "artifact_size_ratio":
                ckpt_bytes / packages["int8"]["file_bytes"],
            "cold_load_speedup": ckpt_load_s / pkg_load_s,
            "int8_throughput_ratio":
                cells["int8_runtime_f32"]["throughput_rps"]
                / cells["checkpoint_f32"]["throughput_rps"],
        }
    return payload


def check_regressions(baseline, payload, tolerance=CHECK_TOLERANCE):
    """Headline-ratio failures vs a committed baseline (empty = pass)."""
    failures = []
    for metric in HEADLINE_METRICS:
        base = baseline.get(metric)
        if base is None:
            continue
        current = payload[metric]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{metric}: {current:.3f} < {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="packed .reprom artifact: size, cold load, quantized serving"
    )
    parser.add_argument("--out", default="BENCH_packaging.json")
    parser.add_argument("--repeats", type=int, default=20)
    parser.add_argument("--load-repeats", type=int, default=5)
    parser.add_argument("--width", type=int, default=MLP_WIDTH)
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-measure and fail (exit 1) if a headline ratio regressed "
             f"more than {CHECK_TOLERANCE:.0%} vs this JSON",
    )
    args = parser.parse_args(argv)
    payload = run_comparison(repeats=args.repeats,
                             load_repeats=args.load_repeats,
                             width=args.width)
    print(f"checkpoint (f32 npz):   {payload['checkpoint_bytes']:>9d} B")
    for precision, size in sorted(payload["package_bytes"].items()):
        print(f".reprom {precision:>4s}:          {size:>9d} B")
    print(
        f"artifact size ratio (ckpt / int8): "
        f"{payload['artifact_size_ratio']:.2f}x"
    )
    cold = payload["cold_load"]
    print(
        f"cold load: checkpoint {cold['checkpoint_s']*1e3:.1f}ms  "
        f"package {cold['package_s']*1e3:.1f}ms  "
        f"speedup {payload['cold_load_speedup']:.2f}x"
    )
    for label, cell in payload["cells"].items():
        err = payload["max_abs_error"].get(label)
        err_text = f"  max_err {err:.2e}" if err is not None else ""
        print(
            f"{label:>22s}: p50 {cell['p50_ms']:7.2f}ms  "
            f"{cell['throughput_rps']:8.1f} req/s{err_text}"
        )
    print(f"int8 throughput ratio vs frozen-f32: "
          f"{payload['int8_throughput_ratio']:.3f}x")
    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regressions(baseline, payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"no headline regression vs {args.check}")
        return 0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
