"""Table I reproduction: test accuracy of Dense / LTH-SNN / SET-SNN /
RigL-SNN / NDSNN on VGG-16 and ResNet-19 across sparsity levels.

Paper shape to reproduce (CPU-scale): NDSNN is competitive with or
better than the dynamic-sparse baselines, and the gap to the
train-dense-then-prune family (LTH) widens as sparsity approaches 99%.
Absolute numbers differ (synthetic data, scaled models; see DESIGN.md).
"""

import pytest

from repro.experiments import run_method
from repro.experiments.tables import format_table

from _profiles import PROFILE, profile_config

DATASETS = ("cifar10", "cifar100", "tiny_imagenet")
MODELS = ("vgg16", "resnet19")
METHODS = ("lth", "set", "rigl", "ndsnn")


def _run_cells(model: str, dataset: str):
    """One (model, dataset) block of Table I: dense + all methods x sparsities."""
    rows = []
    dense = run_method(profile_config(dataset, model, "dense", 0.9))
    rows.append(("dense", "-", dense.final_accuracy, 0.0))
    results = {}
    for method in METHODS:
        for sparsity in PROFILE.sparsities:
            outcome = run_method(profile_config(dataset, model, method, sparsity))
            rows.append((method, f"{sparsity:.0%}", outcome.final_accuracy, outcome.final_sparsity))
            results[(method, sparsity)] = outcome.final_accuracy
    return rows, results, dense.final_accuracy


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_table1_block(benchmark, model, dataset):
    rows, results, dense_accuracy = benchmark.pedantic(
        lambda: _run_cells(model, dataset), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["method", "sparsity", "test_acc", "achieved_sparsity"],
            rows,
            title=f"Table I block: {model} on {dataset} "
            f"(T={PROFILE.timesteps}, {PROFILE.train_samples} samples)",
        )
    )
    # Structural checks: every sparse method must actually hit its target.
    for (method, sparsity), _ in results.items():
        row = [r for r in rows if r[0] == method and r[1] == f"{sparsity:.0%}"][0]
        assert abs(row[3] - sparsity) < 0.05, f"{method} missed target sparsity {sparsity}"
    # Shape check (soft): at the extreme 99% level, NDSNN should not be
    # dominated by both constant-sparsity baselines simultaneously by a
    # wide margin — its ramp trains denser for most of the run.
    ndsnn_99 = results[("ndsnn", PROFILE.sparsities[-1])]
    set_99 = results[("set", PROFILE.sparsities[-1])]
    rigl_99 = results[("rigl", PROFILE.sparsities[-1])]
    assert ndsnn_99 >= min(set_99, rigl_99) - 0.15, (
        f"NDSNN collapsed at 99%: {ndsnn_99} vs SET {set_99} / RigL {rigl_99}"
    )
