"""Table II reproduction: ADMM pruning (LeNet-5) vs NDSNN (VGG-16) at
low-to-moderate sparsity (40/50/60/75%) on CIFAR-10.

Paper shape: NDSNN's accuracy loss relative to its own dense baseline
stays near zero through 75% sparsity, while ADMM's loss grows
noticeably past ~50%.
"""

import pytest

from repro.experiments import run_method
from repro.experiments.tables import format_table

from _profiles import PROFILE, profile_config

SPARSITIES = (0.4, 0.5, 0.6, 0.75)


def _run_table2():
    results = {"admm": {}, "ndsnn": {}}
    dense = {}
    dense["lenet5"] = run_method(
        profile_config("cifar10", "lenet5", "dense", 0.5, width_mult=1.0)
    ).final_accuracy
    dense["vgg16"] = run_method(
        profile_config("cifar10", "vgg16", "dense", 0.5)
    ).final_accuracy
    for sparsity in SPARSITIES:
        admm = run_method(
            profile_config("cifar10", "lenet5", "admm", sparsity, width_mult=1.0)
        )
        results["admm"][sparsity] = admm.final_accuracy
        ndsnn = run_method(
            profile_config(
                "cifar10", "vgg16", "ndsnn", sparsity,
                initial_sparsity=min(0.3, sparsity / 2),
            )
        )
        results["ndsnn"][sparsity] = ndsnn.final_accuracy
    return results, dense


def test_table2_admm_comparison(benchmark):
    results, dense = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    rows = []
    for sparsity in SPARSITIES:
        rows.append((
            f"{sparsity:.0%}",
            results["admm"][sparsity],
            results["admm"][sparsity] - dense["lenet5"],
            results["ndsnn"][sparsity],
            results["ndsnn"][sparsity] - dense["vgg16"],
        ))
    print()
    print(
        format_table(
            ["sparsity", "ADMM(LeNet-5)", "ADMM loss", "NDSNN(VGG-16)", "NDSNN loss"],
            rows,
            title=f"Table II: ADMM vs NDSNN on CIFAR-10 "
            f"(dense LeNet-5 {dense['lenet5']:.2f}, dense VGG-16 {dense['vgg16']:.2f})",
        )
    )
    # Shape check: NDSNN's mean accuracy loss across the sweep should not
    # be (much) worse than ADMM's — the paper reports near-zero loss.
    ndsnn_loss = sum(dense["vgg16"] - results["ndsnn"][s] for s in SPARSITIES) / len(SPARSITIES)
    admm_loss = sum(dense["lenet5"] - results["admm"][s] for s in SPARSITIES) / len(SPARSITIES)
    assert ndsnn_loss <= admm_loss + 0.15, (
        f"NDSNN mean loss {ndsnn_loss:.3f} far exceeds ADMM {admm_loss:.3f}"
    )
