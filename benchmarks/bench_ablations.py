"""Ablation benches for the design choices called out in DESIGN.md:

* growth criterion (gradient = paper, random = SET-style, momentum),
* surrogate gradient function (fast-inverse = paper Eq. 3, atan, triangle),
* sparsity-ramp exponent (cubic = paper Eq. 4, quadratic, linear).

These are not paper tables; they document which ingredients the NDSNN
result depends on.
"""

import numpy as np
import pytest

from repro.experiments import run_method
from repro.experiments.tables import format_table
from repro.snn.models import build_model
from repro.optim import SGD, CosineAnnealingLR
from repro.sparse import NDSNN
from repro.train import Trainer
from repro.data import DataLoader, make_dataset

from _profiles import PROFILE, profile_config

SPARSITY = 0.95


def test_ablation_growth_mode(benchmark):
    def run():
        results = {}
        for mode in ("gradient", "random", "momentum"):
            outcome = run_method(
                profile_config("cifar10", "vgg16", "ndsnn", SPARSITY, growth_mode=mode)
            )
            results[mode] = outcome.final_accuracy
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["growth_mode", "test_acc"],
            sorted(results.items()),
            title=f"Ablation: NDSNN growth criterion (VGG-16/CIFAR-10 @ {SPARSITY:.0%})",
        )
    )
    assert all(0.0 <= value <= 1.0 for value in results.values())


def test_ablation_ramp_power(benchmark):
    def run():
        results = {}
        for power in (1.0, 2.0, 3.0):
            outcome = run_method(
                profile_config("cifar10", "vgg16", "ndsnn", SPARSITY, ramp_power=power)
            )
            results[power] = (outcome.final_accuracy, float(np.mean(outcome.densities)))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(f"power={p:.0f}", acc, dens) for p, (acc, dens) in sorted(results.items())]
    print()
    print(
        format_table(
            ["ramp", "test_acc", "avg_density"],
            rows,
            title="Ablation: Eq. 4 sparsity-ramp exponent",
        )
    )
    # Higher exponent sparsifies faster -> lower average density (cost).
    densities = [results[p][1] for p in (1.0, 2.0, 3.0)]
    assert densities[0] >= densities[1] >= densities[2] - 1e-6


def _train_with_surrogate(surrogate: str):
    config = profile_config("cifar10", "vgg16", "ndsnn", SPARSITY)
    rng = np.random.default_rng(config.seed)
    train = make_dataset("cifar10", train=True, num_samples=config.train_samples,
                         image_size=config.image_size, seed=config.seed)
    test = make_dataset("cifar10", train=False, num_samples=config.test_samples,
                        image_size=config.image_size, seed=config.seed)
    train_loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, rng=rng)
    test_loader = DataLoader(test, batch_size=config.batch_size, shuffle=False)
    model = build_model(
        "vgg16", num_classes=10, image_size=config.image_size,
        timesteps=config.timesteps, width_mult=config.width_mult,
        surrogate=surrogate, rng=np.random.default_rng(config.seed + 2),
    )
    optimizer = SGD(model.parameters(), lr=config.learning_rate, momentum=0.9, weight_decay=5e-4)
    scheduler = CosineAnnealingLR(optimizer, t_max=config.epochs)
    iterations = (config.train_samples // config.batch_size) * config.epochs
    method = NDSNN(
        initial_sparsity=config.initial_sparsity, final_sparsity=SPARSITY,
        total_iterations=iterations, update_frequency=config.update_frequency,
        rng=np.random.default_rng(config.seed + 3),
    )
    trainer = Trainer(model, method, optimizer, train_loader, test_loader=test_loader,
                      scheduler=scheduler)
    return trainer.fit(config.epochs).final_accuracy


def test_ablation_surrogate(benchmark):
    def run():
        return {name: _train_with_surrogate(name) for name in ("fast_inverse", "atan", "triangle")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["surrogate", "test_acc"],
            sorted(results.items()),
            title="Ablation: surrogate gradient (Eq. 3 vs alternatives)",
        )
    )
    assert all(0.0 <= value <= 1.0 for value in results.values())
