"""Setuptools shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs (which require ``bdist_wheel``) are unavailable.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
take the legacy ``setup.py develop`` path. Metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
