"""Training-history logging."""

import json

from repro.train import read_history_csv, write_history_csv, write_history_json
from repro.train.trainer import EpochStats


def sample_history():
    return [
        EpochStats(epoch=0, train_loss=1.5, train_accuracy=0.4, test_accuracy=0.35,
                   sparsity=0.6, density=0.4, spike_rate=0.2, learning_rate=0.1),
        EpochStats(epoch=1, train_loss=1.0, train_accuracy=0.6, test_accuracy=0.5,
                   sparsity=0.7, density=0.3, spike_rate=0.21, learning_rate=0.05),
    ]


class TestCSV:
    def test_roundtrip(self, tmp_path):
        history = sample_history()
        path = tmp_path / "history.csv"
        write_history_csv(path, history)
        loaded = read_history_csv(path)
        assert len(loaded) == 2
        assert loaded[0].epoch == 0
        assert loaded[1].sparsity == 0.7
        assert loaded[0].as_dict() == history[0].as_dict()

    def test_creates_parent_dir(self, tmp_path):
        path = tmp_path / "nested" / "history.csv"
        write_history_csv(path, sample_history())
        assert path.exists()


class TestJSON:
    def test_write(self, tmp_path):
        path = tmp_path / "history.json"
        write_history_json(path, sample_history())
        payload = json.loads(path.read_text())
        assert len(payload["history"]) == 2
        assert payload["history"][1]["test_accuracy"] == 0.5
