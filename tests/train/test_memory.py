"""Memory-footprint model (paper §III-D)."""

import numpy as np
import pytest

from repro.snn.models import SpikingMLP
from repro.train import (
    PLATFORM_WEIGHT_BITS,
    average_training_footprint_bits,
    dense_training_footprint_bits,
    inference_footprint_bits,
    model_footprint,
    training_footprint_bits,
)


class TestTrainingFootprint:
    def test_matches_paper_formula(self):
        n, theta, t, bw, bidx = 1000, 0.9, 5, 32, 32
        expected = (1 - theta) * ((1 + t) * n * bw + n * bidx)
        assert training_footprint_bits(n, theta, t, bw, bidx) == pytest.approx(expected)

    def test_exact_adds_row_pointers(self):
        approx = training_footprint_bits(1000, 0.9, 5)
        exact = training_footprint_bits(1000, 0.9, 5, filters_per_layer=[16, 32])
        assert exact == approx + (17 + 33) * 32

    def test_higher_sparsity_means_lower_memory(self):
        low = training_footprint_bits(1000, 0.5, 5)
        high = training_footprint_bits(1000, 0.95, 5)
        assert high < low

    def test_more_timesteps_more_memory(self):
        t2 = training_footprint_bits(1000, 0.9, 2)
        t5 = training_footprint_bits(1000, 0.9, 5)
        assert t5 > t2

    def test_full_sparsity_costs_nothing(self):
        assert training_footprint_bits(1000, 1.0, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            training_footprint_bits(100, 1.5, 5)
        with pytest.raises(ValueError):
            training_footprint_bits(-1, 0.5, 5)

    def test_dense_reference(self):
        assert dense_training_footprint_bits(1000, 5) == 6 * 1000 * 32

    def test_sparse_beats_dense_above_breakeven(self):
        """With fp32 weights and 32-bit indices, sparse training wins once
        density < (1+t)/(2+t); at t=5 that is ~86% density."""
        n, t = 10_000, 5
        dense = dense_training_footprint_bits(n, t)
        assert training_footprint_bits(n, 0.5, t) < dense
        assert training_footprint_bits(n, 0.0, t) > dense  # indices overhead


class TestInferenceFootprint:
    def test_platform_presets(self):
        assert PLATFORM_WEIGHT_BITS["loihi"] == 8
        assert PLATFORM_WEIGHT_BITS["hicann"] == 4
        loihi = inference_footprint_bits(1000, 0.9, platform="loihi")
        hicann = inference_footprint_bits(1000, 0.9, platform="hicann")
        assert hicann < loihi

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            inference_footprint_bits(100, 0.5, platform="tpu")


class TestModelFootprint:
    def test_uses_model_weight_counts(self):
        model = SpikingMLP(in_features=10, num_classes=5, hidden=(8,), rng=np.random.default_rng(0))
        report = model_footprint(model, sparsity=0.9, timesteps=5)
        assert report.total_weights == 10 * 8 + 8 * 5
        assert report.bits > 0
        assert report.megabytes == report.bytes / 1024 ** 2

    def test_average_over_trace(self):
        flat = average_training_footprint_bits(1000, [0.9, 0.9], 5)
        ramp = average_training_footprint_bits(1000, [0.5, 0.9], 5)
        dense_then_prune = average_training_footprint_bits(1000, [0.0, 0.9], 5)
        assert flat < ramp < dense_then_prune

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            average_training_footprint_bits(1000, [], 5)
