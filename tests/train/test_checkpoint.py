"""Checkpoint save/load including sparse masks and full training state."""

import numpy as np
import pytest

from repro.experiments import run_experiment, scaled_config
from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import NDSNN, DenseMethod
from repro.train import (
    CheckpointCallback,
    has_training_state,
    load_checkpoint,
    load_training_state,
    save_checkpoint,
    save_training_state,
)
from repro.train.hooks import TrainerCallback


def make_model(seed=0):
    return SpikingMLP(in_features=10, num_classes=3, hidden=(12,), timesteps=2,
                      rng=np.random.default_rng(seed))


class TestCheckpoint:
    def test_weights_roundtrip(self, tmp_path):
        model = make_model()
        original = model.state_dict()
        save_checkpoint(tmp_path / "ckpt", model, iteration=42, epoch=3)
        for parameter in model.parameters():
            parameter.data += 1.0
        metadata = load_checkpoint(tmp_path / "ckpt", model)
        assert metadata["iteration"] == 42
        assert metadata["epoch"] == 3
        for name, value in model.state_dict().items():
            assert np.allclose(value, original[name])

    def test_masks_roundtrip(self, tmp_path):
        model = make_model(seed=1)
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=100, update_frequency=10,
                       rng=np.random.default_rng(1))
        method.bind(model, SGD(model.parameters(), lr=0.1))
        original_masks = method.masks.copy_masks()
        save_checkpoint(tmp_path / "ckpt", model, method=method, iteration=10)

        model2 = make_model(seed=2)
        method2 = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                        total_iterations=100, update_frequency=10,
                        rng=np.random.default_rng(99))
        method2.bind(model2, SGD(model2.parameters(), lr=0.1))
        metadata = load_checkpoint(tmp_path / "ckpt", model2, method=method2)
        assert metadata["has_masks"]
        for name in original_masks:
            assert np.array_equal(method2.masks.masks[name], original_masks[name])

    def test_masks_require_bound_method(self, tmp_path):
        model = make_model(seed=3)
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=100, update_frequency=10,
                       rng=np.random.default_rng(3))
        method.bind(model, SGD(model.parameters(), lr=0.1))
        save_checkpoint(tmp_path / "ckpt", model, method=method)
        fresh = NDSNN(initial_sparsity=0.5, final_sparsity=0.9)
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path / "ckpt", make_model(seed=3), method=fresh)

    def test_dense_checkpoint_has_no_masks(self, tmp_path):
        model = make_model(seed=4)
        method = DenseMethod()
        method.bind(model, SGD(model.parameters(), lr=0.1))
        save_checkpoint(tmp_path / "ckpt", model, method=method)
        metadata = load_checkpoint(tmp_path / "ckpt", model)
        assert not metadata["has_masks"]

    def test_extra_metadata(self, tmp_path):
        model = make_model(seed=5)
        save_checkpoint(tmp_path / "ckpt", model, extra={"lr": 0.1, "note": "hello"})
        metadata = load_checkpoint(tmp_path / "ckpt", model)
        assert metadata["extra"]["note"] == "hello"


FAST = dict(
    epochs=3, train_samples=48, test_samples=16, timesteps=2,
    batch_size=16, update_frequency=2, initial_sparsity=0.5,
)


class _InterruptTraining(Exception):
    pass


class _StopAfter(TrainerCallback):
    """Abort a run after N epochs (the in-process stand-in for a kill)."""

    def __init__(self, epochs):
        self.epochs = epochs

    def on_epoch_end(self, trainer, epoch, stats):
        if epoch + 1 >= self.epochs:
            raise _InterruptTraining()


def _interrupted_then_resumed(config, checkpoint, stop_after=1):
    """Train with checkpointing, die after ``stop_after`` epochs, resume."""
    with pytest.raises(_InterruptTraining):
        run_experiment(
            config,
            checkpoint_path=checkpoint,
            extra_callbacks=[_StopAfter(stop_after)],
        )
    assert has_training_state(checkpoint)
    return run_experiment(config, checkpoint_path=checkpoint, resume=True)


class TestTrainingStateResume:
    """A resumed run must be bit-identical to an uninterrupted one."""

    @pytest.mark.parametrize("method", ["ndsnn", "set", "rigl", "gmp", "admm", "snip", "dense"])
    def test_resume_bit_identical(self, method, tmp_path):
        config = scaled_config("cifar10", "convnet", method, 0.9, **FAST)
        golden = run_experiment(config)
        resumed = _interrupted_then_resumed(config, tmp_path / "job")
        assert len(resumed.history) == len(golden.history) == config.epochs
        for want, got in zip(golden.history, resumed.history):
            assert want.as_dict() == got.as_dict()
        assert resumed.final_accuracy == golden.final_accuracy
        assert resumed.final_sparsity == golden.final_sparsity

    @pytest.mark.smoke
    def test_resume_from_second_epoch(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        golden = run_experiment(config)
        resumed = _interrupted_then_resumed(config, tmp_path / "job", stop_after=2)
        assert [s.as_dict() for s in resumed.history] == [
            s.as_dict() for s in golden.history
        ]

    def test_checkpoint_every_epoch_and_cleanup_of_tmp(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        run_experiment(config, checkpoint_path=tmp_path / "job")
        assert has_training_state(tmp_path / "job")
        # Atomic writes leave no temporaries behind.
        assert not list(tmp_path.glob("*.tmp*"))

    def test_completed_run_does_not_retrain_on_resume(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        first = run_experiment(config, checkpoint_path=tmp_path / "job")
        again = run_experiment(config, checkpoint_path=tmp_path / "job", resume=True)
        # All epochs were restored from the checkpoint, none re-trained.
        assert [s.as_dict() for s in again.history] == [
            s.as_dict() for s in first.history
        ]

    def test_metadata_shape(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "set", 0.9, **FAST)
        trainer_state = tmp_path / "job"
        run_experiment(config, checkpoint_path=trainer_state)
        from repro.utils import load_json

        metadata = load_json(trainer_state.with_suffix(".json"))
        assert metadata["epochs_completed"] == config.epochs
        assert metadata["iteration"] == 3 * config.epochs  # 48/16 batches
        assert metadata["loader_rng_state"]["bit_generator"] == "PCG64"
        assert len(metadata["history"]) == config.epochs


def point_calibration_world(monkeypatch, directory, cutoff):
    """Pin the dispatch calibration environment for one test phase.

    Points the shared write-once cache at ``directory`` (fresh), clears
    the per-process memoization, and replaces the timing measurement
    with a constant — so routing decisions are controlled, not timed.
    """
    import repro.sparse.dispatch as dispatch

    monkeypatch.setenv(dispatch.CALIBRATION_ENV, str(directory))
    dispatch.clear_process_cache()
    monkeypatch.setattr(
        dispatch,
        "measure_crossover",
        lambda rows, cols, **kwargs: {"cutoff": cutoff, "buckets": {}},
    )


class TestEncoderRngResume:
    """Poisson-encoded runs must resume bit-identically.

    The encoder draws from its own RNG stream every batch; without
    capturing it in the checkpoint, a resumed run would re-encode the
    remaining epochs with different spike trains.
    """

    def test_poisson_run_resumes_bit_identical(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9,
                               encoder="poisson", **FAST)
        golden = run_experiment(config)
        resumed = _interrupted_then_resumed(config, tmp_path / "job")
        assert [s.as_dict() for s in resumed.history] == [
            s.as_dict() for s in golden.history
        ]

    def test_encoder_rng_state_is_in_the_sidecar(self, tmp_path):
        from repro.utils import load_json

        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9,
                               encoder="poisson", **FAST)
        run_experiment(config, checkpoint_path=tmp_path / "job")
        metadata = load_json((tmp_path / "job").with_suffix(".json"))
        assert metadata["encoder_rng_state"]["bit_generator"] == "PCG64"

    def test_direct_encoder_has_no_rng_state(self, tmp_path):
        from repro.utils import load_json

        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        run_experiment(config, checkpoint_path=tmp_path / "job")
        metadata = load_json((tmp_path / "job").with_suffix(".json"))
        assert metadata["encoder_rng_state"] is None


class TestCalibrationResume:
    """Checkpointed dispatch decisions override fresh measurement.

    A resumed run may land on a different machine (or a machine in a
    different load state) whose fresh calibration would route layers
    differently — and dense vs CSR kernels are not bit-identical.  The
    checkpoint therefore persists the calibration table, and the
    restored table must win over anything measured at resume time.
    """

    def test_resume_restores_table_and_stays_bit_identical(
        self, tmp_path, monkeypatch
    ):
        from repro.utils import load_json

        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        sidecar = (tmp_path / "job").with_suffix(".json")

        # World A: calibration says CSR wins everywhere.
        point_calibration_world(monkeypatch, tmp_path / "calib-a", 0.99)
        golden = run_experiment(config)
        with pytest.raises(_InterruptTraining):
            run_experiment(config, checkpoint_path=tmp_path / "job",
                           extra_callbacks=[_StopAfter(1)])
        saved = load_json(sidecar)["calibration"]
        assert saved and set(saved.values()) == {0.99}

        # World B: a fresh measurement would route everything dense.
        point_calibration_world(monkeypatch, tmp_path / "calib-b", 0.0)
        resumed = run_experiment(config, checkpoint_path=tmp_path / "job",
                                 resume=True)
        assert [s.as_dict() for s in resumed.history] == [
            s.as_dict() for s in golden.history
        ]
        # The checkpoint written after resume still carries world A's
        # table: the run never adopted world B's measurements.
        assert set(load_json(sidecar)["calibration"].values()) == {0.99}

        import repro.sparse.dispatch as dispatch

        dispatch.clear_process_cache()


class TestResumeWithAugmentation:
    def _fit(self, epochs, checkpoint=None, resume=False, fit_epochs=None):
        """Trainer over augmented loaders (transform RNGs in play)."""
        from repro.experiments.runner import (
            build_experiment_model,
            build_loaders,
            build_method,
        )
        from repro.experiments import scaled_config
        from repro.optim import CosineAnnealingLR
        from repro.train import Trainer

        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        train_loader, test_loader, train_set = build_loaders(config, augment=True)
        model = build_experiment_model(config, train_set)
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        trainer = Trainer(
            model,
            build_method(config, 9),
            optimizer,
            train_loader,
            test_loader=test_loader,
            scheduler=CosineAnnealingLR(optimizer, t_max=epochs),
        )
        start_epoch = 0
        history = []
        if resume:
            metadata = load_training_state(checkpoint, trainer)
            start_epoch = metadata["epochs_completed"]
            from repro.train import EpochStats

            history = [EpochStats(**entry) for entry in metadata["history"]]
        if checkpoint is not None:
            trainer.add_callback(CheckpointCallback(checkpoint))
        return trainer.fit(fit_epochs if fit_epochs is not None else epochs,
                           start_epoch=start_epoch, initial_history=history)

    def test_transform_rng_streams_resume_bit_identical(self, tmp_path):
        golden = self._fit(epochs=3)
        self._fit(epochs=3, checkpoint=tmp_path / "aug", fit_epochs=1)
        resumed = self._fit(epochs=3, checkpoint=tmp_path / "aug", resume=True)
        assert [s.as_dict() for s in resumed.history] == [
            s.as_dict() for s in golden.history
        ]


class TestCheckpointIntegrity:
    def test_mismatched_pair_rejected(self, tmp_path):
        """Torn npz/json pairs are detected, not silently resumed."""
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        run_experiment(config, checkpoint_path=tmp_path / "job")
        from repro.utils import load_json, save_json

        metadata = load_json((tmp_path / "job").with_suffix(".json"))
        metadata["epochs_completed"] -= 1  # simulate a stale sidecar
        save_json((tmp_path / "job").with_suffix(".json"), metadata)

        from repro.experiments.runner import (
            build_experiment_model,
            build_loaders,
            build_method,
        )
        from repro.train import Trainer

        train_loader, test_loader, train_set = build_loaders(config)
        model = build_experiment_model(config, train_set)
        trainer = Trainer(
            model, build_method(config, 9), SGD(model.parameters(), lr=0.1),
            train_loader, test_loader=test_loader,
        )
        with pytest.raises(ValueError, match="pair mismatch"):
            load_training_state(tmp_path / "job", trainer)

    def test_corrupt_checkpoint_recomputes_instead_of_failing(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        golden = run_experiment(config)
        run_experiment(config, checkpoint_path=tmp_path / "job")
        (tmp_path / "job.npz").write_bytes(b"not an npz archive")
        recovered = run_experiment(config, checkpoint_path=tmp_path / "job", resume=True)
        assert [s.as_dict() for s in recovered.history] == [
            s.as_dict() for s in golden.history
        ]


class TestCheckpointCallback:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CheckpointCallback("x", every=0)

    def test_save_and_load_roundtrip_velocity(self, tmp_path):
        """Optimizer momentum survives the save/load cycle exactly."""
        config = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)
        from repro.experiments.runner import (
            build_experiment_model,
            build_loaders,
            build_method,
        )
        from repro.optim import CosineAnnealingLR
        from repro.train import Trainer

        def build():
            train_loader, test_loader, train_set = build_loaders(config)
            model = build_experiment_model(config, train_set)
            optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
            trainer = Trainer(
                model, build_method(config, 10), optimizer, train_loader,
                test_loader=test_loader,
                scheduler=CosineAnnealingLR(optimizer, t_max=3),
            )
            return trainer, optimizer

        trainer, optimizer = build()
        trainer.fit(1)
        save_training_state(tmp_path / "state", trainer, epochs_completed=1)
        twin, twin_optimizer = build()
        load_training_state(tmp_path / "state", twin)
        for original, restored in zip(
            optimizer.state_arrays().items(), twin_optimizer.state_arrays().items()
        ):
            assert original[0] == restored[0]
            np.testing.assert_array_equal(original[1], restored[1])
        assert twin.iteration == trainer.iteration
        assert twin_optimizer.lr == optimizer.lr
