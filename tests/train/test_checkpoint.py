"""Checkpoint save/load including sparse masks."""

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import NDSNN, DenseMethod
from repro.train import load_checkpoint, save_checkpoint


def make_model(seed=0):
    return SpikingMLP(in_features=10, num_classes=3, hidden=(12,), timesteps=2,
                      rng=np.random.default_rng(seed))


class TestCheckpoint:
    def test_weights_roundtrip(self, tmp_path):
        model = make_model()
        original = model.state_dict()
        save_checkpoint(tmp_path / "ckpt", model, iteration=42, epoch=3)
        for parameter in model.parameters():
            parameter.data += 1.0
        metadata = load_checkpoint(tmp_path / "ckpt", model)
        assert metadata["iteration"] == 42
        assert metadata["epoch"] == 3
        for name, value in model.state_dict().items():
            assert np.allclose(value, original[name])

    def test_masks_roundtrip(self, tmp_path):
        model = make_model(seed=1)
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=100, update_frequency=10,
                       rng=np.random.default_rng(1))
        method.bind(model, SGD(model.parameters(), lr=0.1))
        original_masks = method.masks.copy_masks()
        save_checkpoint(tmp_path / "ckpt", model, method=method, iteration=10)

        model2 = make_model(seed=2)
        method2 = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                        total_iterations=100, update_frequency=10,
                        rng=np.random.default_rng(99))
        method2.bind(model2, SGD(model2.parameters(), lr=0.1))
        metadata = load_checkpoint(tmp_path / "ckpt", model2, method=method2)
        assert metadata["has_masks"]
        for name in original_masks:
            assert np.array_equal(method2.masks.masks[name], original_masks[name])

    def test_masks_require_bound_method(self, tmp_path):
        model = make_model(seed=3)
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=100, update_frequency=10,
                       rng=np.random.default_rng(3))
        method.bind(model, SGD(model.parameters(), lr=0.1))
        save_checkpoint(tmp_path / "ckpt", model, method=method)
        fresh = NDSNN(initial_sparsity=0.5, final_sparsity=0.9)
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path / "ckpt", make_model(seed=3), method=fresh)

    def test_dense_checkpoint_has_no_masks(self, tmp_path):
        model = make_model(seed=4)
        method = DenseMethod()
        method.bind(model, SGD(model.parameters(), lr=0.1))
        save_checkpoint(tmp_path / "ckpt", model, method=method)
        metadata = load_checkpoint(tmp_path / "ckpt", model)
        assert not metadata["has_masks"]

    def test_extra_metadata(self, tmp_path):
        model = make_model(seed=5)
        save_checkpoint(tmp_path / "ckpt", model, extra={"lr": 0.1, "note": "hello"})
        metadata = load_checkpoint(tmp_path / "ckpt", model)
        assert metadata["extra"]["note"] == "hello"
