"""Trainer callback pipeline: firing order, mask-update events, and the
cost/fault callbacks that ride it."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import DenseMethod, NDSNN
from repro.train import (
    CostAccountingCallback,
    FaultInjectionCallback,
    TopologyAudit,
    Trainer,
    TrainerCallback,
    inject_weight_noise,
)


def tiny_task(n=32, features=12, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.standard_normal((n, features)).astype(np.float32)
    labels = np.arange(n) % classes
    return ArrayDataset(images, labels)


def build_trainer(method, callbacks=None, seed=0):
    train_loader = DataLoader(tiny_task(seed=seed), batch_size=16, shuffle=True,
                              rng=np.random.default_rng(1))
    test_loader = DataLoader(tiny_task(seed=seed + 5), batch_size=16, shuffle=False)
    model = SpikingMLP(in_features=12, num_classes=3, hidden=(16,), timesteps=2,
                       rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    return Trainer(model, method, optimizer, train_loader, test_loader=test_loader,
                   callbacks=callbacks)


class RecordingCallback(TrainerCallback):
    def __init__(self):
        self.events = []

    def on_train_begin(self, trainer, epochs):
        self.events.append(("train_begin", epochs))

    def on_epoch_start(self, trainer, epoch):
        self.events.append(("epoch_start", epoch))

    def after_backward(self, trainer, iteration):
        self.events.append(("after_backward", iteration))

    def on_step_end(self, trainer, iteration):
        self.events.append(("step_end", iteration))

    def on_mask_update(self, trainer, iteration, record):
        self.events.append(("mask_update", iteration))

    def on_epoch_end(self, trainer, epoch, stats):
        self.events.append(("epoch_end", epoch))

    def on_train_end(self, trainer, result):
        self.events.append(("train_end", len(result.history)))


@pytest.mark.smoke
class TestCallbackPipeline:
    def test_hooks_fire_in_order(self):
        recorder = RecordingCallback()
        trainer = build_trainer(DenseMethod(), callbacks=[recorder])
        trainer.fit(2)
        kinds = [kind for kind, _ in recorder.events]
        assert kinds[0] == "train_begin"
        assert kinds[-1] == "train_end"
        assert kinds.count("epoch_start") == kinds.count("epoch_end") == 2
        # 32 samples / batch 16 = 2 iterations per epoch, 2 epochs.
        assert kinds.count("after_backward") == kinds.count("step_end") == 4
        first_epoch = kinds.index("epoch_start")
        assert kinds.index("after_backward") > first_epoch

    def test_mask_update_events_reach_callbacks(self):
        recorder = RecordingCallback()
        audit = TopologyAudit()
        method = NDSNN(initial_sparsity=0.3, final_sparsity=0.7,
                       total_iterations=8, update_frequency=2,
                       rng=np.random.default_rng(2))
        trainer = build_trainer(method, callbacks=[recorder, audit])
        trainer.fit(4)
        updates = [event for event in recorder.events if event[0] == "mask_update"]
        assert len(updates) == len(method.history) > 0
        assert len(audit.records) == len(method.history)
        assert audit.records[0].iteration == audit.iterations[0]

    def test_add_callback_is_chainable(self):
        recorder = RecordingCallback()
        trainer = build_trainer(DenseMethod())
        assert trainer.add_callback(recorder) is trainer
        trainer.fit(1)
        assert recorder.events

    def test_verbose_prints_epoch_lines(self, capsys):
        trainer = build_trainer(DenseMethod())
        trainer.fit(2, verbose=True)
        out = capsys.readouterr().out
        assert out.count("epoch") == 2
        assert "sparsity" in out


class TestCostAccountingCallback:
    def test_tracks_epoch_terms_and_prices_run(self):
        cost = CostAccountingCallback()
        method = NDSNN(initial_sparsity=0.3, final_sparsity=0.7,
                       total_iterations=8, update_frequency=2,
                       rng=np.random.default_rng(3))
        trainer = build_trainer(method, callbacks=[cost])
        result = trainer.fit(3)
        assert cost.spike_rates == result.spike_rates
        assert cost.densities == result.densities
        assert cost.mask_updates == len(method.history)
        assert cost.method_name == "ndsnn"
        breakdown = cost.breakdown(dense_spike_rates=[0.5] * 3)
        assert len(breakdown.per_epoch) == 3
        assert breakdown.total_relative_to_dense > 0.0

    def test_requires_dense_reference(self):
        cost = CostAccountingCallback()
        with pytest.raises(ValueError):
            cost.breakdown()


class TestFaultInjectionCallback:
    def test_injects_on_schedule(self):
        faults = FaultInjectionCallback(
            lambda model: inject_weight_noise(model, 0.05, rng=np.random.default_rng(4)),
            every=2,
        )
        trainer = build_trainer(DenseMethod(), callbacks=[faults])
        trainer.fit(4)
        assert faults.injections == 2  # epochs 0 and 2

    def test_transient_faults_are_restored(self):
        state = {}

        def snapshotting_injector(model):
            snapshot = inject_weight_noise(model, 0.5, rng=np.random.default_rng(5))
            state["pristine"] = snapshot
            return snapshot

        faults = FaultInjectionCallback(snapshotting_injector, every=1, transient=True)

        class CheckRestore(TrainerCallback):
            def on_epoch_end(self, trainer, epoch, stats):
                pass

        trainer = build_trainer(DenseMethod(), callbacks=[faults, CheckRestore()])
        model = trainer.model
        trainer.fit(1)
        # After the (transient) epoch the pristine weights are back.
        for name, parameter in model.named_parameters():
            if name in state["pristine"]:
                np.testing.assert_array_equal(parameter.data, state["pristine"][name])

    def test_masked_positions_stay_dead_under_faults(self):
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.8,
                       total_iterations=8, update_frequency=2,
                       rng=np.random.default_rng(6))
        faults = FaultInjectionCallback(
            lambda model: inject_weight_noise(model, 0.2, rng=np.random.default_rng(7)),
            every=1,
        )
        trainer = build_trainer(method, callbacks=[faults])
        trainer.fit(3)
        for name, parameter in method.masks.parameters.items():
            inactive = method.masks.masks[name] == 0
            assert np.all(parameter.data[inactive] == 0.0)

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            FaultInjectionCallback(lambda model: {}, every=0)
