"""Fault injection and restoration."""

import numpy as np
import pytest

from repro.snn.models import SpikingMLP
from repro.sparse import MaskManager
from repro.train import (
    inject_bit_flips,
    inject_dead_neurons,
    inject_weight_dropout,
    inject_weight_noise,
    restore,
)
from repro.train.faults import (
    FAULT_VOCABULARY,
    FaultInjectionCallback,
    FaultSpec,
    build_injector,
    parse_fault_spec,
)


def make_model(seed=0):
    return SpikingMLP(in_features=12, num_classes=3, hidden=(16,), timesteps=2,
                      rng=np.random.default_rng(seed))


def weights_of(model):
    from repro.sparse import sparsifiable_parameters
    return {n: p.data.copy() for n, p in sparsifiable_parameters(model)}


class TestRestore:
    @pytest.mark.parametrize("injector,kwargs", [
        (inject_weight_noise, {"sigma": 0.5}),
        (inject_weight_dropout, {"fraction": 0.3}),
        (inject_bit_flips, {"flips_per_layer": 3}),
        (inject_dead_neurons, {"fraction": 0.25}),
    ])
    def test_snapshot_restores_exactly(self, injector, kwargs):
        model = make_model()
        before = weights_of(model)
        snapshot = injector(model, rng=np.random.default_rng(1), **kwargs)
        restore(model, snapshot)
        after = weights_of(model)
        for name in before:
            assert np.array_equal(before[name], after[name])


class TestNoise:
    def test_perturbs_only_active_weights(self):
        model = make_model(seed=1)
        masks = MaskManager(model, rng=np.random.default_rng(2))
        masks.init_random({name: 0.5 for name in masks.masks})
        before = weights_of(model)
        inject_weight_noise(model, sigma=0.5, rng=np.random.default_rng(3))
        for name, parameter in masks.parameters.items():
            zero_before = before[name] == 0
            assert np.all(parameter.data[zero_before] == 0.0)
            changed = parameter.data != before[name]
            assert changed.any()

    def test_sigma_zero_is_identity(self):
        model = make_model(seed=2)
        before = weights_of(model)
        inject_weight_noise(model, sigma=0.0)
        after = weights_of(model)
        for name in before:
            assert np.allclose(before[name], after[name])

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_weight_noise(make_model(), sigma=-1.0)


class TestDropout:
    def test_kills_requested_fraction(self):
        model = make_model(seed=3)
        before_nonzero = sum(np.count_nonzero(v) for v in weights_of(model).values())
        inject_weight_dropout(model, fraction=0.5, rng=np.random.default_rng(4))
        after_nonzero = sum(np.count_nonzero(v) for v in weights_of(model).values())
        assert after_nonzero < before_nonzero
        assert after_nonzero >= before_nonzero * 0.45

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_weight_dropout(make_model(), fraction=1.5)


class TestBitFlips:
    def test_flips_change_values(self):
        model = make_model(seed=4)
        before = weights_of(model)
        inject_bit_flips(model, flips_per_layer=2, rng=np.random.default_rng(5))
        after = weights_of(model)
        changed = sum(int((before[n] != after[n]).sum()) for n in before)
        assert changed == 2 * len(before)

    def test_mantissa_flip_is_small(self):
        model = make_model(seed=5)
        before = weights_of(model)
        inject_bit_flips(model, flips_per_layer=1, bit=0, rng=np.random.default_rng(6))
        after = weights_of(model)
        for name in before:
            delta = np.abs(after[name] - before[name]).max()
            assert delta < 1e-5  # LSB of the mantissa barely moves the value

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_bit_flips(make_model(), flips_per_layer=1, bit=40)
        with pytest.raises(ValueError):
            inject_bit_flips(make_model(), flips_per_layer=-1)


class TestDeadNeurons:
    def test_rows_fully_zero(self):
        model = make_model(seed=6)
        inject_dead_neurons(model, fraction=0.5, rng=np.random.default_rng(7))
        from repro.sparse import sparsifiable_parameters
        for _, parameter in sparsifiable_parameters(model):
            rows = parameter.data.reshape(parameter.shape[0], -1)
            dead_rows = (rows == 0).all(axis=1)
            assert dead_rows.sum() >= parameter.shape[0] // 2 - 1

    def test_graceful_degradation_of_sparse_model(self):
        """A trained model keeps above-chance accuracy under mild faults."""
        from repro.data import ArrayDataset, DataLoader
        from repro.optim import SGD
        from repro.sparse import NDSNN
        from repro.train import Trainer
        from repro.train.metrics import evaluate

        rng = np.random.default_rng(8)
        means = rng.standard_normal((3, 12)).astype(np.float32) * 2
        labels = np.arange(90) % 3
        images = means[labels] + rng.standard_normal((90, 12)).astype(np.float32) * 0.3
        train = ArrayDataset(images[:60], labels[:60])
        test = ArrayDataset(images[60:], labels[60:])
        train_loader = DataLoader(train, batch_size=12, shuffle=True, rng=np.random.default_rng(9))
        test_loader = DataLoader(test, batch_size=12, shuffle=False)
        model = make_model(seed=7)
        method = NDSNN(initial_sparsity=0.3, final_sparsity=0.6,
                       total_iterations=20, update_frequency=5,
                       rng=np.random.default_rng(10))
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        Trainer(model, method, optimizer, train_loader, test_loader=test_loader).fit(5)
        clean = evaluate(model, test_loader)
        inject_weight_noise(model, sigma=0.05, rng=np.random.default_rng(11))
        noisy = evaluate(model, test_loader)
        assert clean > 0.5
        assert noisy > clean - 0.35  # mild noise does not collapse the model


class TestFaultSpecParser:
    """The shared ``kind:key=value`` vocabulary behind --fault flags."""

    def test_parses_kind_and_parameters(self):
        spec = parse_fault_spec("noise:sigma=0.2,relative=false")
        assert spec.kind == "noise"
        assert spec.scope == "weight"
        assert spec.params == {"sigma": 0.2, "relative": False}

    def test_defaults_fill_omitted_parameters(self):
        for kind, (scope, schema) in FAULT_VOCABULARY.items():
            spec = parse_fault_spec(kind)
            assert spec.scope == scope
            assert spec.params == {
                name: default for name, (_, default) in schema.items()
            }

    def test_types_are_coerced(self):
        spec = parse_fault_spec("reconnect:gap=2.5,drop=3")
        assert spec.params["gap"] == 2.5
        assert spec.params["drop"] == 3
        assert isinstance(spec.params["drop"], int)

    def test_unknown_kind_lists_vocabulary(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("gremlins:count=3")

    def test_bad_parameter_is_rejected(self):
        with pytest.raises(ValueError, match="bad parameter"):
            parse_fault_spec("noise:volume=11")
        with pytest.raises(ValueError, match="bad parameter"):
            parse_fault_spec("noise:sigma")  # missing '='
        with pytest.raises(ValueError, match="boolean"):
            parse_fault_spec("noise:relative=maybe")

    def test_spec_is_immutable(self):
        spec = parse_fault_spec("stall")
        with pytest.raises(AttributeError):
            spec.kind = "other"


class TestBuildInjector:
    @pytest.mark.parametrize("spec", [
        "noise:sigma=0.1", "dropout:fraction=0.3",
        "bitflip:flips=2,bit=0", "dead:fraction=0.25",
    ])
    def test_weight_kinds_inject_and_restore(self, spec):
        model = make_model(seed=11)
        before = weights_of(model)
        injector = build_injector(spec, rng=np.random.default_rng(12))
        snapshot = injector(model)
        restore(model, snapshot)
        after = weights_of(model)
        for name in before:
            assert np.array_equal(before[name], after[name])

    def test_stream_kinds_are_rejected(self):
        with pytest.raises(ValueError, match="StreamFaultInjector"):
            build_injector("channel_dropout:fraction=0.5")
        with pytest.raises(ValueError, match="StreamFaultInjector"):
            build_injector(FaultSpec(kind="stall", scope="stream", params={}))


class TestCallbackFromSpec:
    def test_from_spec_builds_a_working_callback(self):
        callback = FaultInjectionCallback.from_spec(
            "dropout:fraction=0.5", every=2, transient=True,
            rng=np.random.default_rng(13),
        )
        assert callback.every == 2
        assert callback.transient

        class _Method:
            masks = None

        class _Trainer:
            model = make_model(seed=14)
            method = _Method()

        trainer = _Trainer()
        before = weights_of(trainer.model)
        callback.on_epoch_start(trainer, 0)
        assert callback.injections == 1
        dropped = weights_of(trainer.model)
        assert any(
            np.count_nonzero(dropped[n]) < np.count_nonzero(before[n])
            for n in before
        )
        callback.on_epoch_end(trainer, 0, stats=None)  # transient: undo
        after = weights_of(trainer.model)
        for name in before:
            assert np.array_equal(before[name], after[name])

    def test_every_respects_schedule(self):
        callback = FaultInjectionCallback.from_spec("noise:sigma=0.0", every=2)

        class _Method:
            masks = None

        class _Trainer:
            model = make_model(seed=15)
            method = _Method()

        trainer = _Trainer()
        for epoch in range(4):
            callback.on_epoch_start(trainer, epoch)
        assert callback.injections == 2  # epochs 0 and 2
