"""Training-cost model (paper §IV-C / Fig. 5)."""

import numpy as np
import pytest

from repro.train import (
    dense_reference_cost,
    epoch_costs,
    relative_training_cost,
    training_flops_estimate,
)


class TestEpochCosts:
    def test_formula(self):
        # cost = R_s * density / R_d
        costs = epoch_costs([0.2, 0.2], [0.5, 0.25], [0.4, 0.4])
        assert np.allclose(costs, [0.25, 0.125])

    def test_dense_reference_cycled_for_longer_runs(self):
        costs = epoch_costs([0.1] * 4, [1.0] * 4, [0.1, 0.2])
        assert np.allclose(costs, [1.0, 0.5, 1.0, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            epoch_costs([0.1], [0.5, 0.5], [0.1])
        with pytest.raises(ValueError):
            epoch_costs([0.1], [0.5], [])
        with pytest.raises(ValueError):
            epoch_costs([0.1], [0.5], [0.0])


class TestRelativeCost:
    def test_dense_against_itself_is_one(self):
        breakdown = dense_reference_cost([0.3, 0.3, 0.3])
        assert breakdown.total_relative_to_dense == 1.0
        assert breakdown.percent_of_dense == 100.0

    def test_sparse_cheaper_than_dense(self):
        dense_rates = [0.3] * 10
        sparse_rates = [0.3] * 10
        densities = [0.1] * 10
        breakdown = relative_training_cost(sparse_rates, densities, dense_rates, method="ndsnn")
        assert np.isclose(breakdown.total_relative_to_dense, 0.1)

    def test_lth_multi_round_costs_more_than_single(self):
        """LTH trains rounds x epochs, early rounds near-dense: expensive."""
        dense_rates = [0.3] * 10
        lth_rates = [0.3] * 30  # 3 rounds of 10 epochs
        lth_densities = [1.0] * 10 + [0.5] * 10 + [0.25] * 10
        lth = relative_training_cost(lth_rates, lth_densities, dense_rates, method="lth")
        ndsnn = relative_training_cost([0.3] * 10, [0.15] * 10, dense_rates, method="ndsnn")
        assert lth.total_relative_to_dense > 1.0
        assert ndsnn.total_relative_to_dense < lth.total_relative_to_dense

    def test_lower_spike_rate_lowers_cost(self):
        dense_rates = [0.4] * 5
        quiet = relative_training_cost([0.1] * 5, [0.5] * 5, dense_rates)
        loud = relative_training_cost([0.4] * 5, [0.5] * 5, dense_rates)
        assert quiet.total_relative_to_dense < loud.total_relative_to_dense


class TestFlops:
    def test_proportional_to_connections(self):
        low = training_flops_estimate([100.0] * 3, timesteps=2, samples_per_epoch=10)
        high = training_flops_estimate([200.0] * 3, timesteps=2, samples_per_epoch=10)
        assert high == 2 * low

    def test_validation(self):
        with pytest.raises(ValueError):
            training_flops_estimate([1.0], timesteps=0, samples_per_epoch=1)
