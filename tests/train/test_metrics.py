"""Meters and evaluation helpers."""

import numpy as np

from repro.data import ArrayDataset, DataLoader
from repro.snn.models import SpikingMLP
from repro.tensor import Tensor
from repro.train import AverageMeter, confusion_matrix, evaluate, top_k_accuracy


class TestAverageMeter:
    def test_weighted_average(self):
        meter = AverageMeter()
        meter.update(1.0, weight=1)
        meter.update(3.0, weight=3)
        assert meter.average == 2.5

    def test_empty_is_zero(self):
        assert AverageMeter().average == 0.0

    def test_reset(self):
        meter = AverageMeter()
        meter.update(5.0)
        meter.reset()
        assert meter.average == 0.0


def tiny_model_and_loader(seed=0):
    rng = np.random.default_rng(seed)
    model = SpikingMLP(in_features=8, num_classes=3, hidden=(12,), timesteps=2, rng=rng)
    images = rng.standard_normal((12, 8)).astype(np.float32)
    labels = rng.integers(0, 3, 12)
    loader = DataLoader(ArrayDataset(images, labels), batch_size=4, shuffle=False)
    return model, loader


class TestEvaluate:
    def test_returns_fraction(self):
        model, loader = tiny_model_and_loader()
        accuracy = evaluate(model, loader)
        assert 0.0 <= accuracy <= 1.0

    def test_restores_training_mode(self):
        model, loader = tiny_model_and_loader()
        model.train()
        evaluate(model, loader)
        assert model.training
        model.eval()
        evaluate(model, loader)
        assert not model.training

    def test_max_batches(self):
        model, loader = tiny_model_and_loader()
        accuracy = evaluate(model, loader, max_batches=1)
        assert 0.0 <= accuracy <= 1.0

    def test_empty_loader(self):
        model, _ = tiny_model_and_loader()
        assert evaluate(model, []) == 0.0


class TestConfusionMatrix:
    def test_counts_sum_to_samples(self):
        model, loader = tiny_model_and_loader()
        matrix = confusion_matrix(model, loader, num_classes=3)
        assert matrix.sum() == 12
        assert matrix.shape == (3, 3)


class TestTopK:
    def test_top_k(self):
        logits = Tensor(np.array([[0.1, 0.5, 0.4], [0.9, 0.05, 0.05]], dtype=np.float32))
        assert top_k_accuracy(logits, np.array([2, 0]), k=2) == 1.0
        assert top_k_accuracy(logits, np.array([1, 1]), k=1) == 0.5
