"""Trainer integration: learning happens, masks hold, history records."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.optim import SGD, CosineAnnealingLR
from repro.snn.models import SpikingConvNet, SpikingMLP
from repro.sparse import DenseMethod, NDSNN, SETSNN
from repro.train import Trainer


def easy_task(n=64, features=12, classes=3, proto_seed=0, noise_seed=1):
    """Linearly separable spiking task: shared class means + small noise.

    ``proto_seed`` fixes the class structure; ``noise_seed`` picks the
    split, so train/test share means but not samples.
    """
    means = np.random.default_rng(proto_seed).standard_normal((classes, features)).astype(np.float32) * 2.0
    rng = np.random.default_rng(noise_seed)
    labels = np.arange(n) % classes
    images = means[labels] + rng.standard_normal((n, features)).astype(np.float32) * 0.3
    return ArrayDataset(images.astype(np.float32), labels)


def build(method, seed=0, epochs_iterations=None, lr=0.1):
    train_set = easy_task(proto_seed=seed, noise_seed=seed + 1)
    test_set = easy_task(proto_seed=seed, noise_seed=seed + 100)
    train_loader = DataLoader(train_set, batch_size=16, shuffle=True, rng=np.random.default_rng(1))
    test_loader = DataLoader(test_set, batch_size=16, shuffle=False)
    model = SpikingMLP(in_features=12, num_classes=3, hidden=(24,), timesteps=3,
                       rng=np.random.default_rng(seed))
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    trainer = Trainer(model, method, optimizer, train_loader, test_loader=test_loader)
    return trainer, model


class TestLearning:
    def test_dense_training_learns(self):
        trainer, _ = build(DenseMethod())
        result = trainer.fit(8)
        assert result.history[-1].train_loss < result.history[0].train_loss
        assert result.final_accuracy > 0.6

    def test_sparse_training_learns(self):
        method = NDSNN(initial_sparsity=0.3, final_sparsity=0.7,
                       total_iterations=32, update_frequency=8,
                       rng=np.random.default_rng(2))
        trainer, _ = build(method)
        result = trainer.fit(8)
        assert result.final_accuracy > 0.5
        assert abs(method.sparsity() - 0.7) < 0.05

    def test_loss_decreases_with_set(self):
        method = SETSNN(sparsity=0.5, total_iterations=32, update_frequency=8,
                        rng=np.random.default_rng(3))
        trainer, _ = build(method)
        result = trainer.fit(8)
        assert result.history[-1].train_loss < result.history[0].train_loss


class TestHistory:
    def test_epoch_stats_recorded(self):
        trainer, _ = build(DenseMethod())
        result = trainer.fit(3)
        assert len(result.history) == 3
        stats = result.history[0]
        assert stats.epoch == 0
        assert stats.spike_rate > 0.0
        assert stats.density == 1.0
        assert set(stats.as_dict()) >= {"train_loss", "test_accuracy", "sparsity"}

    def test_result_properties(self):
        trainer, _ = build(DenseMethod())
        result = trainer.fit(2)
        assert len(result.spike_rates) == 2
        assert len(result.densities) == 2
        assert result.best_accuracy >= result.history[0].test_accuracy - 1e-9

    def test_scheduler_steps_per_epoch(self):
        method = DenseMethod()
        trainer, _ = build(method, lr=1.0)
        trainer.scheduler = CosineAnnealingLR(trainer.optimizer, t_max=4)
        trainer.fit(4)
        assert trainer.optimizer.lr < 1.0

    def test_empty_result(self):
        trainer, _ = build(DenseMethod())
        result = trainer.fit(0)
        assert result.final_accuracy == 0.0
        assert result.best_accuracy == 0.0


class TestMaskIntegrity:
    def test_masks_hold_through_momentum_updates(self):
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.8,
                       total_iterations=24, update_frequency=8,
                       rng=np.random.default_rng(4))
        trainer, model = build(method)
        trainer.fit(6)
        for name, parameter in method.masks.parameters.items():
            inactive = method.masks.masks[name] == 0
            assert np.all(parameter.data[inactive] == 0.0)

    def test_grad_clipping(self):
        method = DenseMethod()
        trainer, model = build(method)
        trainer.grad_clip = 1e-6
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        trainer.fit(1)
        # With near-zero clipped grads weights barely move.
        for name, parameter in model.named_parameters():
            assert np.allclose(parameter.data, before[name], atol=1e-2)

    def test_iteration_counter_advances(self):
        trainer, _ = build(DenseMethod())
        trainer.fit(2)
        assert trainer.iteration == 2 * 4  # 64 samples / batch 16 = 4 iters
