"""Spiking model zoo: shapes, gradients, registry, spike accounting."""

import numpy as np
import pytest

from repro.snn import reset_spike_stats, set_spike_tracking, spike_rate, spike_rates_per_layer
from repro.snn.models import (
    MODEL_REGISTRY,
    SpikingConvNet,
    SpikingMLP,
    build_model,
    flattened_spatial,
    scaled_width,
)
from repro.tensor import Tensor, cross_entropy


def batch(shape, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal(shape).astype(np.float32))


class TestZooShapes:
    @pytest.mark.parametrize("name", ["vgg16", "vgg11", "vgg9", "resnet19", "lenet5"])
    def test_forward_shape(self, name):
        model = build_model(
            name, num_classes=7, image_size=32, timesteps=2,
            width_mult=0.0625, rng=np.random.default_rng(0),
        )
        out = model(batch((2, 3, 32, 32)))
        assert out.shape == (2, 7)

    def test_convnet_shape(self):
        model = SpikingConvNet(num_classes=5, in_channels=1, image_size=8, channels=(4,), timesteps=2)
        assert model(batch((3, 1, 8, 8))).shape == (3, 5)

    def test_mlp_flattens_images(self):
        model = SpikingMLP(in_features=48, num_classes=4, hidden=(16,), timesteps=2)
        assert model(batch((2, 3, 4, 4))).shape == (2, 4)

    def test_vgg16_layer_inventory(self):
        """VGG-16 config D: 13 conv layers + 1 classifier."""
        model = build_model("vgg16", num_classes=10, width_mult=0.0625)
        conv_weights = [p for _, p in model.named_parameters() if p.ndim == 4]
        assert len(conv_weights) == 13

    def test_resnet19_layer_inventory(self):
        """ResNet-19: 1 stem + 8 blocks x 2 convs + shortcuts + 2 FC."""
        model = build_model("resnet19", num_classes=10, width_mult=0.0625)
        conv_weights = [p for _, p in model.named_parameters() if p.ndim == 4]
        fc_weights = [p for _, p in model.named_parameters() if p.ndim == 2]
        # 1 stem + 16 block convs + 2 downsample shortcuts = 19 conv tensors
        assert len(conv_weights) == 19
        assert len(fc_weights) == 2

    def test_tiny_imagenet_geometry(self):
        model = build_model(
            "vgg16", num_classes=20, image_size=64, timesteps=2, width_mult=0.0625
        )
        assert model(batch((1, 3, 64, 64))).shape == (1, 20)


class TestBPTTGradients:
    @pytest.mark.parametrize("name", ["vgg9", "resnet19", "lenet5"])
    def test_all_parameters_receive_gradients(self, name):
        model = build_model(
            name, num_classes=4, image_size=16, timesteps=2,
            width_mult=0.0625, rng=np.random.default_rng(1),
        )
        x = batch((2, 3, 16, 16), seed=2)
        loss = cross_entropy(model(x), np.array([0, 1]))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_timesteps_change_output(self):
        kwargs = dict(num_classes=3, in_channels=1, image_size=8, channels=(4,), rng=np.random.default_rng(3))
        model_t1 = SpikingConvNet(timesteps=1, **kwargs)
        kwargs["rng"] = np.random.default_rng(3)
        model_t4 = SpikingConvNet(timesteps=4, **kwargs)
        x = batch((1, 1, 8, 8), seed=4)
        out1 = model_t1(x)
        out4 = model_t4(x)
        assert not np.allclose(out1.data, out4.data)


class TestSpikeAccounting:
    def test_spike_rate_in_unit_interval(self):
        model = SpikingConvNet(num_classes=3, in_channels=1, image_size=8, channels=(4,), timesteps=3)
        model(batch((2, 1, 8, 8), seed=5))
        rate = spike_rate(model)
        assert 0.0 <= rate <= 1.0

    def test_per_layer_rates(self):
        model = SpikingConvNet(num_classes=3, in_channels=1, image_size=8, channels=(4, 4), timesteps=2)
        model(batch((1, 1, 8, 8), seed=6))
        rates = spike_rates_per_layer(model)
        assert len(rates) == 2
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_reset_spike_stats(self):
        model = SpikingConvNet(num_classes=3, in_channels=1, image_size=8, channels=(4,), timesteps=2)
        model(batch((1, 1, 8, 8), seed=7))
        reset_spike_stats(model)
        assert spike_rate(model) == 0.0

    def test_tracking_toggle(self):
        model = SpikingConvNet(num_classes=3, in_channels=1, image_size=8, channels=(4,), timesteps=2)
        set_spike_tracking(model, False)
        model(batch((1, 1, 8, 8), seed=8))
        assert spike_rate(model) == 0.0


class TestRegistry:
    def test_registry_contents(self):
        assert {"vgg16", "resnet19", "lenet5", "convnet"}.issubset(MODEL_REGISTRY)

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("transformer")

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            SpikingConvNet(timesteps=0)


class TestHelpers:
    def test_scaled_width(self):
        assert scaled_width(128, 0.5) == 64
        assert scaled_width(128, 0.001) == 4  # floor

    def test_flattened_spatial(self):
        assert flattened_spatial(32, 5) == 1
        assert flattened_spatial(64, 5) == 2
        assert flattened_spatial(8, 2) == 2


class TestNeuronKinds:
    @pytest.mark.parametrize("kind", ["lif", "if", "plif", "alif"])
    def test_zoo_accepts_neuron_kind(self, kind):
        model = build_model(
            "convnet", num_classes=3, in_channels=1, image_size=8,
            channels=(4,), timesteps=2, neuron_kind=kind,
            rng=np.random.default_rng(0),
        )
        out = model(batch((2, 1, 8, 8), seed=1))
        assert out.shape == (2, 3)

    def test_plif_adds_learnable_decay(self):
        plain = build_model("convnet", num_classes=3, in_channels=1, image_size=8,
                            channels=(4,), timesteps=2, rng=np.random.default_rng(0))
        plif = build_model("convnet", num_classes=3, in_channels=1, image_size=8,
                           channels=(4,), timesteps=2, neuron_kind="plif",
                           rng=np.random.default_rng(0))
        assert plif.count_parameters() == plain.count_parameters() + 1

    def test_unknown_kind_raises(self):
        from repro.snn.models.base import make_neuron
        with pytest.raises(ValueError):
            make_neuron(kind="izhikevich")

    def test_resnet_blocks_receive_kind(self):
        model = build_model("resnet19", num_classes=3, image_size=16, timesteps=2,
                            width_mult=0.0625, neuron_kind="if",
                            rng=np.random.default_rng(0))
        from repro.snn import IFNeuron
        neurons = [m for m in model.modules() if isinstance(m, IFNeuron)]
        assert len(neurons) > 10
