"""Surrogate gradient functions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn import (
    ATan,
    FastInverse,
    SigmoidSurrogate,
    StraightThrough,
    Triangle,
    available_surrogates,
    get_surrogate,
)


class TestFastInverse:
    """The paper's Eq. 3 surrogate."""

    def test_peak_value_at_zero(self):
        fn = FastInverse()
        assert fn(np.array([0.0]))[0] == 1.0

    def test_matches_formula(self):
        fn = FastInverse()
        x = np.array([0.5, -0.5, 2.0])
        expected = 1.0 / (1.0 + math.pi ** 2 * x ** 2)
        assert np.allclose(fn(x), expected)

    def test_decays_far_from_threshold(self):
        fn = FastInverse()
        assert fn(np.array([10.0]))[0] < 1e-2


class TestOtherSurrogates:
    def test_atan_peak(self):
        fn = ATan(alpha=2.0)
        assert np.isclose(fn(np.array([0.0]))[0], 1.0)

    def test_sigmoid_peak(self):
        fn = SigmoidSurrogate(alpha=4.0)
        assert np.isclose(fn(np.array([0.0]))[0], 1.0)  # alpha/4

    def test_triangle_support(self):
        fn = Triangle(gamma=1.0)
        assert fn(np.array([0.0]))[0] == 1.0
        assert fn(np.array([1.5]))[0] == 0.0

    def test_ste_boxcar(self):
        fn = StraightThrough(width=1.0)
        values = fn(np.array([0.0, 0.4, 0.6]))
        assert values.tolist() == [1.0, 1.0, 0.0]


class TestRegistry:
    def test_all_names_buildable(self):
        for name in available_surrogates():
            fn = get_surrogate(name)
            assert callable(fn)

    def test_kwargs_forwarded(self):
        fn = get_surrogate("atan", alpha=5.0)
        assert fn.alpha == 5.0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown surrogate"):
            get_surrogate("does_not_exist")


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=-50, max_value=50, allow_nan=False))
def test_surrogates_are_nonnegative_and_symmetric(x):
    """All pseudo-derivatives are even functions with values >= 0."""
    point = np.array([x], dtype=np.float64)
    for name in available_surrogates():
        fn = get_surrogate(name)
        value = fn(point)[0]
        mirrored = fn(-point)[0]
        assert value >= 0.0
        assert np.isclose(value, mirrored, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.1, max_value=50, allow_nan=False))
def test_surrogates_peak_at_origin(x):
    """The pseudo-derivative is maximal at the firing threshold."""
    for name in available_surrogates():
        fn = get_surrogate(name)
        assert fn(np.array([0.0]))[0] >= fn(np.array([x]))[0]
