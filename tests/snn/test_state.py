"""Neuron/network state snapshot-restore lifecycle.

The streaming layer swaps per-stream membrane state in and out of a
shared model around every forward; these tests pin the contract that
makes that exact: a restored state continues **bit-identically** to the
uninterrupted run, for every stateful module and for whole networks.
"""

import numpy as np
import pytest

from repro.snn import (
    AdaptiveLIFNeuron,
    IFNeuron,
    LIFNeuron,
    ParametricLIFNeuron,
    RecurrentSpikingLayer,
    reset_net,
)
from repro.snn.functional import restore_net_state, snapshot_net_state
from repro.snn.models import SpikingMLP
from repro.tensor import Tensor

NEURONS = [
    lambda: LIFNeuron(alpha=0.5),
    lambda: IFNeuron(),
    lambda: ParametricLIFNeuron(),
    lambda: AdaptiveLIFNeuron(beta=0.2),
]


def drive(module, currents):
    return [module(Tensor(c)).data.copy() for c in currents]


def make_currents(count, width=5, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.5, 1.5, size=(2, width)).astype(np.float32)
            for _ in range(count)]


@pytest.mark.parametrize("factory", NEURONS)
class TestNeuronStateRoundTrip:
    def test_restore_continues_bit_identically(self, factory):
        currents = make_currents(8)
        golden = drive(factory(), currents)

        neuron = factory()
        drive(neuron, currents[:4])
        snapshot = neuron.snapshot_state()
        drive(neuron, currents[4:])  # wander off past the snapshot point
        neuron.restore_state(snapshot)
        replayed = drive(neuron, currents[4:])
        for want, got in zip(golden[4:], replayed):
            assert np.array_equal(want, got)

    def test_snapshot_is_detached(self, factory):
        neuron = factory()
        drive(neuron, make_currents(2))
        snapshot = neuron.snapshot_state()
        membrane = neuron.v.data.copy()
        snapshot["v"] += 100.0
        assert np.array_equal(neuron.v.data, membrane)

    def test_fresh_state_round_trips_through_none(self, factory):
        neuron = factory()
        snapshot = neuron.snapshot_state()
        assert snapshot["v"] is None
        currents = make_currents(3)
        golden = drive(factory(), currents)
        neuron.restore_state(snapshot)  # restoring "fresh" is a reset
        for want, got in zip(golden, drive(neuron, currents)):
            assert np.array_equal(want, got)


class TestAdaptiveThresholdState:
    def test_adaptation_variable_is_captured(self):
        neuron = AdaptiveLIFNeuron(beta=0.5)
        drive(neuron, make_currents(4, seed=1))
        snapshot = neuron.snapshot_state()
        assert snapshot["adaptation"] is not None
        fresh = AdaptiveLIFNeuron(beta=0.5)
        fresh.restore_state(snapshot)
        assert np.array_equal(fresh.adaptation.data, neuron.adaptation.data)


class TestRecurrentLayerState:
    def make(self):
        return RecurrentSpikingLayer(5, 7, rng=np.random.default_rng(3))

    def test_feedback_buffer_round_trips(self):
        currents = make_currents(6, seed=2)
        golden = drive(self.make(), currents)

        layer = self.make()
        drive(layer, currents[:3])
        # Whole-layer state = its own buffer + the inner neuron's path.
        state = snapshot_net_state(layer)
        drive(layer, currents[3:])
        restore_net_state(layer, state)
        replayed = drive(layer, currents[3:])
        for want, got in zip(golden[3:], replayed):
            assert np.array_equal(want, got)

    def test_reset_net_clears_the_feedback_buffer(self):
        layer = self.make()
        drive(layer, make_currents(2, seed=4))
        assert layer._last_spikes is not None
        reset_net(layer)
        assert layer._last_spikes is None
        assert layer.neuron.v is None


class TestNetworkStateRoundTrip:
    def make_model(self):
        return SpikingMLP(6, 3, hidden=(10,), timesteps=4,
                          rng=np.random.default_rng(5))

    def frames(self, count, seed=6):
        rng = np.random.default_rng(seed)
        return [Tensor(rng.uniform(0, 1, size=(2, 6)).astype(np.float32))
                for _ in range(count)]

    def test_mid_window_snapshot_continues_bit_identically(self):
        frames = self.frames(6)
        golden_model = self.make_model()
        reset_net(golden_model)
        golden = [golden_model.forward_once(f).data.copy() for f in frames]

        model = self.make_model()
        reset_net(model)
        [model.forward_once(f) for f in frames[:3]]
        state = snapshot_net_state(model)
        [model.forward_once(f) for f in frames[3:]]
        restore_net_state(model, state)
        replayed = [model.forward_once(f).data.copy() for f in frames[3:]]
        for want, got in zip(golden[3:], replayed):
            assert np.array_equal(want, got)

    def test_state_keys_are_module_paths(self):
        model = self.make_model()
        reset_net(model)
        state = snapshot_net_state(model)
        assert state  # at least the spiking layers
        for name, entry in state.items():
            assert isinstance(entry, dict)
            # Every key addresses a real submodule with the state API.
            module = dict(model.named_modules())[name]
            assert hasattr(module, "restore_state")

    def test_mismatched_keys_are_rejected(self):
        model = self.make_model()
        reset_net(model)
        state = snapshot_net_state(model)
        missing = dict(state)
        missing.pop(next(iter(missing)))
        with pytest.raises(ValueError, match="missing"):
            restore_net_state(model, missing)
        extra = dict(state)
        extra["phantom.neuron"] = {"v": None, "o_prev": None}
        with pytest.raises(ValueError, match="unexpected"):
            restore_net_state(model, extra)
