"""Extension spiking components: ALIF, recurrent layer, tdBN."""

import numpy as np
import pytest

from repro.snn import (
    AdaptiveLIFNeuron,
    LIFNeuron,
    RecurrentSpikingLayer,
    ThresholdDependentBatchNorm2d,
    spike_rate_loss,
)
from repro.snn.models import SpikingMLP
from repro.tensor import Tensor


def drive(neuron, currents):
    outputs = []
    for current in currents:
        outputs.append(float(neuron(Tensor(np.array([current], dtype=np.float32))).data[0]))
    return outputs


class TestAdaptiveLIF:
    def test_threshold_rises_after_spiking(self):
        neuron = AdaptiveLIFNeuron(alpha=1.0, v_threshold=1.0, beta=10.0, rho=0.9)
        # First big input fires; adaptation then blocks an identical one
        # that a plain LIF would pass (soft reset leaves v = 0.5; +1.5
        # gives 2.0 >= 1.0, but threshold is now 1 + 10*1 = 11).
        outputs = drive(neuron, [1.5, 1.5])
        assert outputs[0] == 1.0
        assert outputs[1] == 0.0

    def test_zero_beta_matches_lif(self):
        currents = list(np.random.default_rng(0).uniform(-0.5, 1.5, size=12))
        alif = AdaptiveLIFNeuron(alpha=0.5, v_threshold=1.0, beta=0.0, rho=0.9)
        lif = LIFNeuron(alpha=0.5, v_threshold=1.0)
        assert drive(alif, currents) == drive(lif, currents)

    def test_adaptation_decays(self):
        neuron = AdaptiveLIFNeuron(alpha=0.5, v_threshold=1.0, beta=1.0, rho=0.5)
        drive(neuron, [2.0])
        assert neuron.adaptation[0] == 1.0
        drive(neuron, [0.0, 0.0])
        assert neuron.adaptation[0] == 0.25

    def test_reset_clears_adaptation(self):
        neuron = AdaptiveLIFNeuron()
        drive(neuron, [2.0])
        neuron.reset_state()
        assert neuron.adaptation is None and neuron.v is None

    def test_gradients_flow(self):
        w = Tensor(np.array([0.9], dtype=np.float32), requires_grad=True)
        neuron = AdaptiveLIFNeuron(alpha=0.5, beta=0.1)
        total = None
        for _ in range(3):
            out = neuron(w * 1.0)
            total = out if total is None else total + out
        total.backward(np.array([1.0], dtype=np.float32))
        assert w.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLIFNeuron(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveLIFNeuron(rho=1.0)
        with pytest.raises(ValueError):
            AdaptiveLIFNeuron(beta=-1.0)


class TestRecurrentLayer:
    def test_recurrence_changes_dynamics(self):
        rng = np.random.default_rng(0)
        layer = RecurrentSpikingLayer(8, 6, rng=rng)
        x = Tensor(np.full((2, 8), 1.0, dtype=np.float32))
        first = layer(x)
        second = layer(x)
        # After the first step the recurrent term participates; with
        # non-zero first spikes the second response generally differs
        # from what a reset layer would produce.
        layer.reset_state()
        first_again = layer(x)
        assert np.array_equal(first.data, first_again.data)
        assert first.shape == second.shape == (2, 6)

    def test_weights_are_sparsifiable(self):
        from repro.sparse import sparsifiable_parameters

        layer = RecurrentSpikingLayer(8, 6, rng=np.random.default_rng(1))
        names = [name for name, _ in sparsifiable_parameters(layer)]
        assert "input_proj.weight" in names
        assert "recurrent_proj.weight" in names

    def test_reset_state(self):
        layer = RecurrentSpikingLayer(4, 4, rng=np.random.default_rng(2))
        layer(Tensor(np.ones((1, 4), dtype=np.float32)))
        layer.reset_state()
        assert layer._last_spikes is None


class TestTdBN:
    def test_scale_initialized_to_threshold(self):
        bn = ThresholdDependentBatchNorm2d(4, v_threshold=0.5, alpha_td=2.0)
        assert np.allclose(bn.weight.data, 1.0)

    def test_normalizes_like_bn(self):
        bn = ThresholdDependentBatchNorm2d(3, v_threshold=1.0)
        x = Tensor(np.random.default_rng(3).standard_normal((8, 3, 4, 4)).astype(np.float32) * 5)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)


class TestSpikeRateLoss:
    def test_zero_at_target(self):
        model = SpikingMLP(in_features=4, num_classes=2, hidden=(4,), timesteps=2,
                           rng=np.random.default_rng(4))
        model(Tensor(np.random.default_rng(5).standard_normal((4, 4)).astype(np.float32)))
        from repro.snn import spike_rate

        observed = spike_rate(model)
        assert spike_rate_loss(model, target_rate=observed) == pytest.approx(0.0)

    def test_penalizes_deviation(self):
        model = SpikingMLP(in_features=4, num_classes=2, hidden=(4,), timesteps=2,
                           rng=np.random.default_rng(6))
        model(Tensor(np.full((4, 4), 5.0, dtype=np.float32)))
        assert spike_rate_loss(model, target_rate=0.0) > 0.0
