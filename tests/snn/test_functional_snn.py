"""Network-level spiking utilities: rate aggregation math."""

import numpy as np

from repro.nn.module import Module
from repro.snn import (
    LIFNeuron,
    reset_net,
    reset_spike_stats,
    set_spike_tracking,
    spike_rate,
    spike_rates_per_layer,
)
from repro.tensor import Tensor


class TwoNeuronNet(Module):
    def __init__(self):
        super().__init__()
        self.first = LIFNeuron()
        self.second = LIFNeuron()

    def forward(self, x):
        return self.second(self.first(x))


class TestAggregation:
    def test_global_rate_is_weighted_mean(self):
        net = TwoNeuronNet()
        # first neuron: all 4 units fire (input 2.0); second sees spikes
        # of value 1.0 -> fires all as well (1.0 >= threshold).
        net(Tensor(np.full((1, 4), 2.0, dtype=np.float32)))
        per_layer = spike_rates_per_layer(net)
        total = spike_rate(net)
        expected = np.mean(list(per_layer.values()))
        assert np.isclose(total, expected)

    def test_rate_zero_without_activity(self):
        net = TwoNeuronNet()
        assert spike_rate(net) == 0.0

    def test_rates_accumulate_across_forwards(self):
        net = TwoNeuronNet()
        net(Tensor(np.full((1, 2), 2.0, dtype=np.float32)))
        first_steps = net.first.neuron_steps
        net(Tensor(np.full((1, 2), 2.0, dtype=np.float32)))
        assert net.first.neuron_steps == 2 * first_steps

    def test_reset_spike_stats_only_clears_counters(self):
        net = TwoNeuronNet()
        net(Tensor(np.full((1, 2), 2.0, dtype=np.float32)))
        reset_spike_stats(net)
        assert spike_rate(net) == 0.0
        # membrane state untouched
        assert net.first.v is not None

    def test_reset_net_only_clears_state(self):
        net = TwoNeuronNet()
        net(Tensor(np.full((1, 2), 2.0, dtype=np.float32)))
        count = net.first.spike_count
        reset_net(net)
        assert net.first.v is None
        assert net.first.spike_count == count

    def test_tracking_toggle_round_trip(self):
        net = TwoNeuronNet()
        set_spike_tracking(net, False)
        net(Tensor(np.full((1, 2), 2.0, dtype=np.float32)))
        assert spike_rate(net) == 0.0
        set_spike_tracking(net, True)
        reset_net(net)
        net(Tensor(np.full((1, 2), 2.0, dtype=np.float32)))
        assert spike_rate(net) > 0.0
