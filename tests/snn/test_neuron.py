"""LIF/IF/PLIF neuron dynamics (paper Eq. 1) and BPTT gradients."""

import numpy as np
import pytest

from repro.nn.module import Module
from repro.snn import (
    FastInverse,
    IFNeuron,
    LIFNeuron,
    ParametricLIFNeuron,
    build_neuron,
    reset_net,
    spike_function,
)
from repro.tensor import Tensor


def drive(neuron, currents):
    """Feed a list of scalar currents; return the output spike list."""
    outputs = []
    for current in currents:
        out = neuron(Tensor(np.array([current], dtype=np.float32)))
        outputs.append(float(out.data[0]))
    return outputs


class TestLIFDynamics:
    def test_single_step_spike(self):
        neuron = LIFNeuron(alpha=0.5, v_threshold=1.0)
        assert drive(neuron, [1.5]) == [1.0]

    def test_subthreshold_no_spike(self):
        neuron = LIFNeuron(alpha=0.5, v_threshold=1.0)
        assert drive(neuron, [0.5]) == [0.0]

    def test_integration_to_threshold(self):
        # v1 = 0.6 (no spike); v2 = 0.5*0.6 + 0.8 = 1.1 >= 1 -> spike
        neuron = LIFNeuron(alpha=0.5, v_threshold=1.0)
        assert drive(neuron, [0.6, 0.8]) == [0.0, 1.0]

    def test_soft_reset_subtracts_threshold(self):
        # After spiking at v=1.5, the next membrane is
        # 0.5*1.5 + 0.5 - 1.0*1 = 0.25 -> no spike.
        neuron = LIFNeuron(alpha=0.5, v_threshold=1.0)
        outputs = drive(neuron, [1.5, 0.5])
        assert outputs == [1.0, 0.0]
        assert np.isclose(neuron.v.data[0], 0.25)

    def test_matches_hand_rolled_recurrence(self):
        rng = np.random.default_rng(0)
        currents = rng.uniform(-0.5, 1.5, size=10)
        alpha, theta = 0.7, 1.0
        neuron = LIFNeuron(alpha=alpha, v_threshold=theta)
        got = drive(neuron, currents)
        v, o_prev = 0.0, 0.0
        expected = []
        for index, current in enumerate(currents):
            if index == 0:
                v = current
            else:
                v = alpha * v + current - theta * o_prev
            o = 1.0 if v >= theta else 0.0
            expected.append(o)
            o_prev = o
        assert got == expected

    def test_reset_state(self):
        neuron = LIFNeuron()
        drive(neuron, [2.0])
        neuron.reset_state()
        assert neuron.v is None and neuron.o_prev is None

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LIFNeuron(alpha=0.0)
        with pytest.raises(ValueError):
            LIFNeuron(alpha=1.5)


class TestIFNeuron:
    def test_no_leak(self):
        neuron = IFNeuron(v_threshold=1.0)
        # 0.4 + 0.4 + 0.4 = 1.2 crosses threshold on step 3.
        assert drive(neuron, [0.4, 0.4, 0.4]) == [0.0, 0.0, 1.0]


class TestSpikeStats:
    def test_counts_accumulate(self):
        neuron = LIFNeuron()
        x = Tensor(np.full((2, 3), 2.0, dtype=np.float32))
        neuron(x)
        assert neuron.spike_count == 6
        assert neuron.neuron_steps == 6
        assert neuron.spike_rate == 1.0

    def test_reset_spike_stats(self):
        neuron = LIFNeuron()
        neuron(Tensor(np.full((1,), 2.0, dtype=np.float32)))
        neuron.reset_spike_stats()
        assert neuron.spike_rate == 0.0

    def test_tracking_disabled(self):
        neuron = LIFNeuron(track_spikes=False)
        neuron(Tensor(np.full((4,), 2.0, dtype=np.float32)))
        assert neuron.neuron_steps == 0


class TestSurrogateGradient:
    def test_spike_function_forward_is_heaviside(self):
        x = Tensor(np.array([-0.1, 0.0, 0.1], dtype=np.float32))
        out = spike_function(x, FastInverse())
        assert out.data.tolist() == [0.0, 1.0, 1.0]

    def test_backward_uses_surrogate(self):
        x = Tensor(np.array([0.5], dtype=np.float32), requires_grad=True)
        out = spike_function(x, FastInverse())
        out.backward(np.array([1.0], dtype=np.float32))
        expected = 1.0 / (1.0 + np.pi ** 2 * 0.25)
        assert np.isclose(x.grad[0], expected, atol=1e-5)

    def test_bptt_through_two_timesteps(self):
        """Gradient flows through the membrane recurrence."""
        w = Tensor(np.array([0.8], dtype=np.float32), requires_grad=True)
        neuron = LIFNeuron(alpha=0.5, v_threshold=1.0)
        total = None
        for _ in range(3):
            out = neuron(w * 1.0)
            total = out if total is None else total + out
        total.backward(np.array([1.0], dtype=np.float32))
        assert w.grad is not None
        assert w.grad[0] != 0.0


class TestParametricLIF:
    def test_decay_is_learnable(self):
        neuron = ParametricLIFNeuron(init_alpha=0.5)
        assert any(p is neuron.decay_logit for p in neuron.parameters())
        for _ in range(3):
            out = neuron(Tensor(np.array([0.8], dtype=np.float32)))
        out.backward(np.array([1.0], dtype=np.float32))
        assert neuron.decay_logit.grad is not None

    def test_initial_decay_value(self):
        neuron = ParametricLIFNeuron(init_alpha=0.25)
        alpha = 1.0 / (1.0 + np.exp(-neuron.decay_logit.data[0]))
        assert np.isclose(alpha, 0.25, atol=1e-5)


class TestFactoryAndReset:
    def test_build_neuron_kinds(self):
        assert isinstance(build_neuron("lif"), LIFNeuron)
        assert isinstance(build_neuron("if"), IFNeuron)
        assert isinstance(build_neuron("plif"), ParametricLIFNeuron)

    def test_build_neuron_with_surrogate_string(self):
        neuron = build_neuron("lif", surrogate="triangle")
        assert neuron.surrogate.name == "triangle"

    def test_build_neuron_unknown(self):
        with pytest.raises(ValueError):
            build_neuron("hodgkin_huxley")

    def test_reset_net_resets_all(self):
        class TwoNeurons(Module):
            def __init__(self):
                super().__init__()
                self.a = LIFNeuron()
                self.b = LIFNeuron()

        model = TwoNeurons()
        model.a(Tensor(np.array([2.0], dtype=np.float32)))
        model.b(Tensor(np.array([2.0], dtype=np.float32)))
        reset_net(model)
        assert model.a.v is None and model.b.v is None
