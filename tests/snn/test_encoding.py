"""Input encoders."""

import numpy as np
import pytest

from repro.snn import DirectEncoder, LatencyEncoder, PoissonEncoder, build_encoder
from repro.tensor import Tensor


class TestDirectEncoder:
    def test_repeats_input(self):
        encoder = DirectEncoder(timesteps=3)
        x = Tensor(np.ones((2, 2), dtype=np.float32))
        frames = list(encoder(x))
        assert len(frames) == 3
        assert all(frame is x for frame in frames)

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            DirectEncoder(0)


class TestPoissonEncoder:
    def test_rate_matches_intensity(self):
        encoder = PoissonEncoder(timesteps=500, rng=np.random.default_rng(0))
        x = Tensor(np.full((10, 10), 0.3, dtype=np.float32))
        rates = np.mean([frame.data for frame in encoder(x)], axis=0)
        assert abs(rates.mean() - 0.3) < 0.02

    def test_binary_output(self):
        encoder = PoissonEncoder(timesteps=5, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).random((4, 4)).astype(np.float32))
        for frame in encoder(x):
            assert set(np.unique(frame.data)).issubset({0.0, 1.0})

    def test_clipping_out_of_range(self):
        encoder = PoissonEncoder(timesteps=10, rng=np.random.default_rng(3))
        x = Tensor(np.array([[2.0]], dtype=np.float32))  # clipped to 1 -> always fires
        assert all(frame.data[0, 0] == 1.0 for frame in encoder(x))

    def test_seeded_by_default(self):
        """No rng argument is still deterministic (seed-derived stream)."""
        x = Tensor(np.random.default_rng(4).random((3, 3)).astype(np.float32))
        first = [f.data for f in PoissonEncoder(timesteps=6)(x)]
        second = [f.data for f in PoissonEncoder(timesteps=6)(x)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        other = [f.data for f in PoissonEncoder(timesteps=6, seed=1)(x)]
        assert any(not np.array_equal(a, b) for a, b in zip(first, other))

    def test_rng_stream_is_capturable(self):
        """The public rng supports checkpoint capture/restore mid-stream."""
        x = Tensor(np.random.default_rng(5).random((3, 3)).astype(np.float32))
        encoder = PoissonEncoder(timesteps=4, seed=2)
        list(encoder(x))  # advance the stream
        saved = encoder.rng.bit_generator.state
        want = [f.data for f in encoder(x)]
        encoder.rng.bit_generator.state = saved
        got = [f.data for f in encoder(x)]
        for a, b in zip(want, got):
            assert np.array_equal(a, b)


class TestLatencyEncoder:
    def test_exactly_one_spike_per_pixel(self):
        encoder = LatencyEncoder(timesteps=4)
        x = Tensor(np.array([[0.0, 0.5, 1.0]], dtype=np.float32))
        total = sum(frame.data for frame in encoder(x))
        assert np.allclose(total, 1.0)

    def test_bright_pixels_fire_first(self):
        encoder = LatencyEncoder(timesteps=4)
        x = Tensor(np.array([[1.0, 0.0]], dtype=np.float32))
        frames = [frame.data for frame in encoder(x)]
        assert frames[0][0, 0] == 1.0  # brightest fires at t=0
        assert frames[-1][0, 1] == 1.0  # darkest fires last


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("direct", DirectEncoder),
        ("poisson", PoissonEncoder),
        ("latency", LatencyEncoder),
    ])
    def test_build(self, name, cls):
        assert isinstance(build_encoder(name, 4), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_encoder("wavelet", 4)
