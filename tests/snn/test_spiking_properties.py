"""Property-based tests of spiking dynamics (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn import IFNeuron, LIFNeuron
from repro.tensor import Tensor

currents = st.lists(
    st.floats(min_value=-2.0, max_value=3.0, allow_nan=False, width=32),
    min_size=1,
    max_size=12,
)


def drive(neuron, inputs):
    spikes = []
    for value in inputs:
        out = neuron(Tensor(np.array([value], dtype=np.float32)))
        spikes.append(float(out.data[0]))
    return spikes


@settings(max_examples=50, deadline=None)
@given(currents, st.floats(min_value=0.1, max_value=1.0))
def test_outputs_are_binary(inputs, alpha):
    neuron = LIFNeuron(alpha=alpha)
    for spike in drive(neuron, inputs):
        assert spike in (0.0, 1.0)


@settings(max_examples=50, deadline=None)
@given(currents)
def test_spike_count_matches_counter(inputs):
    neuron = LIFNeuron()
    spikes = drive(neuron, inputs)
    assert neuron.spike_count == sum(spikes)
    assert neuron.neuron_steps == len(inputs)


@settings(max_examples=30, deadline=None)
@given(currents)
def test_reset_gives_identical_replay(inputs):
    """Dynamics are deterministic given state reset."""
    neuron = LIFNeuron(alpha=0.6)
    first = drive(neuron, inputs)
    neuron.reset_state()
    second = drive(neuron, inputs)
    assert first == second


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=0.95),
    st.floats(min_value=0.3, max_value=0.99, exclude_max=True),
)
def test_if_fires_at_least_as_often_as_lif(threshold, alpha):
    """With leak removed (alpha=1) membrane only grows faster, so the
    IF neuron fires at least as many times on constant positive input."""
    inputs = [0.3] * 10
    lif = LIFNeuron(alpha=alpha, v_threshold=threshold)
    iff = IFNeuron(v_threshold=threshold)
    assert sum(drive(iff, inputs)) >= sum(drive(lif, inputs))


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1.0, max_value=3.0))
def test_suprathreshold_constant_input_if_fires_every_step(value):
    """For the IF neuron (no leak) input >= threshold fires every step:
    the soft reset removes exactly one threshold's worth of charge, and
    the input immediately replaces it."""
    neuron = IFNeuron(v_threshold=1.0)
    spikes = drive(neuron, [value] * 6)
    assert spikes == [1.0] * 6


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1.0, max_value=3.0), st.floats(min_value=0.1, max_value=1.0))
def test_suprathreshold_constant_input_lif_fires_at_least_half(value, alpha):
    """A leaky neuron under constant suprathreshold drive may skip the
    step after a spike (leak + soft reset), but never two in a row."""
    neuron = LIFNeuron(alpha=alpha, v_threshold=1.0)
    spikes = drive(neuron, [value] * 8)
    assert spikes[0] == 1.0
    for first, second in zip(spikes, spikes[1:]):
        assert first == 1.0 or second == 1.0


@settings(max_examples=30, deadline=None)
@given(currents)
def test_negative_input_never_fires(inputs):
    neuron = LIFNeuron()
    negative = [-abs(value) - 0.01 for value in inputs]
    assert sum(drive(neuron, negative)) == 0.0
