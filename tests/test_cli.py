"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cifar10" in out
        assert "vgg16" in out
        assert "ndsnn" in out


class TestMemory:
    def test_prints_footprint(self, capsys):
        assert main(["memory", "--model", "lenet5", "--sparsity", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "lenet5" in out
        assert "90%" in out


class TestRun:
    def test_tiny_run_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        code = main([
            "run", "--dataset", "cifar10", "--model", "convnet",
            "--method", "ndsnn", "--sparsity", "0.8",
            "--epochs", "1", "--train-samples", "32", "--test-samples", "16",
            "--timesteps", "2", "--image-size", "8",
            "--update-frequency", "1",
            "--out", str(out_path), "--quiet",
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["method"] == "ndsnn"
        assert 0.0 <= payload["final_accuracy"] <= 1.0
        assert abs(payload["final_sparsity"] - 0.8) < 0.1
        assert len(payload["history"]) == 1

    def test_dense_run(self, capsys):
        code = main([
            "run", "--dataset", "cifar10", "--model", "convnet",
            "--method", "dense", "--epochs", "1",
            "--train-samples", "32", "--test-samples", "16",
            "--timesteps", "2", "--image-size", "8", "--quiet",
        ])
        assert code == 0
        assert "dense" in capsys.readouterr().out

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "magic"])

    @pytest.mark.smoke
    def test_csr_execution_run(self, capsys):
        code = main([
            "run", "--dataset", "cifar10", "--model", "convnet",
            "--method", "ndsnn", "--sparsity", "0.9", "--epochs", "1",
            "--train-samples", "32", "--test-samples", "16",
            "--timesteps", "2", "--image-size", "8",
            "--update-frequency", "1", "--execution", "auto", "--quiet",
        ])
        assert code == 0
        assert "ndsnn" in capsys.readouterr().out


FAST_SWEEP = [
    "--epochs", "1", "--train-samples", "32", "--test-samples", "16",
    "--timesteps", "2", "--image-size", "8", "--model", "convnet",
    "--update-frequency", "1",
]


class TestSweep:
    @pytest.mark.smoke
    def test_two_method_sweep_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "--method", "dense", "--method", "ndsnn",
            *FAST_SWEEP, "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep over 2 runs" in out
        payload = json.loads(out_path.read_text())
        assert [entry["method"] for entry in payload] == ["dense", "ndsnn"]
        assert all(0.0 <= entry["final_accuracy"] <= 1.0 for entry in payload)

    def test_parallel_jobs_sweep(self, capsys):
        code = main([
            "sweep", "--method", "dense", "--method", "set",
            "--jobs", "2", *FAST_SWEEP,
        ])
        assert code == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_rejects_unknown_sweep_method(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--method", "magic"])

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--backend", "carrier-pigeon", *FAST_SWEEP])

    @pytest.mark.smoke
    def test_spool_without_queue_backend_is_an_error(self, tmp_path, capsys):
        code = main(["sweep", "--spool", str(tmp_path / "s"), *FAST_SWEEP])
        assert code == 2
        assert "--backend queue" in capsys.readouterr().err

    @pytest.mark.smoke
    def test_queue_knobs_without_queue_backend_are_an_error(self, capsys):
        code = main(["sweep", "--lease-seconds", "5", *FAST_SWEEP])
        assert code == 2
        assert "--lease-seconds" in capsys.readouterr().err

    @pytest.mark.smoke
    @pytest.mark.parametrize("flag", ["--checkpoint-every", "--max-jobs"])
    def test_worker_rejects_nonpositive_counts(self, tmp_path, flag):
        with pytest.raises(SystemExit):
            main(["worker", "--spool", str(tmp_path), flag, "0"])


class TestQueueBackendCLI:
    def test_queue_sweep_matches_local_output_file(self, tmp_path, capsys):
        local_out = tmp_path / "local.json"
        queue_out = tmp_path / "queue.json"
        args = ["sweep", "--method", "dense", "--method", "ndsnn", *FAST_SWEEP]
        assert main([*args, "--out", str(local_out)]) == 0
        assert main([
            *args, "--backend", "queue", "--jobs", "2",
            "--spool", str(tmp_path / "spool"), "--out", str(queue_out),
        ]) == 0
        # The acceptance bar: byte-identical result files across backends.
        assert queue_out.read_text() == local_out.read_text()

    @pytest.mark.smoke
    def test_worker_drains_spool(self, tmp_path, capsys):
        from repro.experiments import JobQueue, scaled_config

        spool = tmp_path / "spool"
        queue = JobQueue(spool)
        queue.submit([
            scaled_config("cifar10", "convnet", "dense", 0.9, epochs=1,
                          train_samples=32, test_samples=16, timesteps=2,
                          batch_size=16, image_size=8),
        ])
        assert main(["worker", "--spool", str(spool)]) == 0
        assert "completed 1 job(s)" in capsys.readouterr().out
        assert queue.status().results == 1

    @pytest.mark.smoke
    def test_sweep_status_census_and_detail(self, tmp_path, capsys):
        from repro.experiments import JobQueue, scaled_config

        spool = tmp_path / "spool"
        queue = JobQueue(spool)
        queue.submit([
            scaled_config("cifar10", "convnet", "set", 0.9, epochs=1),
        ])
        assert main(["sweep-status", "--spool", str(spool), "--jobs-detail"]) == 0
        out = capsys.readouterr().out
        assert "pending" in out
        assert "job0000-set-" in out

    @pytest.mark.smoke
    def test_sweep_status_reports_failures_nonzero(self, tmp_path, capsys):
        from repro.experiments import JobQueue, QueueWorker, scaled_config

        spool = tmp_path / "spool"
        queue = JobQueue(spool, max_attempts=1)
        queue.submit([
            scaled_config("cifar10", "convnet", "blackhole", 0.9, epochs=1),
        ])
        QueueWorker(queue, poll_seconds=0.01).run(max_jobs=1)
        assert main(["sweep-status", "--spool", str(spool)]) == 1
        assert "failed" in capsys.readouterr().out


FAST_WORKLOAD = [
    "--dataset", "cifar10", "--model", "convnet", "--method", "ndsnn",
    "--sparsity", "0.8", "--epochs", "1", "--train-samples", "32",
    "--test-samples", "16", "--timesteps", "2", "--image-size", "8",
    "--update-frequency", "1",
]


class TestServing:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serving") / "ckpt"
        assert main([
            "run", *FAST_WORKLOAD, "--checkpoint", str(path), "--quiet",
        ]) == 0
        return path

    @pytest.mark.smoke
    def test_infer_reports_accuracy_and_dispatch(self, checkpoint, tmp_path, capsys):
        out_path = tmp_path / "infer.json"
        code = main([
            "infer", *FAST_WORKLOAD,
            "--checkpoint", str(checkpoint), "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        payload = json.loads(out_path.read_text())
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert payload["samples"] == 16
        routes = {entry["route"] for entry in payload["dispatch"]}
        assert routes <= {"csr", "dense"}
        assert payload["storage"]["frozen"] is True

    @pytest.mark.smoke
    def test_infer_compact_structured_checkpoint(self, tmp_path, capsys):
        # `run` trains no structured checkpoints from the CLI yet, so
        # write one with the library, then serve it compacted.
        import numpy as np

        from repro.experiments import scaled_config
        from repro.experiments.runner import build_experiment_model
        from repro.optim import SGD
        from repro.sparse import StructuredFilterPruning
        from repro.train.checkpoint import save_checkpoint

        config = scaled_config(
            "cifar10", "convnet", "structured", 0.8, epochs=1,
            train_samples=32, test_samples=16, timesteps=2, image_size=8,
            update_frequency=1,
        )
        model = build_experiment_model(config)
        method = StructuredFilterPruning(
            final_sparsity=0.5, total_iterations=8, update_frequency=4,
            rng=np.random.default_rng(2),
        )
        method.bind(model, SGD(model.parameters(), lr=0.1))
        for name, state in method.masks.states.items():
            mask = np.ones_like(state.mask)
            if mask.ndim == 4:
                mask[: mask.shape[0] // 2] = 0.0  # kill half the filters
            method.masks.set_mask(name, mask)
        method.masks.apply_masks()
        path = tmp_path / "structured_ckpt"
        save_checkpoint(path, model, method)

        structured = [
            arg if arg != "ndsnn" else "structured" for arg in FAST_WORKLOAD
        ]
        code = main([
            "infer", *structured, "--checkpoint", str(path), "--compact",
        ])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    @pytest.mark.smoke
    def test_serve_reports_latency_percentiles(self, checkpoint, tmp_path, capsys):
        out_path = tmp_path / "serve.json"
        code = main([
            "serve", *FAST_WORKLOAD,
            "--checkpoint", str(checkpoint), "--out", str(out_path),
            "--requests", "12", "--clients", "2", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "p50_ms" in out
        payload = json.loads(out_path.read_text())
        assert payload["p50_ms"] > 0.0
        assert payload["p99_ms"] >= payload["p50_ms"]
        assert payload["stats"]["completed"] == 12
        assert payload["stats"]["restarts"] == 0

    def test_infer_missing_checkpoint_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main([
                "infer", *FAST_WORKLOAD,
                "--checkpoint", str(tmp_path / "nope"),
            ])

    @pytest.mark.smoke
    def test_export_then_infer_from_package(self, checkpoint, tmp_path, capsys):
        package = tmp_path / "model.reprom"
        assert main([
            "export", *FAST_WORKLOAD,
            "--checkpoint", str(checkpoint), "--out", str(package),
            "--precision", "int8",
        ]) == 0
        assert "packed" in capsys.readouterr().out
        out_path = tmp_path / "packed_infer.json"
        code = main([
            "infer", *FAST_WORKLOAD,
            "--package", str(package), "--out", str(out_path),
        ])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert payload["samples"] == 16
        assert payload["storage"]["frozen"] is True
        assert {d["cutoff_source"] for d in payload["dispatch"]} == {"package"}
        packed = payload["storage"]["packed"]
        assert packed["precision"] == "int8"
        assert packed["file_bytes"] == package.stat().st_size

    def test_serving_requires_exactly_one_model_source(self, checkpoint, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["infer", *FAST_WORKLOAD])
        with pytest.raises(SystemExit, match="exactly one"):
            main([
                "infer", *FAST_WORKLOAD,
                "--checkpoint", str(checkpoint),
                "--package", str(tmp_path / "model.reprom"),
            ])
