"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cifar10" in out
        assert "vgg16" in out
        assert "ndsnn" in out


class TestMemory:
    def test_prints_footprint(self, capsys):
        assert main(["memory", "--model", "lenet5", "--sparsity", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "lenet5" in out
        assert "90%" in out


class TestRun:
    def test_tiny_run_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        code = main([
            "run", "--dataset", "cifar10", "--model", "convnet",
            "--method", "ndsnn", "--sparsity", "0.8",
            "--epochs", "1", "--train-samples", "32", "--test-samples", "16",
            "--timesteps", "2", "--image-size", "8",
            "--update-frequency", "1",
            "--out", str(out_path), "--quiet",
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["method"] == "ndsnn"
        assert 0.0 <= payload["final_accuracy"] <= 1.0
        assert abs(payload["final_sparsity"] - 0.8) < 0.1
        assert len(payload["history"]) == 1

    def test_dense_run(self, capsys):
        code = main([
            "run", "--dataset", "cifar10", "--model", "convnet",
            "--method", "dense", "--epochs", "1",
            "--train-samples", "32", "--test-samples", "16",
            "--timesteps", "2", "--image-size", "8", "--quiet",
        ])
        assert code == 0
        assert "dense" in capsys.readouterr().out

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "magic"])

    @pytest.mark.smoke
    def test_csr_execution_run(self, capsys):
        code = main([
            "run", "--dataset", "cifar10", "--model", "convnet",
            "--method", "ndsnn", "--sparsity", "0.9", "--epochs", "1",
            "--train-samples", "32", "--test-samples", "16",
            "--timesteps", "2", "--image-size", "8",
            "--update-frequency", "1", "--execution", "auto", "--quiet",
        ])
        assert code == 0
        assert "ndsnn" in capsys.readouterr().out


FAST_SWEEP = [
    "--epochs", "1", "--train-samples", "32", "--test-samples", "16",
    "--timesteps", "2", "--image-size", "8", "--model", "convnet",
    "--update-frequency", "1",
]


class TestSweep:
    @pytest.mark.smoke
    def test_two_method_sweep_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "--method", "dense", "--method", "ndsnn",
            *FAST_SWEEP, "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep over 2 runs" in out
        payload = json.loads(out_path.read_text())
        assert [entry["method"] for entry in payload] == ["dense", "ndsnn"]
        assert all(0.0 <= entry["final_accuracy"] <= 1.0 for entry in payload)

    def test_parallel_jobs_sweep(self, capsys):
        code = main([
            "sweep", "--method", "dense", "--method", "set",
            "--jobs", "2", *FAST_SWEEP,
        ])
        assert code == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_rejects_unknown_sweep_method(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--method", "magic"])
