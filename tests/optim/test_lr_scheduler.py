"""Learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, ConstantLR, CosineAnnealingLR, MultiStepLR, StepLR


def optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=lr)


class TestCosine:
    def test_starts_at_base_lr(self):
        opt = optimizer(lr=0.3)
        scheduler = CosineAnnealingLR(opt, t_max=10)
        scheduler.step()
        assert np.isclose(opt.lr, 0.3)

    def test_reaches_eta_min(self):
        opt = optimizer(lr=0.3)
        scheduler = CosineAnnealingLR(opt, t_max=5, eta_min=0.01)
        for _ in range(6):
            scheduler.step()
        assert np.isclose(opt.lr, 0.01)

    def test_halfway_point(self):
        opt = optimizer(lr=1.0)
        scheduler = CosineAnnealingLR(opt, t_max=10)
        for _ in range(6):  # epochs 0..5
            lr = scheduler.step()
        assert np.isclose(lr, 0.5)

    def test_monotone_decreasing(self):
        opt = optimizer(lr=1.0)
        scheduler = CosineAnnealingLR(opt, t_max=20)
        values = [scheduler.step() for _ in range(20)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer(), t_max=0)


class TestStep:
    def test_decays_every_step_size(self):
        opt = optimizer(lr=1.0)
        scheduler = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(5)]
        assert np.allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(optimizer(), step_size=0)


class TestMultiStep:
    def test_milestones(self):
        opt = optimizer(lr=1.0)
        scheduler = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = [scheduler.step() for _ in range(5)]
        assert np.allclose(lrs, [1.0, 1.0, 0.5, 0.5, 0.25])


class TestConstant:
    def test_constant(self):
        opt = optimizer(lr=0.7)
        scheduler = ConstantLR(opt)
        for _ in range(3):
            assert scheduler.step() == 0.7
