"""SGD/Adam optimizer mechanics."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam


def param(values):
    return Parameter(np.asarray(values, dtype=np.float32))


class TestSGD:
    def test_vanilla_step(self):
        p = param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95, 2.05])

    def test_skips_parameters_without_grad(self):
        p = param([1.0])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_weight_decay(self):
        p = param([2.0])
        p.grad = np.array([0.0], dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        # effective grad = 0 + 0.5*2 = 1 -> w = 2 - 0.1 = 1.9
        assert np.allclose(p.data, [1.9])

    def test_momentum_accumulates(self):
        p = param([0.0])
        optimizer = SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()  # v=1, w=-1
        p.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()  # v=1.5, w=-2.5
        assert np.allclose(p.data, [-2.5])

    def test_nesterov(self):
        p = param([0.0])
        optimizer = SGD([p], lr=1.0, momentum=0.5, nesterov=True)
        p.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()  # v=1, update = g + mu*v = 1.5 -> w=-1.5
        assert np.allclose(p.data, [-1.5])

    def test_state_for_and_reset(self):
        p = param([0.0, 0.0, 0.0])
        optimizer = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        optimizer.step()
        velocity = optimizer.state_for(p)
        assert np.allclose(velocity, [1.0, 2.0, 3.0])
        optimizer.reset_state_entries(p, np.array([1]))
        assert np.allclose(optimizer.state_for(p), [1.0, 0.0, 3.0])

    def test_zero_grad(self):
        p = param([1.0])
        p.grad = np.array([1.0], dtype=np.float32)
        optimizer = SGD([p], lr=0.1)
        optimizer.zero_grad()
        assert p.grad is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.1, weight_decay=-0.1)
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.1, nesterov=True)


class TestAdam:
    def test_first_step_size(self):
        p = param([0.0])
        optimizer = Adam([p], lr=0.001)
        p.grad = np.array([1.0], dtype=np.float32)
        optimizer.step()
        # Bias-corrected first step moves ~lr in the gradient direction.
        assert np.isclose(p.data[0], -0.001, atol=1e-5)

    def test_converges_on_quadratic(self):
        p = param([5.0])
        optimizer = Adam([p], lr=0.5)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dx x^2
            optimizer.step()
        assert abs(p.data[0]) < 0.1

    def test_reset_state_entries(self):
        p = param([0.0, 0.0])
        optimizer = Adam([p], lr=0.1)
        p.grad = np.array([1.0, 1.0], dtype=np.float32)
        optimizer.step()
        optimizer.reset_state_entries(p, np.array([0]))
        assert optimizer.state_for(p)[0] == 0.0
        assert optimizer.state_for(p)[1] != 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([param([1.0])], lr=0.1, betas=(1.0, 0.9))
