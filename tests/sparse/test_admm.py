"""ADMM pruning baseline."""

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import ADMMPruner
from repro.tensor import Tensor, cross_entropy


def make_model(seed=0):
    return SpikingMLP(
        in_features=20, num_classes=3, hidden=(24,), timesteps=2,
        rng=np.random.default_rng(seed),
    )


def train_steps(model, method, steps, seed=1):
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=0.05)
    method.bind(model, optimizer)
    for iteration in range(steps):
        x = Tensor(rng.standard_normal((6, 20)).astype(np.float32))
        y = rng.integers(0, 3, 6)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)


class TestProjection:
    def test_projection_keeps_topk(self):
        weights = np.array([[3.0, -0.1], [0.5, -2.0]], dtype=np.float32)
        projected = ADMMPruner._project(weights, density=0.5)
        assert projected[0, 0] == 3.0 and projected[1, 1] == -2.0
        assert projected[0, 1] == 0.0 and projected[1, 0] == 0.0

    def test_projection_preserves_values(self):
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((10, 10)).astype(np.float32)
        projected = ADMMPruner._project(weights, density=0.3)
        kept = projected != 0
        assert np.allclose(projected[kept], weights[kept])
        assert kept.sum() == 30


class TestPhases:
    def test_dense_during_admm_phase(self):
        model = make_model()
        method = ADMMPruner(sparsity=0.8, total_iterations=40, admm_fraction=0.5,
                            rng=np.random.default_rng(1))
        train_steps(model, method, 10)
        assert method.sparsity() == 0.0
        assert not method.pruned

    def test_hard_prune_at_phase_boundary(self):
        model = make_model(seed=2)
        method = ADMMPruner(sparsity=0.8, total_iterations=40, admm_fraction=0.5,
                            rng=np.random.default_rng(2))
        train_steps(model, method, 25)
        assert method.pruned
        assert abs(method.sparsity() - 0.8) < 0.05

    def test_mask_static_after_prune(self):
        model = make_model(seed=3)
        method = ADMMPruner(sparsity=0.7, total_iterations=30, admm_fraction=0.5,
                            rng=np.random.default_rng(3))
        train_steps(model, method, 16)
        masks_at_prune = method.masks.copy_masks()
        train_steps_continue(model, method, 16, 30)
        for name in masks_at_prune:
            assert np.array_equal(masks_at_prune[name], method.masks.masks[name])

    def test_sparsity_trace_shape(self):
        """The train-prune-retrain curve: zeros then the target (Fig. 1)."""
        model = make_model(seed=4)
        method = ADMMPruner(sparsity=0.9, total_iterations=20, admm_fraction=0.5,
                            rng=np.random.default_rng(4))
        train_steps(model, method, 20)
        trace = method.sparsity_trace
        assert trace[0] == 0.0
        assert trace[-1] > 0.85

    def test_admm_penalty_modifies_gradients(self):
        model = make_model(seed=5)
        method = ADMMPruner(sparsity=0.8, total_iterations=100, admm_fraction=0.9,
                            rho=10.0, rng=np.random.default_rng(5))
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        rng = np.random.default_rng(6)
        x = Tensor(rng.standard_normal((4, 20)).astype(np.float32))
        y = rng.integers(0, 3, 4)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        name = next(iter(method.masks.masks))
        parameter = method.masks.parameters[name]
        before = parameter.grad.copy()
        method.after_backward(1)
        assert not np.allclose(before, parameter.grad)

    def test_validation(self):
        with pytest.raises(ValueError):
            ADMMPruner(sparsity=0.0)
        with pytest.raises(ValueError):
            ADMMPruner(admm_fraction=1.0)


def train_steps_continue(model, method, start, stop, seed=7):
    rng = np.random.default_rng(seed)
    optimizer = method.optimizer
    for iteration in range(start, stop):
        x = Tensor(rng.standard_normal((6, 20)).astype(np.float32))
        y = rng.integers(0, 3, 6)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)
