"""Structured filter pruning extension."""

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn.models import SpikingConvNet, SpikingMLP
from repro.sparse import StructuredFilterPruning, filter_norms
from repro.tensor import Tensor, cross_entropy


def make_model(seed=0):
    return SpikingConvNet(
        num_classes=4, in_channels=2, image_size=8, channels=(8, 12),
        timesteps=2, rng=np.random.default_rng(seed),
    )


def run_iterations(model, method, iterations, seed=1):
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    method.bind(model, optimizer)
    for iteration in range(iterations):
        x = Tensor(rng.standard_normal((4, 2, 8, 8)).astype(np.float32))
        y = rng.integers(0, 4, 4)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)


class TestFilterNorms:
    def test_conv_norms(self):
        weight = np.zeros((3, 2, 2, 2), dtype=np.float32)
        weight[1] = 1.0
        norms = filter_norms(weight)
        assert norms[0] == 0.0
        assert np.isclose(norms[1], np.sqrt(8.0))

    def test_linear_norms(self):
        weight = np.array([[3.0, 4.0], [0.0, 0.0]], dtype=np.float32)
        assert np.allclose(filter_norms(weight), [5.0, 0.0])

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            filter_norms(np.zeros(3))


class TestStructuredPruning:
    def test_whole_filters_removed(self):
        model = make_model()
        method = StructuredFilterPruning(
            final_sparsity=0.5, total_iterations=40, update_frequency=10,
            rng=np.random.default_rng(0),
        )
        run_iterations(model, method, 40)
        for name in method._prunable_layers():
            parameter = method.masks.parameters[name]
            mask = method.masks.masks[name]
            for filter_index in range(parameter.shape[0]):
                filter_mask = mask[filter_index]
                # Each filter is either fully alive or fully dead.
                assert filter_mask.min() == filter_mask.max()

    def test_filter_sparsity_approaches_target(self):
        model = make_model(seed=1)
        method = StructuredFilterPruning(
            final_sparsity=0.5, total_iterations=40, update_frequency=10,
            rng=np.random.default_rng(1),
        )
        run_iterations(model, method, 40)
        fractions = method.filter_sparsity()
        pruned_layers = [fractions[name] for name in method._prunable_layers()]
        assert all(0.3 <= fraction <= 0.6 for fraction in pruned_layers)

    def test_last_layer_protected(self):
        model = make_model(seed=2)
        method = StructuredFilterPruning(
            final_sparsity=0.6, total_iterations=30, update_frequency=10,
            rng=np.random.default_rng(2),
        )
        run_iterations(model, method, 30)
        last = list(method.masks.masks)[-1]
        assert method.masks.masks[last].min() == 1.0

    def test_lowest_norm_filters_die_first(self):
        model = SpikingMLP(in_features=8, num_classes=3, hidden=(10,),
                           timesteps=2, rng=np.random.default_rng(3))
        method = StructuredFilterPruning(
            final_sparsity=0.3, total_iterations=20, update_frequency=10,
            rng=np.random.default_rng(3),
        )
        optimizer = SGD(model.parameters(), lr=1e-12)  # effectively frozen
        method.bind(model, optimizer)
        name = method._prunable_layers()[0]
        norms_before = filter_norms(method.masks.parameters[name].data)
        rng = np.random.default_rng(4)
        for iteration in range(20):
            x = Tensor(rng.standard_normal((4, 8)).astype(np.float32))
            y = rng.integers(0, 3, 4)
            loss = cross_entropy(model(x), y)
            optimizer.zero_grad()
            loss.backward()
            method.after_backward(iteration)
            optimizer.step()
            method.after_step(iteration)
        dead = method.pruned_filters[name]
        if dead:
            alive = [i for i in range(len(norms_before)) if i not in dead]
            assert max(norms_before[dead]) <= min(norms_before[alive]) + 1e-6

    def test_never_kills_all_filters(self):
        model = make_model(seed=5)
        method = StructuredFilterPruning(
            final_sparsity=0.99, total_iterations=30, update_frequency=5,
            rng=np.random.default_rng(5),
        )
        run_iterations(model, method, 30)
        for name in method._prunable_layers():
            assert method.masks.nonzero_count(name) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StructuredFilterPruning(final_sparsity=0.0)
        with pytest.raises(ValueError):
            StructuredFilterPruning(final_sparsity=1.0)
