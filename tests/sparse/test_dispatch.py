"""Measured per-shape dispatch calibration (repro.sparse.dispatch).

Covers the cutoff derivation from measured buckets, the write-once
shared cache that makes concurrent calibration deterministic, the
checkpoint round-trip of :class:`CalibrationTable`, and the
manager/layer-level inspection API (``explain_dispatch`` /
``dispatch_info``).
"""

import json
import os

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.sparse import SparsityManager
from repro.sparse.dispatch import (
    CALIBRATION_ENV,
    DENSITY_GRID,
    WIN_MARGIN,
    CalibrationTable,
    clear_process_cache,
    get_cutoff,
    matrix_shape,
    measure_crossover,
)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Private calibration cache per test (shadows the session cache)."""
    directory = tmp_path / "calib"
    monkeypatch.setenv(CALIBRATION_ENV, str(directory))
    clear_process_cache()
    yield directory
    clear_process_cache()


def fake_measure(cutoff, calls=None):
    """Injectable measurement returning a fixed cutoff."""

    def measure(rows, cols, **kwargs):
        if calls is not None:
            calls.append((rows, cols))
        return {"cutoff": cutoff, "buckets": {d: 2.0 for d in DENSITY_GRID}}

    return measure


class TestMeasureCrossover:
    def test_returns_prefix_cutoff_and_buckets(self):
        result = measure_crossover(48, 48, batch=4, repeats=1)
        assert set(result) == {"cutoff", "buckets"}
        assert set(result["buckets"]) == set(DENSITY_GRID)
        # The cutoff is the largest prefix of winning buckets: every
        # bucket at or below it must itself be a win.
        for density, speedup in result["buckets"].items():
            if density <= result["cutoff"]:
                assert speedup >= WIN_MARGIN

    def test_never_perturbs_global_rng(self):
        np.random.seed(123)
        before = np.random.get_state()[1].copy()
        measure_crossover(32, 32, batch=2, repeats=1)
        assert np.array_equal(np.random.get_state()[1], before)


class TestGetCutoff:
    def test_memoized_per_process(self, cache_dir):
        calls = []
        first = get_cutoff(64, 32, measure=fake_measure(0.25, calls))
        second = get_cutoff(64, 32, measure=fake_measure(0.99, calls))
        assert first == second == 0.25
        assert calls == [(64, 32)]  # second call served from memory

    def test_disk_cache_wins_over_fresh_measurement(self, cache_dir):
        get_cutoff(16, 16, measure=fake_measure(0.2))
        clear_process_cache()  # simulate a sibling process
        adopted = get_cutoff(16, 16, measure=fake_measure(0.5))
        assert adopted == 0.2

    def test_write_once_file_is_published(self, cache_dir):
        get_cutoff(8, 24, measure=fake_measure(0.35))
        path = cache_dir / "calibration-8x24.json"
        payload = json.loads(path.read_text())
        assert payload["cutoff"] == 0.35
        assert payload["rows"] == 8 and payload["cols"] == 24

    def test_no_cache_dir_still_memoizes(self, monkeypatch):
        monkeypatch.delenv(CALIBRATION_ENV, raising=False)
        clear_process_cache()
        calls = []
        get_cutoff(40, 40, measure=fake_measure(0.15, calls))
        get_cutoff(40, 40, measure=fake_measure(0.45, calls))
        assert calls == [(40, 40)]
        clear_process_cache()


class TestCalibrationTable:
    def test_calibrates_each_shape_once(self, cache_dir):
        calls = []
        table = CalibrationTable()
        table.calibrate_shapes(
            [(8, 16), (4, 2, 2, 2), (8, 16)], measure=fake_measure(0.3, calls)
        )
        assert len(table) == 2
        assert sorted(calls) == [(4, 8), (8, 16)]
        assert table.cutoff_for((4, 2, 2, 2)) == 0.3
        assert table.cutoff_for((99, 99)) is None

    def test_meta_round_trip(self):
        table = CalibrationTable({(8, 16): 0.25, (32, 9): 0.1})
        restored = CalibrationTable.from_meta(table.to_meta())
        assert restored.cutoffs == table.cutoffs
        assert CalibrationTable.from_meta({}) is None
        assert CalibrationTable.from_meta(None) is None

    def test_matrix_shape_reduction(self):
        assert matrix_shape((6, 7)) == (6, 7)
        assert matrix_shape((6, 3, 2, 2)) == (6, 12)


class _Wrapper(Module):
    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    def forward(self, x):
        return self.inner(x)


def make_bound_manager(density=0.05, execution="auto"):
    rng = np.random.default_rng(50)
    layer = Linear(32, 16, rng=rng)
    model = _Wrapper(layer)
    manager = SparsityManager(model, rng=rng)
    manager.init_distribution("uniform", density)
    manager.bind_layers(execution=execution)
    return layer, manager


class TestManagerCalibration:
    def test_calibrate_builds_table_and_overrides_static(self, cache_dir):
        layer, manager = make_bound_manager(density=0.3)
        state = layer.weight_state
        assert not manager.use_csr(state)  # static cutoff is 0.15
        manager.calibrate(measure=fake_measure(0.5))
        assert manager.use_csr(state)  # calibrated cutoff 0.5 > density 0.3

    def test_plain_bind_does_not_measure(self, cache_dir):
        _, manager = make_bound_manager()
        assert manager.calibration is None

    def test_bind_with_calibrate_measures(self, cache_dir, monkeypatch):
        import repro.sparse.dispatch as dispatch

        monkeypatch.setattr(dispatch, "measure_crossover", fake_measure(0.2))
        rng = np.random.default_rng(51)
        model = _Wrapper(Linear(32, 16, rng=rng))
        manager = SparsityManager(model, rng=rng)
        manager.init_distribution("uniform", 0.05)
        manager.bind_layers(execution="auto", calibrate=True)
        assert manager.calibration is not None
        assert manager.calibration.cutoff_for((16, 32)) == 0.2

    def test_explain_dispatch_reports_source_and_route(self, cache_dir):
        layer, manager = make_bound_manager(density=0.05)
        info = manager.explain_dispatch(next(iter(manager.states)))
        assert info["cutoff_source"] == "static"
        assert info["route"] == "csr"
        assert info["shape"] == (16, 32)
        manager.calibrate(measure=fake_measure(0.01))
        info = manager.explain_dispatch(next(iter(manager.states)))
        assert info["cutoff_source"] == "calibrated"
        assert info["cutoff"] == 0.01
        assert info["route"] == "dense"  # density ~0.05 > cutoff 0.01

    def test_layer_dispatch_info_delegates(self, cache_dir):
        layer, manager = make_bound_manager(density=0.05)
        info = layer.dispatch_info()
        assert info["layer"] == next(iter(manager.states))
        assert info["execution"] == "auto"
        unbound = Linear(4, 4, rng=np.random.default_rng(52))
        assert unbound.dispatch_info() is None
