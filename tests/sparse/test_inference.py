"""CSR-backed sparse inference: bit-identical to the dense masked model."""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear
from repro.optim import SGD
from repro.snn.models import SpikingConvNet
from repro.sparse import (
    CSRConv2d,
    CSRLinear,
    NDSNN,
    compress_model,
    compressed_storage_bits,
    compression_report,
)
from repro.tensor import Tensor, cross_entropy, no_grad


def sparse_trained_model(seed=0):
    model = SpikingConvNet(
        num_classes=5, in_channels=2, image_size=8, channels=(8, 8),
        timesteps=2, rng=np.random.default_rng(seed),
    )
    method = NDSNN(initial_sparsity=0.5, final_sparsity=0.8,
                   total_iterations=12, update_frequency=4,
                   rng=np.random.default_rng(seed + 1))
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    method.bind(model, optimizer)
    rng = np.random.default_rng(seed + 2)
    for iteration in range(12):
        x = Tensor(rng.standard_normal((4, 2, 8, 8)).astype(np.float32))
        y = rng.integers(0, 5, 4)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)
    return model, method


class TestCSRLayers:
    def test_csr_linear_matches_dense(self):
        layer = Linear(10, 6, rng=np.random.default_rng(0))
        layer.weight.data *= (np.random.default_rng(1).random((6, 10)) < 0.4)
        csr = CSRLinear.from_layer(layer)
        x = Tensor(np.random.default_rng(2).standard_normal((3, 10)).astype(np.float32))
        assert np.allclose(csr(x).data, layer(x).data, atol=1e-5)

    def test_csr_conv_matches_dense(self):
        layer = Conv2d(3, 5, 3, stride=2, padding=1, rng=np.random.default_rng(3))
        layer.weight.data *= (np.random.default_rng(4).random(layer.weight.shape) < 0.3)
        csr = CSRConv2d.from_layer(layer)
        x = Tensor(np.random.default_rng(5).standard_normal((2, 3, 8, 8)).astype(np.float32))
        assert np.allclose(csr(x).data, layer(x).data, atol=1e-4)

    def test_csr_conv_channel_check(self):
        layer = Conv2d(3, 5, 3, rng=np.random.default_rng(6))
        csr = CSRConv2d.from_layer(layer)
        with pytest.raises(ValueError):
            csr(Tensor(np.zeros((1, 2, 8, 8), dtype=np.float32)))

    def test_no_bias_layers(self):
        layer = Linear(4, 3, bias=False, rng=np.random.default_rng(7))
        csr = CSRLinear.from_layer(layer)
        x = Tensor(np.random.default_rng(8).standard_normal((2, 4)).astype(np.float32))
        assert np.allclose(csr(x).data, layer(x).data, atol=1e-5)


class TestCompressModel:
    def test_outputs_identical_after_compression(self):
        model, _ = sparse_trained_model()
        x = Tensor(np.random.default_rng(9).standard_normal((3, 2, 8, 8)).astype(np.float32))
        model.eval()
        with no_grad():
            dense_out = model(x).data.copy()
        compress_model(model)
        with no_grad():
            sparse_out = model(x).data
        assert np.allclose(dense_out, sparse_out, atol=1e-4)

    def test_all_weight_layers_replaced(self):
        model, _ = sparse_trained_model(seed=1)
        compress_model(model)
        remaining = [
            m for m in model.modules() if isinstance(m, (Linear, Conv2d))
        ]
        assert remaining == []

    def test_report_density_matches_training_sparsity(self):
        model, method = sparse_trained_model(seed=2)
        sparsity = method.sparsity()
        compress_model(model)
        report = compression_report(model)
        assert report["num_compressed_layers"] == 3  # 2 convs + classifier
        assert abs((1.0 - report["density"]) - sparsity) < 1e-6
        assert report["storage_bits"] == compressed_storage_bits(model)

    def test_storage_shrinks_with_sparsity(self):
        dense_model, _ = sparse_trained_model(seed=3)
        bits_sparse = compression_report(compress_model(dense_model))["storage_bits"]

        fresh = SpikingConvNet(num_classes=5, in_channels=2, image_size=8,
                               channels=(8, 8), timesteps=2,
                               rng=np.random.default_rng(3))
        bits_dense = compression_report(compress_model(fresh))["storage_bits"]
        assert bits_sparse < bits_dense
