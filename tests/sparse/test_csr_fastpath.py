"""CSR fast-path kernels: gradcheck and dense-parity at 50/90/99%.

Covers the :class:`~repro.sparse.storage.CSRPattern` kernels, the
dense-vs-CSR dispatch shim in :mod:`repro.tensor.functional`, and the
pure-numpy fallback used when SciPy is absent.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Linear
from repro.sparse import CSRPattern, SparsityManager
from repro.sparse import storage
from repro.tensor import (
    DISPATCH_COUNTS,
    Tensor,
    check_gradients,
    masked_conv2d,
    masked_linear,
    numeric_gradient,
)

SPARSITIES = (0.5, 0.9, 0.99)


def random_mask(shape, sparsity, seed=0):
    rng = np.random.default_rng(seed)
    size = int(np.prod(shape))
    keep = max(1, int(round((1.0 - sparsity) * size)))
    mask = np.zeros(size, dtype=np.float32)
    mask[rng.choice(size, size=keep, replace=False)] = 1.0
    return mask.reshape(shape)


class FakeManager:
    """Minimal manager stub forcing one dispatch decision."""

    def __init__(self, csr=True):
        self.csr = csr

    def use_csr(self, state):
        return self.csr


class FakeState:
    """MaskedParameter stand-in for direct kernel testing."""

    def __init__(self, mask, csr=True):
        self.mask = mask
        self.manager = FakeManager(csr)
        self._pattern = None

    def csr_pattern(self):
        if self._pattern is None:
            self._pattern = CSRPattern.from_mask(self.mask)
        return self._pattern


def masked_layer_pair(shape, sparsity, seed):
    """A masked weight tensor plus its CSR state."""
    rng = np.random.default_rng(seed)
    mask = random_mask(shape, sparsity, seed=seed + 1)
    weight = Tensor((rng.standard_normal(shape) * 0.5).astype(np.float32) * mask,
                    requires_grad=True)
    return weight, mask, FakeState(mask)


class TestCSRPatternKernels:
    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_matmul_matches_dense(self, sparsity):
        weight, mask, state = masked_layer_pair((24, 32), sparsity, seed=3)
        x = np.random.default_rng(4).standard_normal((32, 8)).astype(np.float32)
        pattern = state.csr_pattern()
        data = pattern.gather(weight.data)
        out = pattern.matmul(data, x)
        np.testing.assert_allclose(out, (weight.data * mask) @ x, atol=1e-5)

    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_t_matmul_matches_dense(self, sparsity):
        weight, mask, state = masked_layer_pair((24, 32), sparsity, seed=5)
        g = np.random.default_rng(6).standard_normal((24, 8)).astype(np.float32)
        pattern = state.csr_pattern()
        data = pattern.gather(weight.data)
        out = pattern.t_matmul(data, g)
        np.testing.assert_allclose(out, (weight.data * mask).T @ g, atol=1e-5)

    def test_4d_mask_uses_paper_reshape(self):
        mask = random_mask((6, 3, 3, 3), 0.5, seed=7)
        pattern = CSRPattern.from_mask(mask)
        assert pattern.shape == (6, 27)
        assert pattern.nnz == int(mask.sum())

    def test_density_property(self):
        mask = random_mask((10, 10), 0.9, seed=8)
        pattern = CSRPattern.from_mask(mask)
        assert pattern.density == pytest.approx(mask.mean(), abs=1e-6)


class TestMaskedLinearCSR:
    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_forward_matches_dense_path(self, sparsity):
        weight, _, state = masked_layer_pair((12, 16), sparsity, seed=10)
        bias = Tensor(np.random.default_rng(11).standard_normal(12).astype(np.float32),
                      requires_grad=True)
        x = Tensor(np.random.default_rng(12).standard_normal((4, 16)).astype(np.float32),
                   requires_grad=True)
        dense = masked_linear(x, weight, bias, None)
        sparse = masked_linear(x, weight, bias, state)
        np.testing.assert_allclose(sparse.data, dense.data, atol=1e-5)

    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_gradients_match_dense_path(self, sparsity):
        weight, _, state = masked_layer_pair((12, 16), sparsity, seed=13)
        bias = Tensor(np.random.default_rng(14).standard_normal(12).astype(np.float32),
                      requires_grad=True)
        x_data = np.random.default_rng(15).standard_normal((4, 16)).astype(np.float32)

        grads = {}
        for label, st in (("dense", None), ("csr", state)):
            x = Tensor(x_data.copy(), requires_grad=True)
            weight.zero_grad(); bias.zero_grad()
            (masked_linear(x, weight, bias, st) ** 2).sum().backward()
            grads[label] = (x.grad.copy(), weight.grad.copy(), bias.grad.copy())
        for dense_g, csr_g in zip(grads["dense"], grads["csr"]):
            np.testing.assert_allclose(csr_g, dense_g, atol=1e-5)

    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_gradcheck_against_finite_differences(self, sparsity):
        weight, mask, state = masked_layer_pair((5, 7), sparsity, seed=16)
        x = Tensor(np.random.default_rng(17).standard_normal((3, 7)).astype(np.float32),
                   requires_grad=True)
        fn = lambda: (masked_linear(x, weight, None, state) ** 2).sum()
        check_gradients(fn, [x])
        # The weight gradient is dense by design (regrowth scoring), so
        # finite differences only apply at the *active* positions that
        # the CSR forward actually reads.
        weight.zero_grad(); x.zero_grad()
        fn().backward()
        numeric = numeric_gradient(fn, weight)
        np.testing.assert_allclose(weight.grad * mask, numeric * mask,
                                   atol=1e-2 * max(1.0, np.abs(numeric).max()))

    def test_weight_gradient_is_dense(self):
        # Regrowth criteria score *inactive* positions by gradient
        # magnitude; the CSR path must not sparsify the weight gradient.
        weight, mask, state = masked_layer_pair((8, 10), 0.9, seed=18)
        x = Tensor(np.random.default_rng(19).standard_normal((4, 10)).astype(np.float32))
        weight.zero_grad()
        (masked_linear(x, weight, None, state) ** 2).sum().backward()
        inactive = mask == 0
        assert np.abs(weight.grad[inactive]).max() > 0.0


class TestMaskedConvCSR:
    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_forward_matches_dense_path(self, sparsity):
        weight, _, state = masked_layer_pair((6, 3, 3, 3), sparsity, seed=20)
        x = Tensor(np.random.default_rng(21).standard_normal((2, 3, 8, 8)).astype(np.float32))
        dense = masked_conv2d(x, weight, None, stride=1, padding=1, state=None)
        sparse = masked_conv2d(x, weight, None, stride=1, padding=1, state=state)
        np.testing.assert_allclose(sparse.data, dense.data, atol=1e-5)

    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_gradients_match_dense_path(self, sparsity):
        weight, _, state = masked_layer_pair((6, 3, 3, 3), sparsity, seed=22)
        bias = Tensor(np.random.default_rng(23).standard_normal(6).astype(np.float32),
                      requires_grad=True)
        x_data = np.random.default_rng(24).standard_normal((2, 3, 8, 8)).astype(np.float32)
        grads = {}
        for label, st in (("dense", None), ("csr", state)):
            x = Tensor(x_data.copy(), requires_grad=True)
            weight.zero_grad(); bias.zero_grad()
            out = masked_conv2d(x, weight, bias, stride=2, padding=1, state=st)
            (out ** 2).sum().backward()
            grads[label] = (x.grad.copy(), weight.grad.copy(), bias.grad.copy())
        for dense_g, csr_g in zip(grads["dense"], grads["csr"]):
            np.testing.assert_allclose(csr_g, dense_g, atol=1e-4)

    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_gradcheck_against_finite_differences(self, sparsity):
        weight, mask, state = masked_layer_pair((3, 2, 3, 3), sparsity, seed=25)
        x = Tensor(np.random.default_rng(26).standard_normal((1, 2, 5, 5)).astype(np.float32),
                   requires_grad=True)
        fn = lambda: (masked_conv2d(x, weight, None, stride=1, padding=1, state=state) ** 2).sum()
        check_gradients(fn, [x])
        weight.zero_grad(); x.zero_grad()
        fn().backward()
        numeric = numeric_gradient(fn, weight)
        np.testing.assert_allclose(weight.grad * mask, numeric * mask,
                                   atol=1e-2 * max(1.0, np.abs(numeric).max()))


class TestNumpyFallback:
    """The kernels survive without SciPy (vectorized reduceat path)."""

    @pytest.fixture(autouse=True)
    def no_scipy(self, monkeypatch):
        monkeypatch.setattr(storage, "HAVE_SCIPY", False)

    @pytest.mark.parametrize("sparsity", SPARSITIES)
    def test_matmul_and_t_matmul(self, sparsity):
        weight, mask, _ = masked_layer_pair((16, 24), sparsity, seed=30)
        pattern = CSRPattern.from_mask(mask)
        data = pattern.gather(weight.data)
        x = np.random.default_rng(31).standard_normal((24, 6)).astype(np.float32)
        g = np.random.default_rng(32).standard_normal((16, 6)).astype(np.float32)
        np.testing.assert_allclose(pattern.matmul(data, x), (weight.data * mask) @ x,
                                   atol=1e-5)
        np.testing.assert_allclose(pattern.t_matmul(data, g), (weight.data * mask).T @ g,
                                   atol=1e-5)

    def test_empty_rows_are_zero(self):
        mask = np.zeros((4, 6), dtype=np.float32)
        mask[1, 2] = 1.0  # rows 0, 2, 3 completely empty
        pattern = CSRPattern.from_mask(mask)
        weight = np.ones((4, 6), dtype=np.float32)
        x = np.ones((6, 3), dtype=np.float32)
        out = pattern.matmul(pattern.gather(weight), x)
        assert np.all(out[[0, 2, 3]] == 0.0)
        assert np.all(out[1] == 1.0)


def load_bench_module():
    import importlib.util
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "bench_kernels.py")
    spec = importlib.util.spec_from_file_location("bench_kernels", path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    return bench


@pytest.mark.smoke
class TestBenchComparisonMode:
    def test_comparison_cell_is_correct_and_complete(self):
        bench = load_bench_module()
        cell = bench.compare_masked_matmul(64, 64, 8, 0.9, repeats=2)
        assert cell["max_abs_error"] < 1e-4
        for key in ("dense_us", "csr_kernel_us", "speedup_kernel",
                    "speedup_with_refresh", "speedup_transposed",
                    "refresh_us", "refresh_overhead", "speedup_train_step"):
            assert cell[key] > 0.0

    def test_conv_cell_is_correct_and_complete(self):
        bench = load_bench_module()
        cell = bench.compare_masked_conv(4, 3, 3, 8, 8, 2, 0.9, repeats=2)
        assert cell["max_abs_error"] < 1e-4
        assert cell["dense_us"] > 0.0 and cell["csr_us"] > 0.0


@pytest.mark.smoke
class TestBenchRegressionGate:
    """The ``--check`` gate mechanism (not the machine-specific timings)."""

    def test_self_baseline_passes_and_doctored_baseline_fails(self, tmp_path):
        import json

        bench = load_bench_module()
        payload = bench.run_comparison(
            shapes=((64, 64, 8),), sparsities=(0.9,),
            conv_shapes=((4, 3, 3, 8, 8, 2),), repeats=2,
        )
        # A payload checked against itself can never regress.
        assert bench.check_regressions(payload, payload) == []
        # A baseline claiming far better numbers must trip the gate.
        doctored = dict(payload)
        doctored["best_speedup_at_90"] = payload["best_speedup_at_90"] * 100.0
        failures = bench.check_regressions(doctored, payload)
        assert any("best_speedup_at_90" in failure for failure in failures)

    def test_check_cli_exit_codes(self, tmp_path):
        import json

        bench = load_bench_module()
        payload = bench.run_comparison(
            shapes=((64, 64, 8),), sparsities=(0.9,),
            conv_shapes=((4, 3, 3, 8, 8, 2),), repeats=2,
        )
        good = tmp_path / "baseline.json"
        # Headline floors of ~0 pass on any machine; this exercises the
        # full --check path (load, compare, exit code) without timing
        # flakiness.
        relaxed = dict(payload)
        for metric in bench.HEADLINE_METRICS:
            relaxed[metric] = 1e-6
        relaxed["refresh_overhead_at_90"] = 1e6
        good.write_text(json.dumps(relaxed))
        assert bench.main(["--check", str(good), "--repeats", "1"]) == 0
        bad = tmp_path / "doctored.json"
        doctored = dict(payload)
        doctored["min_auto_speedup"] = 1e6
        bad.write_text(json.dumps(doctored))
        assert bench.main(["--check", str(bad), "--repeats", "1"]) == 1


@pytest.mark.smoke
class TestDispatch:
    def test_layers_dispatch_by_measured_density(self):
        rng = np.random.default_rng(40)
        layer = Linear(32, 16, rng=rng)
        from repro.nn.module import Module

        class Wrapper(Module):
            def __init__(self, inner):
                super().__init__()
                self.inner = inner

            def forward(self, x):
                return self.inner(x)

        model = Wrapper(layer)
        manager = SparsityManager(model, rng=rng)
        manager.init_distribution("uniform", 0.05)
        manager.bind_layers(execution="auto")
        x = Tensor(rng.standard_normal((4, 32)).astype(np.float32))
        before = dict(DISPATCH_COUNTS)
        model(x)
        assert DISPATCH_COUNTS["csr"] == before["csr"] + 1
        # Re-densify: auto dispatch falls back to the dense kernels.
        manager.init_distribution("uniform", 0.9)
        before = dict(DISPATCH_COUNTS)
        model(x)
        assert DISPATCH_COUNTS["dense"] == before["dense"] + 1

    def test_unmasked_layers_take_dense_route(self):
        layer = Conv2d(2, 4, 3, rng=np.random.default_rng(41))
        x = Tensor(np.random.default_rng(42).standard_normal((1, 2, 6, 6)).astype(np.float32))
        before = dict(DISPATCH_COUNTS)
        layer(x)
        assert DISPATCH_COUNTS["dense"] == before["dense"] + 1
        assert DISPATCH_COUNTS["csr"] == before["csr"]

    def test_training_parity_dense_vs_csr_execution(self):
        # One backward step under each execution mode: same loss, same grads.
        from repro.snn.models import SpikingMLP
        from repro.tensor import cross_entropy

        results = {}
        for mode in ("dense", "csr"):
            model = SpikingMLP(in_features=12, num_classes=3, hidden=(16,),
                               timesteps=2, rng=np.random.default_rng(43))
            manager = SparsityManager(model, rng=np.random.default_rng(44))
            manager.init_distribution("uniform", 0.1)
            manager.set_execution(mode)
            x = Tensor(np.random.default_rng(45).standard_normal((4, 12)).astype(np.float32))
            y = np.random.default_rng(46).integers(0, 3, 4)
            loss = cross_entropy(model(x), y)
            loss.backward()
            results[mode] = (
                float(loss.data),
                {n: p.grad.copy() for n, p in model.named_parameters() if p.grad is not None},
            )
        assert results["dense"][0] == pytest.approx(results["csr"][0], abs=1e-5)
        for name, dense_grad in results["dense"][1].items():
            np.testing.assert_allclose(results["csr"][1][name], dense_grad, atol=1e-5)
