"""CSR sparse storage (§III-D backing implementation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import MaskManager, csr_decode, csr_encode, model_csr_storage_bits
from repro.snn.models import SpikingMLP


def sparse_tensor(shape, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal(shape).astype(np.float32)
    mask = rng.random(shape) < density
    return dense * mask


class TestRoundTrip:
    def test_2d_roundtrip(self):
        tensor = sparse_tensor((6, 8))
        assert np.array_equal(csr_decode(csr_encode(tensor)), tensor)

    def test_4d_roundtrip(self):
        tensor = sparse_tensor((4, 3, 3, 3), seed=1)
        decoded = csr_decode(csr_encode(tensor))
        assert decoded.shape == tensor.shape
        assert np.array_equal(decoded, tensor)

    def test_all_zero(self):
        tensor = np.zeros((3, 4), dtype=np.float32)
        encoded = csr_encode(tensor)
        assert encoded.nnz == 0
        assert np.array_equal(csr_decode(encoded), tensor)

    def test_fully_dense(self):
        tensor = np.ones((3, 4), dtype=np.float32)
        encoded = csr_encode(tensor)
        assert encoded.nnz == 12
        assert encoded.density == 1.0

    def test_unsupported_rank(self):
        with pytest.raises(ValueError):
            csr_encode(np.zeros(5, dtype=np.float32))


class TestAccessors:
    def test_nnz_and_sparsity(self):
        tensor = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=np.float32)
        encoded = csr_encode(tensor)
        assert encoded.nnz == 2
        assert encoded.sparsity == 0.5

    def test_row(self):
        tensor = np.array([[1.0, 0.0, 3.0], [0.0, 0.0, 0.0]], dtype=np.float32)
        encoded = csr_encode(tensor)
        assert np.array_equal(encoded.row(0), [1.0, 0.0, 3.0])
        assert np.array_equal(encoded.row(1), [0.0, 0.0, 0.0])

    def test_matvec_matches_dense(self):
        tensor = sparse_tensor((5, 7), seed=2)
        x = np.random.default_rng(3).standard_normal(7).astype(np.float32)
        encoded = csr_encode(tensor)
        assert np.allclose(encoded.matvec(x), tensor @ x, atol=1e-5)

    def test_matvec_shape_check(self):
        encoded = csr_encode(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            encoded.matvec(np.zeros(5))

    def test_storage_bits_formula(self):
        tensor = sparse_tensor((4, 10), seed=4)
        encoded = csr_encode(tensor)
        expected = encoded.nnz * 32 * 2 + 5 * 32
        assert encoded.storage_bits() == expected


class TestModelStorage:
    def test_matches_analytic_model(self):
        """Measured CSR bits agree with the §III-D formula (inference
        part: weights + indices + row pointers, t=0 gradient copies)."""
        model = SpikingMLP(in_features=20, num_classes=5, hidden=(16,), rng=np.random.default_rng(0))
        masks = MaskManager(model, rng=np.random.default_rng(1))
        masks.init_random({name: 0.25 for name in masks.masks})
        measured = model_csr_storage_bits(model)
        nnz = masks.total_nonzero
        rows = sum(p.shape[0] for p in masks.parameters.values())
        analytic = nnz * 32 + nnz * 32 + (rows + len(masks.masks)) * 32
        assert measured == analytic


@settings(max_examples=25, deadline=None)
@given(
    density=st.floats(min_value=0.0, max_value=1.0),
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
)
def test_roundtrip_property(density, rows, cols):
    tensor = sparse_tensor((rows, cols), density=density, seed=rows * 31 + cols)
    encoded = csr_encode(tensor)
    assert np.array_equal(csr_decode(encoded), tensor)
    assert encoded.nnz == np.count_nonzero(tensor)
