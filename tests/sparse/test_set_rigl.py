"""SET-SNN and RigL-SNN baselines: constant-sparsity invariants."""

import math

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import RigLSNN, SETSNN
from repro.tensor import Tensor, cross_entropy


def make_model(seed=0):
    return SpikingMLP(
        in_features=24, num_classes=4, hidden=(32,), timesteps=2,
        rng=np.random.default_rng(seed),
    )


def run_iterations(model, method, iterations, seed=1):
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    method.bind(model, optimizer)
    sparsity_trace = []
    for iteration in range(iterations):
        x = Tensor(rng.standard_normal((8, 24)).astype(np.float32))
        y = rng.integers(0, 4, 8)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)
        sparsity_trace.append(method.sparsity())
    return sparsity_trace


class TestSET:
    def test_sparsity_constant_throughout(self):
        model = make_model()
        method = SETSNN(sparsity=0.8, total_iterations=50, update_frequency=10,
                        rng=np.random.default_rng(0))
        trace = run_iterations(model, method, 50)
        assert all(abs(s - trace[0]) < 1e-6 for s in trace)

    def test_topology_actually_changes(self):
        model = make_model()
        method = SETSNN(sparsity=0.8, total_iterations=50, update_frequency=10,
                        rng=np.random.default_rng(1))
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        before = method.masks.copy_masks()
        run_again = run_iterations(model, method, 15)  # noqa: F841 - crosses one update
        # bind() above was re-run inside run_iterations; compare masks anyway:
        changed = any(
            not np.array_equal(before[name], method.masks.masks[name])
            for name in before
        )
        assert changed

    def test_drop_equals_grow(self):
        model = make_model()
        method = SETSNN(sparsity=0.7, total_iterations=30, update_frequency=10,
                        rng=np.random.default_rng(2))
        run_iterations(model, method, 30)
        for record in method.history:
            assert record.total_dropped == record.total_grown

    def test_validation(self):
        with pytest.raises(ValueError):
            SETSNN(sparsity=1.0)
        with pytest.raises(ValueError):
            SETSNN(prune_rate=0.0)


class TestRigL:
    def test_sparsity_constant_throughout(self):
        model = make_model(seed=3)
        method = RigLSNN(sparsity=0.85, total_iterations=50, update_frequency=10,
                         rng=np.random.default_rng(3))
        trace = run_iterations(model, method, 50)
        assert all(abs(s - trace[0]) < 1e-6 for s in trace)

    def test_cosine_update_fraction(self):
        method = RigLSNN(sparsity=0.8, total_iterations=100, update_frequency=10,
                         alpha=0.4, stop_fraction=1.0)
        assert np.isclose(method.update_fraction(0), 0.4)
        expected_mid = 0.2 * (1 + math.cos(math.pi * 0.5))
        assert np.isclose(method.update_fraction(50), expected_mid)
        assert method.update_fraction(100) == 0.0

    def test_no_updates_after_stop_fraction(self):
        model = make_model(seed=4)
        method = RigLSNN(sparsity=0.8, total_iterations=40, update_frequency=10,
                         stop_fraction=0.5, rng=np.random.default_rng(4))
        run_iterations(model, method, 40)
        assert all(record.iteration < 20 for record in method.history)

    def test_growth_uses_gradients(self):
        model = make_model(seed=5)
        method = RigLSNN(sparsity=0.8, total_iterations=40, update_frequency=10,
                         rng=np.random.default_rng(5))
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        # Without gradients an update round must fail loudly.
        with pytest.raises(RuntimeError):
            method._replace_connections(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            RigLSNN(sparsity=-0.1)
        with pytest.raises(ValueError):
            RigLSNN(alpha=1.0)


class TestSETvsRigLGrowthDiffers:
    def test_different_topologies_from_same_start(self):
        """SET (random) and RigL (gradient) must diverge in topology."""
        results = {}
        for cls, key in ((SETSNN, "set"), (RigLSNN, "rigl")):
            model = make_model(seed=6)
            method = cls(sparsity=0.8, total_iterations=30, update_frequency=10,
                         rng=np.random.default_rng(7))
            run_iterations(model, method, 25, seed=8)
            results[key] = method.masks.copy_masks()
        same = all(
            np.array_equal(results["set"][name], results["rigl"][name])
            for name in results["set"]
        )
        assert not same
