"""Write-through CSR value maintenance: bit-exactness and coherence.

The optimizer step writes updated active values straight into the
cached :class:`~repro.sparse.storage.CSRPattern` buffer so the forward
never re-gathers.  These tests pin the contract:

* training under ``csr``/``auto`` execution with the write-through
  cache produces byte-identical weights, masks and losses to the same
  run with the cache disabled (every forward re-gathers) — for all
  eight methods plus LTH;
* every out-of-band weight mutation (checkpoint restore via
  ``load_state_dict``, fault injection) marks the cache stale so the
  next forward re-gathers instead of reading stale values.
"""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.optim import SGD, Adam
from repro.sparse import LTHSNN, MaskedParameter, SparsityManager
from repro.sparse.engine import MaskedParameter as EngineMaskedParameter
from repro.tensor import Tensor, cross_entropy
from repro.train.faults import (
    inject_bit_flips,
    inject_dead_neurons,
    inject_weight_dropout,
    inject_weight_noise,
    restore,
)

from test_engine import ITERS, METHOD_FACTORIES, make_model, mask_digests


def train_with_execution(method, execution, iterations=ITERS):
    """The golden-mask harness, but running the CSR kernels."""
    model = make_model()
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    method.bind(model, optimizer)
    method.set_execution(execution)
    rng = np.random.default_rng(8)
    losses = []
    for it in range(iterations):
        x = Tensor(rng.standard_normal((8, 16)).astype(np.float32))
        y = rng.integers(0, 4, 8)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(it)
        optimizer.step()
        method.after_step(it)
        losses.append(float(loss.data))
    return model, method, losses


@pytest.fixture
def force_regather(monkeypatch):
    """Disable the write-through cache: every csr_values() re-gathers."""

    def always_gather(self):
        pattern = self.csr_pattern()
        pattern.gather(self.parameter.data)
        self._values_dirty = False
        return pattern.values

    monkeypatch.setattr(EngineMaskedParameter, "csr_values", always_gather)


class TestWriteThroughBitExactness:
    """Cached values == freshly gathered values, for every method."""

    @pytest.mark.parametrize("name", sorted(METHOD_FACTORIES))
    def test_method_trains_identically_with_and_without_cache(
        self, name, force_regather, monkeypatch
    ):
        # Reference run: write-through disabled (per-forward gather).
        model_ref, method_ref, losses_ref = train_with_execution(
            METHOD_FACTORIES[name](np.random.default_rng(9)), "csr"
        )
        # Cached run: restore the real csr_values and train again.
        monkeypatch.undo()
        model_fast, method_fast, losses_fast = train_with_execution(
            METHOD_FACTORIES[name](np.random.default_rng(9)), "csr"
        )
        assert losses_fast == losses_ref
        assert mask_digests(method_fast.masks.copy_masks()) == mask_digests(
            method_ref.masks.copy_masks()
        )
        for (n, p_fast), (_, p_ref) in zip(
            model_fast.named_parameters(), model_ref.named_parameters()
        ):
            assert np.array_equal(p_fast.data, p_ref.data), n

    def test_lth_round_trains_identically(self, force_regather, monkeypatch):
        def lth_run():
            model = make_model()
            controller = LTHSNN(model, target_sparsity=0.7, rounds=2,
                                rng=np.random.default_rng(9))
            method = controller.method_for_round(1)
            optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
            method.bind(model, optimizer)
            method.set_execution("csr")
            rng = np.random.default_rng(8)
            for it in range(ITERS):
                x = Tensor(rng.standard_normal((8, 16)).astype(np.float32))
                y = rng.integers(0, 4, 8)
                loss = cross_entropy(model(x), y)
                optimizer.zero_grad()
                loss.backward()
                method.after_backward(it)
                optimizer.step()
                method.after_step(it)
            controller.prune(1)
            return model, {n: m.copy() for n, m in controller.masks.items()}

        _, masks_ref = lth_run()
        monkeypatch.undo()
        _, masks_fast = lth_run()
        assert mask_digests(masks_fast) == mask_digests(masks_ref)

    @pytest.mark.parametrize("optimizer_cls", (SGD, Adam))
    def test_optimizer_step_refreshes_buffer(self, optimizer_cls):
        layer = Linear(8, 6, rng=np.random.default_rng(20))

        class Wrapper(Module):
            def __init__(self, inner):
                super().__init__()
                self.inner = inner

            def forward(self, x):
                return self.inner(x)

        model = Wrapper(layer)
        manager = SparsityManager(model, rng=np.random.default_rng(21))
        manager.init_distribution("uniform", 0.3)
        manager.set_execution("csr")
        state = layer.weight_state
        values_before = state.csr_values().copy()
        layer.weight.grad = np.ones_like(layer.weight.data)
        optimizer = optimizer_cls([layer.weight], lr=0.1)
        optimizer.step()
        assert not state._values_dirty  # refreshed in the step itself
        pattern = state.csr_pattern()
        expected = pattern.gather(layer.weight.data).copy()
        assert np.array_equal(state.csr_values(), expected)
        assert not np.array_equal(state.csr_values(), values_before)


class _Sandbox(Module):
    def __init__(self, seed=30):
        super().__init__()
        self.fc = Linear(10, 8, rng=np.random.default_rng(seed))

    def forward(self, x):
        return self.fc(x)


def sandbox_state(seed=30, density=0.4):
    model = _Sandbox(seed)
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_distribution("uniform", density)
    manager.set_execution("csr")
    state = model.fc.weight_state
    state.csr_values()  # warm the cache
    assert not state._values_dirty
    return model, state


class TestStaleness:
    """Out-of-band weight mutations must invalidate the value cache."""

    def test_load_state_dict_marks_stale(self):
        model, state = sandbox_state()
        snapshot = model.state_dict()
        snapshot["fc.weight"] = snapshot["fc.weight"] * 2.0
        model.load_state_dict(snapshot)
        assert state._values_dirty
        pattern = state.csr_pattern()
        np.testing.assert_array_equal(
            state.csr_values(), pattern.gather(model.fc.weight.data)
        )

    @pytest.mark.parametrize(
        "injector",
        [
            lambda m: inject_weight_noise(m, 0.5, rng=np.random.default_rng(0)),
            lambda m: inject_weight_dropout(m, 0.5, rng=np.random.default_rng(0)),
            lambda m: inject_bit_flips(m, 3, rng=np.random.default_rng(0)),
            lambda m: inject_dead_neurons(m, 0.5, rng=np.random.default_rng(0)),
        ],
        ids=["noise", "dropout", "bit_flips", "dead_neurons"],
    )
    def test_fault_injection_marks_stale(self, injector):
        model, state = sandbox_state()
        snapshot = injector(model)
        assert state._values_dirty
        state.csr_values()
        assert not state._values_dirty
        restore(model, snapshot)
        assert state._values_dirty  # restore is also out-of-band

    def test_topology_edit_rebuilds_index_and_values(self):
        _, state = sandbox_state()
        pattern_before = state.csr_pattern()
        state.drop_by_magnitude(3)
        assert state._values_dirty
        assert state.csr_pattern() is not pattern_before
        fresh = state.csr_values()
        assert fresh.size == state.nonzero_count()

    def test_apply_mask_does_not_dirty(self):
        # Masked weights are already zero, so re-applying the mask
        # leaves active values untouched — the cache must stay warm
        # (this is what keeps after_step free under write-through).
        _, state = sandbox_state()
        state.apply_mask()
        assert not state._values_dirty

    def test_plain_tensor_parameter_is_tolerated(self):
        # Tensors with __slots__ cannot carry the back-reference; the
        # engine must degrade to per-call gathers, not crash.
        tensor = Tensor(np.ones((4, 4), dtype=np.float32), requires_grad=True)
        state = MaskedParameter("w", tensor)
        assert getattr(tensor, "_masked_state", None) is None
        assert state.csr_values().size == 16


def frozen_sandbox(seed=30, density=0.4):
    model = _Sandbox(seed)
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_distribution("uniform", density)
    manager.set_execution("csr")
    manager.freeze()
    return model, manager, model.fc.weight_state


class TestFrozenMode:
    """Inference freezing: every mutation path raises, none corrupts.

    The staleness tests above pin the *training* contract (out-of-band
    mutation dirties the cache).  Frozen for serving, the same events
    must fail loudly instead — a server may be reading the CSR buffer
    concurrently, so "dirty and re-gather later" is no longer safe.
    """

    def test_load_state_dict_into_frozen_raises(self):
        model, manager, state = frozen_sandbox()
        snapshot = model.state_dict()
        snapshot["fc.weight"] = snapshot["fc.weight"] * 2.0
        with pytest.raises(RuntimeError, match="frozen for inference"):
            model.load_state_dict(snapshot)
        # The failed restore must not have dirtied the serving cache.
        assert not state._values_dirty

    def test_write_through_raises_without_dirtying(self):
        _, _, state = frozen_sandbox()
        with pytest.raises(RuntimeError, match="optimizer step"):
            state.write_through()
        assert not state._values_dirty

    def test_topology_edit_raises(self):
        _, _, state = frozen_sandbox()
        with pytest.raises(RuntimeError, match="topology edit"):
            state.drop_by_magnitude(2)

    def test_pattern_gather_raises(self):
        _, _, state = frozen_sandbox()
        pattern = state.csr_pattern()
        with pytest.raises(RuntimeError, match="frozen CSRPattern"):
            pattern.gather(state.parameter.data)

    def test_value_buffer_is_readonly(self):
        _, _, state = frozen_sandbox()
        values = state.csr_values()
        with pytest.raises(ValueError):
            values[:] = 0.0

    def test_frozen_forward_still_works(self):
        model, _, _ = frozen_sandbox()
        out = model(Tensor(np.ones((3, 10), dtype=np.float32)))
        assert out.data.shape == (3, 8)
        # Freezing kills dense grad tracking on the masked weight; the
        # (unmasked) bias still tracks, which the serving session's
        # no_grad() suppresses — only the weight matters here.
        assert not model.fc.weight.requires_grad

    def test_thaw_restores_training_contract(self):
        model, manager, state = frozen_sandbox()
        manager.thaw()
        assert not manager.frozen
        snapshot = model.state_dict()
        snapshot["fc.weight"] = snapshot["fc.weight"] * 2.0
        model.load_state_dict(snapshot)  # no raise once thawed
        assert state._values_dirty
        pattern = state.csr_pattern()
        np.testing.assert_array_equal(
            state.csr_values(), pattern.gather(model.fc.weight.data)
        )

    def test_freeze_is_idempotent(self):
        _, manager, state = frozen_sandbox()
        assert manager.frozen
        manager.freeze()
        assert manager.frozen
        assert not state.parameter.requires_grad
