"""Sparsity ramp (Eq. 4) and death-rate schedules (Eq. 5)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    ConstantDeathSchedule,
    CosineDeathSchedule,
    LayerwiseSparsityRamp,
    SparsityRamp,
)


class TestSparsityRamp:
    def test_endpoints(self):
        ramp = SparsityRamp(0.5, 0.9, t_start=0, num_rounds=10, update_frequency=100)
        assert ramp.sparsity_at(0) == 0.5
        assert ramp.sparsity_at(1000) == 0.9

    def test_matches_equation4(self):
        theta_i, theta_f = 0.6, 0.95
        t0, n, dt = 0, 20, 50
        ramp = SparsityRamp(theta_i, theta_f, t_start=t0, num_rounds=n, update_frequency=dt)
        for t in (50, 250, 500, 900):
            expected = theta_f + (theta_i - theta_f) * (1 - (t - t0) / (n * dt)) ** 3
            assert np.isclose(ramp.sparsity_at(t), expected)

    def test_monotonically_nondecreasing(self):
        ramp = SparsityRamp(0.5, 0.99, t_start=0, num_rounds=30, update_frequency=10)
        values = [ramp.sparsity_at(t) for t in range(0, 400, 7)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_clamps_outside_window(self):
        ramp = SparsityRamp(0.5, 0.9, t_start=100, num_rounds=5, update_frequency=10)
        assert ramp.sparsity_at(0) == 0.5
        assert ramp.sparsity_at(10_000) == 0.9

    def test_t_end(self):
        ramp = SparsityRamp(0.5, 0.9, t_start=10, num_rounds=5, update_frequency=20)
        assert ramp.t_end == 110

    def test_power_knob(self):
        cubic = SparsityRamp(0.0, 0.9, 0, 10, 10, power=3.0)
        linear = SparsityRamp(0.0, 0.9, 0, 10, 10, power=1.0)
        # Cubic ramps faster initially (sparsifies sooner).
        assert cubic.sparsity_at(20) > linear.sparsity_at(20)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparsityRamp(0.9, 0.5, 0, 10, 10)  # initial > final
        with pytest.raises(ValueError):
            SparsityRamp(0.5, 1.0, 0, 10, 10)  # final not < 1
        with pytest.raises(ValueError):
            SparsityRamp(0.5, 0.9, 0, 0, 10)
        with pytest.raises(ValueError):
            SparsityRamp(0.5, 0.9, 0, 10, 0)

    def test_callable(self):
        ramp = SparsityRamp(0.5, 0.9, 0, 10, 10)
        assert ramp(0) == ramp.sparsity_at(0)


class TestLayerwiseRamp:
    def test_per_layer_endpoints(self):
        initial = {"a": 0.4, "b": 0.6}
        final = {"a": 0.8, "b": 0.95}
        ramp = LayerwiseSparsityRamp(initial, final, 0, 10, 10)
        start = ramp.sparsity_at(0)
        end = ramp.sparsity_at(100)
        assert start == initial
        assert end == final

    def test_mismatched_layers_raise(self):
        with pytest.raises(ValueError):
            LayerwiseSparsityRamp({"a": 0.5}, {"b": 0.9}, 0, 10, 10)

    def test_initial_above_final_is_clipped(self):
        # ERK capping can make a layer's initial sparsity exceed its final;
        # the ramp clips so Eq. 4 stays monotone.
        ramp = LayerwiseSparsityRamp({"a": 0.9}, {"a": 0.8}, 0, 10, 10)
        assert ramp.sparsity_at(0)["a"] <= 0.8

    def test_getitem(self):
        ramp = LayerwiseSparsityRamp({"a": 0.5}, {"a": 0.9}, 0, 10, 10)
        assert isinstance(ramp["a"], SparsityRamp)


class TestCosineDeathSchedule:
    def test_endpoints(self):
        schedule = CosineDeathSchedule(0.5, 0.05, num_rounds=10, update_frequency=100)
        assert schedule.rate_at(0) == 0.5
        assert schedule.rate_at(1000) == pytest.approx(0.05)

    def test_matches_equation5(self):
        d0, dmin, n, dt = 0.5, 0.05, 20, 50
        schedule = CosineDeathSchedule(d0, dmin, num_rounds=n, update_frequency=dt)
        for t in (50, 300, 700):
            expected = dmin + 0.5 * (d0 - dmin) * (1 + math.cos(math.pi * t / (n * dt)))
            assert np.isclose(schedule.rate_at(t), expected)

    def test_monotonically_decreasing(self):
        schedule = CosineDeathSchedule(0.5, 0.0, num_rounds=20, update_frequency=10)
        values = [schedule.rate_at(t) for t in range(0, 220, 3)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_clamps_beyond_horizon(self):
        schedule = CosineDeathSchedule(0.5, 0.1, num_rounds=5, update_frequency=10)
        assert schedule.rate_at(10_000) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDeathSchedule(0.05, 0.5, 10, 10)  # min > initial


class TestConstantSchedule:
    def test_constant(self):
        schedule = ConstantDeathSchedule(0.3)
        assert schedule.rate_at(0) == schedule.rate_at(999) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantDeathSchedule(1.5)


@settings(max_examples=50, deadline=None)
@given(
    theta_i=st.floats(min_value=0.0, max_value=0.9),
    gap=st.floats(min_value=0.0, max_value=0.099),
    t=st.integers(min_value=0, max_value=10_000),
)
def test_ramp_bounded_by_endpoints(theta_i, gap, t):
    theta_f = min(0.999, theta_i + gap)
    ramp = SparsityRamp(theta_i, theta_f, 0, 10, 50)
    value = ramp.sparsity_at(t)
    assert theta_i - 1e-9 <= value <= theta_f + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    d0=st.floats(min_value=0.01, max_value=1.0),
    frac=st.floats(min_value=0.0, max_value=1.0),
    t=st.integers(min_value=0, max_value=10_000),
)
def test_death_rate_bounded(d0, frac, t):
    dmin = d0 * frac
    schedule = CosineDeathSchedule(d0, dmin, 10, 50)
    value = schedule.rate_at(t)
    assert dmin - 1e-9 <= value <= d0 + 1e-9
