"""ERK sparsity distribution (paper §III-C step 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    build_distribution,
    erk_densities,
    erk_sparsities,
    global_density,
    uniform_densities,
)

SHAPES = {
    "conv1": (16, 3, 3, 3),
    "conv2": (32, 16, 3, 3),
    "conv3": (64, 32, 3, 3),
    "fc": (10, 64),
}


class TestERK:
    def test_global_density_conserved(self):
        for density in (0.05, 0.1, 0.2, 0.5):
            densities = erk_densities(SHAPES, density)
            assert np.isclose(global_density(SHAPES, densities), density, atol=1e-6)

    def test_small_layers_are_denser(self):
        densities = erk_densities(SHAPES, 0.1)
        # The thin first conv and the small FC keep more of their weights
        # than the fat middle convolutions.
        assert densities["conv1"] > densities["conv3"]
        assert densities["fc"] > densities["conv3"]

    def test_capping_at_one(self):
        # A very skewed network forces the tiny layer to full density.
        shapes = {"tiny": (2, 2), "huge": (512, 512, 3, 3)}
        densities = erk_densities(shapes, 0.5)
        assert densities["tiny"] == 1.0
        assert densities["huge"] < 1.0
        assert np.isclose(global_density(shapes, densities), 0.5, atol=1e-6)

    def test_density_one_trivial(self):
        densities = erk_densities(SHAPES, 1.0)
        assert all(d == 1.0 for d in densities.values())

    def test_power_scale_zero_is_uniformish(self):
        densities = erk_densities(SHAPES, 0.3, power_scale=0.0)
        values = list(densities.values())
        assert np.allclose(values, values[0], atol=1e-6)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            erk_densities(SHAPES, 0.0)
        with pytest.raises(ValueError):
            erk_densities(SHAPES, 1.5)

    def test_empty_shapes(self):
        with pytest.raises(ValueError):
            erk_densities({}, 0.5)

    def test_erk_sparsities_wrapper(self):
        sparsities = erk_sparsities(SHAPES, 0.9)
        densities = erk_densities(SHAPES, 0.1)
        for name in SHAPES:
            assert np.isclose(sparsities[name], 1.0 - densities[name])


class TestUniform:
    def test_uniform(self):
        densities = uniform_densities(SHAPES, 0.25)
        assert all(d == 0.25 for d in densities.values())

    def test_factory(self):
        assert build_distribution("erk", SHAPES, 0.2) == erk_densities(SHAPES, 0.2)
        assert build_distribution("uniform", SHAPES, 0.2) == uniform_densities(SHAPES, 0.2)
        with pytest.raises(ValueError):
            build_distribution("lognormal", SHAPES, 0.2)


@settings(max_examples=30, deadline=None)
@given(
    density=st.floats(min_value=0.01, max_value=0.99),
    scale=st.integers(min_value=1, max_value=8),
)
def test_erk_properties(density, scale):
    """Conservation and bounds hold for arbitrary densities/architectures."""
    shapes = {
        "a": (4 * scale, 3, 3, 3),
        "b": (8 * scale, 4 * scale, 3, 3),
        "c": (10, 8 * scale),
    }
    densities = erk_densities(shapes, density)
    assert all(0.0 < d <= 1.0 for d in densities.values())
    assert np.isclose(global_density(shapes, densities), density, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(density=st.floats(min_value=0.01, max_value=0.5))
def test_erk_ordering_is_density_independent(density):
    """Relative layer ordering under ERK does not depend on the level."""
    low = erk_densities(SHAPES, density)
    high = erk_densities(SHAPES, min(0.99, density * 1.5))
    names = sorted(SHAPES)
    order_low = sorted(names, key=lambda n: low[n])
    order_high = sorted(names, key=lambda n: high[n])
    # Orders agree except where capping at 1.0 collapses distinctions.
    uncapped = [n for n in names if low[n] < 1.0 and high[n] < 1.0]
    assert [n for n in order_low if n in uncapped] == [n for n in order_high if n in uncapped]
