"""GMP and SNIP extension baselines."""

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import GMPSNN, SNIPSNN
from repro.tensor import Tensor, cross_entropy


def make_model(seed=0):
    return SpikingMLP(
        in_features=24, num_classes=4, hidden=(32,), timesteps=2,
        rng=np.random.default_rng(seed),
    )


def run_iterations(model, method, iterations, seed=1):
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    method.bind(model, optimizer)
    for iteration in range(iterations):
        x = Tensor(rng.standard_normal((8, 24)).astype(np.float32))
        y = rng.integers(0, 4, 8)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)


class TestGMP:
    def test_reaches_target_sparsity(self):
        model = make_model()
        method = GMPSNN(final_sparsity=0.9, total_iterations=50, update_frequency=10,
                        rng=np.random.default_rng(0))
        run_iterations(model, method, 50)
        assert abs(method.sparsity() - 0.9) < 0.02

    def test_starts_dense_by_default(self):
        model = make_model()
        method = GMPSNN(final_sparsity=0.9, total_iterations=50, update_frequency=10)
        method.bind(model, SGD(model.parameters(), lr=0.05))
        assert method.sparsity() == 0.0

    def test_can_start_sparse(self):
        model = make_model()
        method = GMPSNN(initial_sparsity=0.5, final_sparsity=0.9,
                        total_iterations=50, update_frequency=10,
                        rng=np.random.default_rng(1))
        method.bind(model, SGD(model.parameters(), lr=0.05))
        assert abs(method.sparsity() - 0.5) < 0.05

    def test_no_regrowth(self):
        """Once a weight is pruned it stays pruned (unlike NDSNN)."""
        model = make_model(seed=2)
        method = GMPSNN(final_sparsity=0.8, total_iterations=40, update_frequency=10,
                        rng=np.random.default_rng(2))
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        rng = np.random.default_rng(3)
        previous_masks = None
        for iteration in range(40):
            x = Tensor(rng.standard_normal((8, 24)).astype(np.float32))
            y = rng.integers(0, 4, 8)
            loss = cross_entropy(model(x), y)
            optimizer.zero_grad()
            loss.backward()
            method.after_backward(iteration)
            optimizer.step()
            method.after_step(iteration)
            current = method.masks.copy_masks()
            if previous_masks is not None:
                for name in current:
                    revived = (current[name] > 0) & (previous_masks[name] == 0)
                    assert not revived.any()
            previous_masks = current

    def test_sparsity_monotone(self):
        model = make_model(seed=4)
        method = GMPSNN(final_sparsity=0.95, total_iterations=60, update_frequency=10,
                        rng=np.random.default_rng(4))
        run_iterations(model, method, 60)
        trace = method.prune_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            GMPSNN(initial_sparsity=0.9, final_sparsity=0.5)


class TestSNIP:
    def test_prunes_after_calibration(self):
        model = make_model(seed=5)
        method = SNIPSNN(sparsity=0.8, calibration_batches=2, rng=np.random.default_rng(5))
        run_iterations(model, method, 5)
        assert abs(method.sparsity() - 0.8) < 0.02

    def test_dense_before_calibration(self):
        model = make_model(seed=6)
        method = SNIPSNN(sparsity=0.8, calibration_batches=3)
        method.bind(model, SGD(model.parameters(), lr=0.05))
        assert method.sparsity() == 0.0

    def test_mask_static_after_calibration(self):
        model = make_model(seed=7)
        method = SNIPSNN(sparsity=0.7, calibration_batches=1, rng=np.random.default_rng(7))
        run_iterations(model, method, 3)
        masks_after = method.masks.copy_masks()
        run_more = make_model  # noqa: F841
        # continue training with the same bound method
        rng = np.random.default_rng(8)
        optimizer = method.optimizer
        for iteration in range(3, 10):
            x = Tensor(rng.standard_normal((8, 24)).astype(np.float32))
            y = rng.integers(0, 4, 8)
            loss = cross_entropy(model(x), y)
            optimizer.zero_grad()
            loss.backward()
            method.after_backward(iteration)
            optimizer.step()
            method.after_step(iteration)
        for name in masks_after:
            assert np.array_equal(masks_after[name], method.masks.masks[name])

    def test_sensitivity_selects_high_scores(self):
        """Weights with |g*w| above the global threshold survive."""
        model = make_model(seed=9)
        method = SNIPSNN(sparsity=0.5, calibration_batches=1, rng=np.random.default_rng(9))
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        rng = np.random.default_rng(10)
        x = Tensor(rng.standard_normal((8, 24)).astype(np.float32))
        y = rng.integers(0, 4, 8)
        loss = cross_entropy(model(x), y)
        loss.backward()
        scores = {
            name: np.abs(p.grad * p.data)
            for name, p in method.masks.parameters.items()
        }
        method.after_backward(0)
        all_scores = np.concatenate([s.reshape(-1) for s in scores.values()])
        keep = max(1, int(round(0.5 * all_scores.size)))
        threshold = np.partition(all_scores, all_scores.size - keep)[all_scores.size - keep]
        for name, parameter in method.masks.parameters.items():
            mask = method.masks.masks[name]
            surviving = scores[name][mask > 0]
            if surviving.size:
                assert surviving.min() >= threshold - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SNIPSNN(sparsity=1.0)
        with pytest.raises(ValueError):
            SNIPSNN(sparsity=0.5, calibration_batches=0)


class TestRunnerIntegration:
    @pytest.mark.parametrize("method_name", ["gmp", "snip"])
    def test_run_via_experiment_runner(self, method_name):
        from repro.experiments import run_experiment, scaled_config

        config = scaled_config(
            "cifar10", "convnet", method_name, 0.8,
            epochs=2, train_samples=32, test_samples=16, timesteps=2, batch_size=16,
        )
        outcome = run_experiment(config)
        assert abs(outcome.final_sparsity - 0.8) < 0.05
