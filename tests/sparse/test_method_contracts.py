"""Contract tests: invariants every sparse-training method must honour.

Parametrized over the whole method zoo so new methods inherit the same
obligations: masked weights stay zero, gradients are masked, reported
sparsity is consistent with the actual masks, and methods work with
both SGD and Adam.
"""

import numpy as np
import pytest

from repro.optim import SGD, Adam
from repro.snn.models import SpikingMLP
from repro.sparse import (
    ADMMPruner,
    DenseMethod,
    GMPSNN,
    NDSNN,
    RigLSNN,
    SETSNN,
    SNIPSNN,
    StaticMaskMethod,
    StructuredFilterPruning,
)
from repro.tensor import Tensor, cross_entropy

ITERATIONS = 24
UPDATE_FREQ = 6


def method_factories():
    return [
        ("dense", lambda rng: DenseMethod()),
        ("static", lambda rng: StaticMaskMethod(densities=None, rng=rng)),
        ("ndsnn", lambda rng: NDSNN(initial_sparsity=0.4, final_sparsity=0.8,
                                    total_iterations=ITERATIONS,
                                    update_frequency=UPDATE_FREQ, rng=rng)),
        ("set", lambda rng: SETSNN(sparsity=0.7, total_iterations=ITERATIONS,
                                   update_frequency=UPDATE_FREQ, rng=rng)),
        ("rigl", lambda rng: RigLSNN(sparsity=0.7, total_iterations=ITERATIONS,
                                     update_frequency=UPDATE_FREQ, rng=rng)),
        ("gmp", lambda rng: GMPSNN(final_sparsity=0.8, total_iterations=ITERATIONS,
                                   update_frequency=UPDATE_FREQ, rng=rng)),
        ("snip", lambda rng: SNIPSNN(sparsity=0.7, rng=rng)),
        ("admm", lambda rng: ADMMPruner(sparsity=0.7, total_iterations=ITERATIONS,
                                        admm_fraction=0.5,
                                        update_frequency=UPDATE_FREQ, rng=rng)),
        ("structured", lambda rng: StructuredFilterPruning(
            final_sparsity=0.5, total_iterations=ITERATIONS,
            update_frequency=UPDATE_FREQ, rng=rng)),
    ]


def train(method, optimizer_cls=SGD, seed=0, iterations=ITERATIONS):
    model = SpikingMLP(in_features=16, num_classes=4, hidden=(24,), timesteps=2,
                       rng=np.random.default_rng(seed))
    if optimizer_cls is SGD:
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    else:
        optimizer = Adam(model.parameters(), lr=1e-3)
    method.bind(model, optimizer)
    rng = np.random.default_rng(seed + 1)
    for iteration in range(iterations):
        x = Tensor(rng.standard_normal((8, 16)).astype(np.float32))
        y = rng.integers(0, 4, 8)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)
    return model, method


@pytest.mark.parametrize("name,factory", method_factories())
class TestMethodContracts:
    def test_masked_weights_are_zero_after_training(self, name, factory):
        _, method = train(factory(np.random.default_rng(0)))
        if method.masks is None:
            return
        for layer_name, parameter in method.masks.parameters.items():
            inactive = method.masks.masks[layer_name] == 0
            assert np.all(parameter.data[inactive] == 0.0), (
                f"{name}: masked weights drifted in {layer_name}"
            )

    def test_reported_sparsity_matches_masks(self, name, factory):
        _, method = train(factory(np.random.default_rng(1)), seed=1)
        reported = method.sparsity()
        assert 0.0 <= reported < 1.0
        if method.masks is not None and reported > 0.0:
            actual = method.masks.sparsity()
            assert abs(reported - actual) < 1e-9

    def test_density_is_complement(self, name, factory):
        _, method = train(factory(np.random.default_rng(2)), seed=2)
        assert np.isclose(method.sparsity() + method.density(), 1.0)

    def test_works_with_adam(self, name, factory):
        _, method = train(factory(np.random.default_rng(3)), optimizer_cls=Adam, seed=3)
        assert 0.0 <= method.sparsity() < 1.0

    def test_loss_is_finite_throughout(self, name, factory):
        model, method = train(factory(np.random.default_rng(4)), seed=4)
        rng = np.random.default_rng(5)
        x = Tensor(rng.standard_normal((4, 16)).astype(np.float32))
        loss = cross_entropy(model(x), rng.integers(0, 4, 4))
        assert np.isfinite(float(loss.data))

    def test_distribution_covers_all_masked_layers(self, name, factory):
        _, method = train(factory(np.random.default_rng(6)), seed=6)
        distribution = method.sparsity_distribution()
        if method.masks is None:
            assert distribution == {}
        else:
            assert set(distribution) == set(method.masks.masks)
            assert all(0.0 <= value <= 1.0 for value in distribution.values())
