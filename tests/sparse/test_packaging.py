"""Packed ``.reprom`` artifact: codecs, quantization bounds, zero-copy load.

Property-based where it matters:

* delta+varint index coding is lossless for every well-formed CSR
  pattern (sorted, unique, in-range — preserved exactly);
* int8 per-row absmax quantization reconstructs within ``scale/2`` per
  row and never clips; f16 storage is exact for f16-representable
  values;
* export → load → infer is **bit-stable across processes** (two fresh
  interpreters agree byte-for-byte on the same package);
* package-backed serving never imports the training stack; and
* the storage report's packed bytes are the real file's bytes, not a
  formula.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.serve import InferenceSession, ModelRegistry
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.sparse.packaging import (
    MAGIC,
    PackedModel,
    build_packed_runtime,
    delta_decode_indices,
    delta_encode_indices,
    dequantize_rows,
    packed_layer_bytes,
    quantize_rows_int8,
    varint_decode,
    varint_encode,
    write_package,
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

MLP_SPEC = {
    "model": "mlp",
    "kwargs": {"in_features": 16, "num_classes": 3, "hidden": [24],
               "timesteps": 3},
    "encoder": "direct",
    "seed": 0,
}


def make_packaged_mlp(tmp_path, precision="int8", density=0.2, seed=0):
    model = SpikingMLP(16, 3, hidden=(24,), timesteps=3,
                       rng=np.random.default_rng(seed))
    model.eval()
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random({name: density for name in manager.states})
    manager.set_execution("csr")
    path = tmp_path / f"model_{precision}.reprom"
    summary = write_package(path, model, manager, MLP_SPEC,
                            precision=precision)
    return model, manager, path, summary


def random_csr(rng, rows, cols, density):
    mask = rng.random((rows, cols)) < density
    indptr = np.zeros(rows + 1, dtype=np.int32)
    indptr[1:] = np.cumsum(mask.sum(axis=1))
    indices = (
        np.concatenate([np.flatnonzero(mask[r]) for r in range(rows)])
        .astype(np.int32)
        if mask.any() else np.zeros(0, dtype=np.int32)
    )
    return indices, indptr


# ----------------------------------------------------------------------
# Codec properties
# ----------------------------------------------------------------------
class TestIndexCodec:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=2**40), max_size=200
        )
    )
    def test_varint_round_trip(self, values):
        array = np.asarray(values, dtype=np.uint64)
        decoded = varint_decode(varint_encode(array), len(values))
        assert np.array_equal(decoded, array)

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=500),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_delta_varint_round_trip_preserves_csr(
        self, rows, cols, density, seed
    ):
        indices, indptr = random_csr(
            np.random.default_rng(seed), rows, cols, density
        )
        stream = varint_encode(delta_encode_indices(indices, indptr))
        decoded = delta_decode_indices(
            varint_decode(stream, indices.size), indptr, cols
        )
        assert decoded.dtype == np.int32
        assert np.array_equal(decoded, indices)
        # well-formedness survives: sorted+unique per row, in range
        for row in range(rows):
            span = decoded[indptr[row]:indptr[row + 1]]
            assert np.all(np.diff(span) > 0)
            assert span.size == 0 or (span[0] >= 0 and span[-1] < cols)

    def test_unsorted_indices_rejected(self):
        indptr = np.array([0, 2], dtype=np.int32)
        with pytest.raises(ValueError):
            delta_encode_indices(np.array([3, 1], dtype=np.int32), indptr)
        with pytest.raises(ValueError):  # duplicate
            delta_encode_indices(np.array([3, 3], dtype=np.int32), indptr)

    def test_corrupt_varint_stream_rejected(self):
        good = varint_encode(np.array([5, 300], dtype=np.uint64))
        with pytest.raises(ValueError):
            varint_decode(good, 3)  # wrong element count
        with pytest.raises(ValueError):
            varint_decode(good[:-1], 2)  # truncated terminator

    def test_out_of_range_decode_rejected(self):
        indptr = np.array([0, 1], dtype=np.int32)
        deltas = delta_encode_indices(np.array([7], dtype=np.int32), indptr)
        with pytest.raises(ValueError):
            delta_decode_indices(deltas, indptr, cols=7)


# ----------------------------------------------------------------------
# Quantization properties
# ----------------------------------------------------------------------
class TestQuantization:
    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=30),
        scale=st.floats(min_value=1e-3, max_value=1e3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_int8_error_within_half_scale_per_row(self, rows, scale, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 40, size=rows)
        indptr = np.zeros(rows + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(counts)
        values = (rng.standard_normal(int(indptr[-1])) * scale).astype(
            np.float32
        )
        quantized, scales = quantize_rows_int8(values, indptr)
        assert quantized.dtype == np.int8
        assert np.abs(quantized).max(initial=0) <= 127  # never clips
        restored = dequantize_rows(quantized, scales, indptr)
        row_of = np.repeat(np.arange(rows), counts)
        bound = scales[row_of] / 2.0 + 1e-7
        assert np.all(np.abs(restored - values) <= bound)

    def test_empty_and_zero_rows_get_zero_scale(self):
        indptr = np.array([0, 0, 2, 4], dtype=np.int64)
        values = np.array([0.0, 0.0, 1.0, -2.0], dtype=np.float32)
        quantized, scales = quantize_rows_int8(values, indptr)
        assert scales[0] == 0.0 and scales[1] == 0.0
        restored = dequantize_rows(quantized, scales, indptr)
        assert np.array_equal(restored[:2], [0.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_f16_exact_for_representable_values(self, seed, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("f16")
        model = SpikingMLP(8, 2, hidden=(6,), timesteps=2,
                           rng=np.random.default_rng(seed))
        model.eval()
        # force every weight onto the f16 grid first
        for _, parameter in model.named_parameters():
            parameter.data = (
                parameter.data.astype(np.float16).astype(np.float32)
            )
        manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
        manager.init_random({name: 0.5 for name in manager.states})
        manager.set_execution("csr")
        path = tmp_path / f"m{seed}.reprom"
        write_package(path, model, manager,
                      {"model": "mlp",
                       "kwargs": {"in_features": 8, "num_classes": 2,
                                  "hidden": [6], "timesteps": 2},
                       "encoder": "direct", "seed": 0},
                      precision="f16")
        _, packed_manager = build_packed_runtime(PackedModel(path))
        for name, state in manager.states.items():
            stored = packed_manager.states[name].csr_values()
            assert np.array_equal(
                np.asarray(stored, dtype=np.float32), state.csr_values()
            ), name


# ----------------------------------------------------------------------
# Artifact structure and zero-copy loading
# ----------------------------------------------------------------------
class TestPackedArtifact:
    def test_header_magic_and_rejects_non_package(self, tmp_path):
        _, _, path, _ = make_packaged_mlp(tmp_path)
        with open(path, "rb") as fh:
            assert fh.read(8) == MAGIC
        bogus = tmp_path / "bogus.reprom"
        bogus.write_bytes(b"not a package at all")
        with pytest.raises(ValueError, match="not a .reprom"):
            PackedModel(bogus)

    def test_f32_values_alias_the_map_zero_copy(self, tmp_path):
        _, manager, path, _ = make_packaged_mlp(tmp_path, precision="f32")
        package = PackedModel(path)
        _, packed_manager = build_packed_runtime(package)
        for name, state in packed_manager.states.items():
            values = state.csr_values()
            assert not values.flags.writeable
            assert np.shares_memory(values, package._mm), name
            assert np.array_equal(values, manager.states[name].csr_values())

    def test_f16_biases_served_end_to_end(self, tmp_path):
        model, _, path, _ = make_packaged_mlp(tmp_path, precision="int8")
        packed_model, _ = build_packed_runtime(PackedModel(path))
        originals = dict(model.named_parameters())
        served = dict(packed_model.named_parameters())
        bias_names = [name for name in served if name.endswith("bias")]
        assert bias_names
        for name in bias_names:
            assert served[name].data.dtype == np.float16, name
            assert np.array_equal(
                served[name].data,
                originals[name].data.astype(np.float16),
            ), name

    def test_runtime_precision_must_match_stored(self, tmp_path):
        _, _, path, _ = make_packaged_mlp(tmp_path, precision="f16")
        with pytest.raises(ValueError, match="needs a int8 artifact"):
            build_packed_runtime(PackedModel(path), precision="int8")

    def test_thaw_refused(self, tmp_path):
        _, _, path, _ = make_packaged_mlp(tmp_path)
        _, manager = build_packed_runtime(PackedModel(path))
        with pytest.raises(RuntimeError, match="immutable"):
            manager.thaw()

    def test_storage_report_bytes_are_real_file_bytes(self, tmp_path):
        _, _, path, _ = make_packaged_mlp(tmp_path, precision="int8")
        package = PackedModel(path)
        model, manager = build_packed_runtime(package)
        report = InferenceSession(model, manager, max_batch=2).storage_report()
        assert report["packed"]["file_bytes"] == os.path.getsize(path)
        assert report["packed"]["precision"] == "int8"
        # per-layer packed bytes re-run the real codec and must fit in
        # the actual file (header/dense entries account for the rest)
        assert 0 < report["total_packed_bytes"] < os.path.getsize(path)
        for layer in report["layers"]:
            assert layer["packed_bytes"] < layer["dense_bits"] // 8

    def test_packed_layer_bytes_matches_manifest(self, tmp_path):
        _, manager, path, _ = make_packaged_mlp(tmp_path, precision="int8")
        package = PackedModel(path)
        by_name = {entry["name"]: entry for entry in package.meta["layers"]}
        for name, state in manager.states.items():
            accounted = packed_layer_bytes(state.csr_pattern(), "int8")
            tensors = by_name[name]["tensors"]
            assert accounted["index_bytes"] == tensors["indices"]["nbytes"]
            assert accounted["value_bytes"] == tensors["values"]["nbytes"]
            assert accounted["scale_bytes"] == tensors["scales"]["nbytes"]


# ----------------------------------------------------------------------
# Cross-process properties
# ----------------------------------------------------------------------
_INFER_SNIPPET = """
import json, sys
import numpy as np
from repro.serve import ModelRegistry
registry = ModelRegistry().load_package("m", sys.argv[1])
session = registry.session("m", max_batch=4)
rng = np.random.default_rng(7)
out = session.predict(rng.standard_normal((4, 16)).astype(np.float32))
bad = [m for m in sys.modules
       if m.startswith("repro.train") or m.startswith("repro.experiments")]
print(json.dumps({"digest": out.tobytes().hex(), "training_modules": bad}))
"""


def run_packaged_inference(path):
    result = subprocess.run(
        [sys.executable, "-c", _INFER_SNIPPET, str(path)],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": SRC_DIR},
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


class TestCrossProcess:
    def test_export_load_infer_bit_stable_across_processes(self, tmp_path):
        _, _, path, _ = make_packaged_mlp(tmp_path, precision="int8")
        first = run_packaged_inference(path)
        second = run_packaged_inference(path)
        assert first["digest"] == second["digest"]
        # and the in-process load agrees byte-for-byte too
        registry = ModelRegistry().load_package("m", path)
        out = registry.session("m", max_batch=4).predict(
            np.random.default_rng(7).standard_normal((4, 16)).astype(
                np.float32)
        )
        assert out.tobytes().hex() == first["digest"]

    def test_package_serving_never_imports_training_stack(self, tmp_path):
        _, _, path, _ = make_packaged_mlp(tmp_path, precision="f32")
        result = run_packaged_inference(path)
        assert result["training_modules"] == []
