"""MaskManager: init, enforcement, drop/grow primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import MaskManager, sparsifiable_parameters
from repro.tensor import Tensor, cross_entropy


def manager(tiny_convnet, seed=0):
    return MaskManager(tiny_convnet, rng=np.random.default_rng(seed))


class TestSelection:
    def test_only_multidim_weights(self, tiny_convnet):
        names = [name for name, _ in sparsifiable_parameters(tiny_convnet)]
        assert all("bias" not in name for name in names)
        # Conv weights and the classifier weight are included.
        assert any("classifier.weight" in name for name in names)
        assert any(name.endswith("0.weight") for name in names)

    def test_exclusion(self, tiny_convnet):
        all_names = [n for n, _ in sparsifiable_parameters(tiny_convnet)]
        kept = [n for n, _ in sparsifiable_parameters(tiny_convnet, exclude=all_names[:1])]
        assert all_names[0] not in kept

    def test_bn_weights_stay_dense(self, tiny_convnet):
        names = [name for name, _ in sparsifiable_parameters(tiny_convnet)]
        bn_names = [
            name for name, p in tiny_convnet.named_parameters()
            if p.ndim == 1 and "bias" not in name
        ]
        assert bn_names  # the fixture has BN layers
        assert not set(bn_names) & set(names)


class TestInitialisation:
    def test_random_init_counts(self, tiny_convnet):
        masks = manager(tiny_convnet)
        densities = {name: 0.25 for name in masks.masks}
        masks.init_random(densities)
        for name in masks.masks:
            expected = max(1, int(round(0.25 * masks.layer_size(name))))
            assert masks.nonzero_count(name) == expected

    def test_init_applies_masks_to_weights(self, tiny_convnet):
        masks = manager(tiny_convnet)
        masks.init_random({name: 0.5 for name in masks.masks})
        for name, parameter in masks.parameters.items():
            inactive = masks.masks[name] == 0
            assert np.all(parameter.data[inactive] == 0.0)

    def test_magnitude_init_keeps_largest(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        parameter = masks.parameters[name]
        flat = np.abs(parameter.data.reshape(-1))
        masks.init_from_magnitude({n: 0.5 for n in masks.masks})
        kept = np.abs(parameter.data.reshape(-1))[masks.masks[name].reshape(-1) > 0]
        dropped_max = flat[masks.masks[name].reshape(-1) == 0].max()
        assert kept.min() >= dropped_max - 1e-7

    def test_sparsity_reporting(self, tiny_convnet):
        masks = manager(tiny_convnet)
        masks.init_random({name: 0.2 for name in masks.masks})
        assert 0.75 < masks.sparsity() < 0.85
        assert np.isclose(masks.density(), 1 - masks.sparsity())
        distribution = masks.sparsity_distribution()
        assert set(distribution) == set(masks.masks)

    def test_set_mask_shape_check(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        with pytest.raises(ValueError):
            masks.set_mask(name, np.ones((1, 1), dtype=np.float32))

    def test_copy_load_roundtrip(self, tiny_convnet):
        masks = manager(tiny_convnet)
        masks.init_random({name: 0.3 for name in masks.masks})
        snapshot = masks.copy_masks()
        masks.init_random({name: 0.8 for name in masks.masks})
        masks.load_masks(snapshot)
        for name in masks.masks:
            assert np.array_equal(masks.masks[name], snapshot[name])


class TestEnforcement:
    def test_gradient_masking(self, tiny_convnet):
        masks = manager(tiny_convnet)
        masks.init_random({name: 0.3 for name in masks.masks})
        x = Tensor(np.random.default_rng(1).standard_normal((2, 2, 8, 8)).astype(np.float32))
        loss = cross_entropy(tiny_convnet(x), np.array([0, 1]))
        loss.backward()
        masks.apply_to_gradients()
        for name, parameter in masks.parameters.items():
            inactive = masks.masks[name] == 0
            assert np.all(parameter.grad[inactive] == 0.0)

    def test_apply_masks_idempotent(self, tiny_convnet):
        masks = manager(tiny_convnet)
        masks.init_random({name: 0.4 for name in masks.masks})
        before = {n: p.data.copy() for n, p in masks.parameters.items()}
        masks.apply_masks()
        for name, parameter in masks.parameters.items():
            assert np.array_equal(parameter.data, before[name])


class TestDropGrow:
    def test_drop_removes_smallest(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        parameter = masks.parameters[name]
        before_active = int(masks.masks[name].sum())
        dropped = masks.drop_by_magnitude(name, 5)
        assert dropped.size == 5
        assert masks.nonzero_count(name) == before_active - 5
        assert np.all(parameter.data.reshape(-1)[dropped] == 0.0)

    def test_drop_zero_count_is_noop(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        assert masks.drop_by_magnitude(name, 0).size == 0

    def test_drop_chooses_least_magnitude(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        parameter = masks.parameters[name]
        flat = np.abs(parameter.data.reshape(-1)).copy()
        dropped = masks.drop_by_magnitude(name, 3)
        survivors = np.flatnonzero(masks.masks[name].reshape(-1))
        assert flat[dropped].max() <= flat[survivors].min() + 1e-7

    def test_grow_by_score_picks_top(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        masks.init_random({n: 0.2 for n in masks.masks})
        scores = np.random.default_rng(2).random(masks.parameters[name].shape)
        inactive_before = np.flatnonzero(masks.masks[name].reshape(-1) == 0)
        grown = masks.grow_by_score(name, 4, scores)
        assert grown.size == 4
        flat_scores = scores.reshape(-1)
        not_grown = np.setdiff1d(inactive_before, grown)
        assert flat_scores[grown].min() >= flat_scores[not_grown].max() - 1e-12

    def test_grown_weights_start_at_zero(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        masks.init_random({n: 0.2 for n in masks.masks})
        parameter = masks.parameters[name]
        grown = masks.grow_random(name, 6)
        assert np.all(parameter.data.reshape(-1)[grown] == 0.0)
        assert np.all(masks.masks[name].reshape(-1)[grown] == 1.0)

    def test_grow_respects_available_space(self, tiny_convnet):
        masks = manager(tiny_convnet)
        name = next(iter(masks.masks))
        # All weights already active: nothing to grow.
        grown = masks.grow_random(name, 100)
        assert grown.size == 0


@settings(max_examples=20, deadline=None)
@given(density=st.floats(min_value=0.05, max_value=0.95))
def test_drop_then_grow_restores_count(density):
    """Drop k then grow k leaves the active count unchanged."""
    from repro.snn.models import SpikingMLP

    model = SpikingMLP(in_features=20, num_classes=4, hidden=(16,), rng=np.random.default_rng(0))
    masks = MaskManager(model, rng=np.random.default_rng(1))
    masks.init_random({name: density for name in masks.masks})
    name = next(iter(masks.masks))
    before = masks.nonzero_count(name)
    k = max(1, before // 4)
    dropped = masks.drop_by_magnitude(name, k)
    grown = masks.grow_random(name, dropped.size)
    assert masks.nonzero_count(name) == before - dropped.size + grown.size
    assert dropped.size == grown.size or grown.size == 0
