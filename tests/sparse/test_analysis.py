"""Sparse-topology analysis utilities."""

import numpy as np
import pytest

from repro.sparse import (
    analyze_masks,
    degree_statistics,
    input_output_connectivity,
    layer_chain_graph,
    mask_bipartite_graph,
    topology_change,
)


class TestDegreeStats:
    def test_dense_mask(self):
        stats = degree_statistics(np.ones((4, 6), dtype=np.float32))
        assert stats.mean_out == 6.0
        assert stats.mean_in == 4.0
        assert stats.dead_outputs == 0
        assert not stats.has_dead_units

    def test_dead_units_detected(self):
        mask = np.ones((3, 3), dtype=np.float32)
        mask[1, :] = 0  # dead output
        mask[:, 2] = 0  # dead input
        stats = degree_statistics(mask)
        assert stats.dead_outputs == 1
        assert stats.dead_inputs == 1
        assert stats.has_dead_units

    def test_conv_mask_collapsed(self):
        mask = np.zeros((2, 3, 2, 2), dtype=np.float32)
        mask[0, 0, 0, 0] = 1
        stats = degree_statistics(mask)
        assert stats.dead_outputs == 1  # filter 1 fully dead
        assert stats.mean_out == 0.5

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            degree_statistics(np.ones(5))


class TestBipartiteGraph:
    def test_edges_match_nonzeros(self):
        mask = np.array([[1, 0], [0, 1]], dtype=np.float32)
        graph = mask_bipartite_graph(mask)
        assert graph.number_of_edges() == 2
        assert (("out", 0), ("in", 0)) in graph.edges or (("in", 0), ("out", 0)) in graph.edges


class TestConnectivity:
    def test_fully_connected_chain(self):
        masks = [np.ones((4, 3)), np.ones((2, 4))]
        assert input_output_connectivity(masks) == 1.0

    def test_broken_chain(self):
        # Layer 2 only reads unit 0 of the hidden layer, but layer 1
        # never writes unit 0 -> outputs unreachable.
        layer1 = np.zeros((4, 3)); layer1[1:, :] = 1
        layer2 = np.zeros((2, 4)); layer2[:, 0] = 1
        assert input_output_connectivity([layer1, layer2]) == 0.0

    def test_partial(self):
        layer1 = np.zeros((2, 2)); layer1[0, 0] = 1
        layer2 = np.eye(2)
        assert input_output_connectivity([layer1, layer2]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            input_output_connectivity([])

    def test_chain_graph_nodes(self):
        graph = layer_chain_graph([np.ones((2, 3))])
        assert (0, 0) in graph and (1, 1) in graph


class TestChurn:
    def test_identical_masks(self):
        masks = {"a": np.ones((2, 2))}
        assert topology_change(masks, masks)["a"] == 0.0

    def test_disjoint_masks(self):
        before = {"a": np.array([[1, 0], [0, 0]], dtype=np.float32)}
        after = {"a": np.array([[0, 1], [0, 0]], dtype=np.float32)}
        assert topology_change(before, after)["a"] == 1.0

    def test_all_zero(self):
        masks = {"a": np.zeros((2, 2))}
        assert topology_change(masks, masks)["a"] == 0.0

    def test_ndsnn_training_keeps_connectivity(self):
        """After a full NDSNN ramp, outputs remain reachable from inputs."""
        from repro.optim import SGD
        from repro.snn.models import SpikingMLP
        from repro.sparse import NDSNN
        from repro.tensor import Tensor, cross_entropy

        model = SpikingMLP(in_features=16, num_classes=4, hidden=(24,),
                           timesteps=2, rng=np.random.default_rng(0))
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=40, update_frequency=10,
                       rng=np.random.default_rng(1))
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        method.bind(model, optimizer)
        rng = np.random.default_rng(2)
        for iteration in range(40):
            x = Tensor(rng.standard_normal((8, 16)).astype(np.float32))
            y = rng.integers(0, 4, 8)
            loss = cross_entropy(model(x), y)
            optimizer.zero_grad(); loss.backward()
            method.after_backward(iteration)
            optimizer.step(); method.after_step(iteration)
        masks = [method.masks.masks[name] for name in method.masks.masks]
        assert input_output_connectivity(masks) > 0.5
        stats = analyze_masks(method.masks.masks)
        assert all(s.mean_out > 0 for s in stats.values())
