"""Property-based invariants over the whole sparse stack.

Where the golden-mask suite pins exact historical behaviour for fixed
seeds, this suite states what must hold for *every* seed and density:

* mask initialisation hits the requested density within one element
  and produces strictly 0/1 masks;
* every trained method (full seed grid) keeps 0/1 masks, agrees with
  its own schedule accounting, and its CSR patterns have sorted,
  unique, in-range column indices that survive a freeze()/thaw()
  round-trip;
* structured compaction is output-preserving: the compacted model
  matches the severed masked-dense model to 1e-6 on random inputs, and
  with biases zeroed it matches the *untouched* masked-dense model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import Conv2d, Linear
from repro.snn.models import SpikingConvNet, SpikingMLP
from repro.sparse import CSRPattern, SparsityManager, compact_model, sever_dead_channels
from repro.tensor import Tensor, no_grad

from test_engine import METHOD_FACTORIES, make_model, train

#: Methods whose schedule targets one constant global sparsity the
#: final mask must hit exactly (to one element); the ramped methods
#: (ndsnn, gmp) stop at the last executed update's scheduled value,
#: which the history-consistency check covers instead.
CONSTANT_TARGET = {"set": 0.7, "rigl": 0.7, "snip": 0.7, "admm": 0.7}

SEED_GRID = (9, 10, 11)


def _quantized_keep(density, size):
    return max(1, min(size, int(round(density * size))))


# ----------------------------------------------------------------------
# Initialisation invariants
# ----------------------------------------------------------------------
class TestInitInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        density=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_init_random_density_within_one_element(self, density, seed):
        model = make_model()
        manager = SparsityManager(model, rng=np.random.default_rng(seed))
        manager.init_random({name: density for name in manager.states})
        for name, state in manager.states.items():
            nnz = state.nonzero_count()
            assert nnz == _quantized_keep(density, state.size), name
            assert abs(nnz - density * state.size) <= 1.0
            values = np.unique(state.mask)
            assert set(values.tolist()) <= {0.0, 1.0}, name

    @settings(max_examples=15, deadline=None)
    @given(
        density=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        kind=st.sampled_from(("uniform", "erk")),
    )
    def test_init_distribution_matches_returned_densities(self, density, seed, kind):
        model = make_model()
        manager = SparsityManager(model, rng=np.random.default_rng(seed))
        densities = manager.init_distribution(kind, density)
        for name, state in manager.states.items():
            assert state.nonzero_count() == _quantized_keep(
                densities[name], state.size
            ), name


# ----------------------------------------------------------------------
# CSR pattern invariants
# ----------------------------------------------------------------------
def _assert_csr_wellformed(pattern, mask):
    matrix = np.asarray(mask).reshape(pattern.shape)
    assert pattern.nnz == int(np.count_nonzero(matrix))
    assert pattern.indptr[0] == 0
    assert pattern.indptr[-1] == pattern.nnz
    assert np.all(np.diff(pattern.indptr) >= 0)
    for row in range(pattern.shape[0]):
        cols = pattern.indices[pattern.indptr[row]:pattern.indptr[row + 1]]
        # Sorted strictly increasing == sorted and unique and in range.
        assert np.all(np.diff(cols) > 0), f"row {row} indices not sorted/unique"
        if cols.size:
            assert cols[0] >= 0 and cols[-1] < pattern.shape[1]
        assert set(cols.tolist()) == set(np.nonzero(matrix[row])[0].tolist())


class TestCSRInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=12),
        density=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pattern_indices_and_freeze_thaw_roundtrip(
        self, rows, cols, density, seed
    ):
        rng = np.random.default_rng(seed)
        mask = (rng.random((rows, cols)) < density).astype(np.float32)
        weight = rng.standard_normal((rows, cols)).astype(np.float32) * mask
        pattern = CSRPattern.from_mask(mask)
        _assert_csr_wellformed(pattern, mask)

        values = pattern.gather(weight).copy()
        indices = pattern.indices.copy()
        pattern.freeze()
        assert pattern.frozen
        with pytest.raises(RuntimeError, match="frozen"):
            pattern.gather(weight)
        pattern.thaw()
        assert not pattern.frozen
        # The round-trip changed nothing: same indices, same values,
        # and the buffer is writable again.
        np.testing.assert_array_equal(pattern.indices, indices)
        np.testing.assert_array_equal(pattern.gather(weight), values)


# ----------------------------------------------------------------------
# Trained-method invariants (full seed grid)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEED_GRID)
@pytest.mark.parametrize("name", sorted(METHOD_FACTORIES))
def test_trained_method_mask_and_pattern_invariants(name, seed):
    model = make_model()
    method = train(model, METHOD_FACTORIES[name](np.random.default_rng(seed)))
    manager = method.masks
    total = manager.total_weights
    for layer, state in manager.states.items():
        mask = state.mask
        assert set(np.unique(mask).tolist()) <= {0.0, 1.0}, layer
        # Masked weights are exactly zero after training.
        assert np.all(state.parameter.data[mask == 0.0] == 0.0), layer
        pattern = CSRPattern.from_mask(mask)
        _assert_csr_wellformed(pattern, mask)
        gathered = pattern.gather(state.parameter.data).copy()
        pattern.freeze()
        pattern.thaw()
        np.testing.assert_array_equal(
            pattern.gather(state.parameter.data), gathered
        )
    if name in CONSTANT_TARGET:
        expected = total - int(round(CONSTANT_TARGET[name] * total))
        assert abs(manager.total_nonzero - expected) <= 1
    history = getattr(method, "history", None)
    if history:
        # The schedule's own accounting must agree with the masks, and
        # sparsity must ramp monotonically (no method un-prunes).
        after = [record.sparsity_after for record in history]
        assert after == sorted(after)
        assert abs(manager.sparsity() - after[-1]) * total <= 1.0


# ----------------------------------------------------------------------
# Compaction invariants
# ----------------------------------------------------------------------
def _zero_biases(model):
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)) and module.bias is not None:
            module.bias.data[:] = 0.0


def _row_masks(manager, row_sparsity, rng, structured_types):
    masks = {}
    for name, state in manager.states.items():
        shape = state.parameter.data.shape
        mask = np.ones(shape, dtype=np.float32)
        if len(shape) in structured_types:
            rows = shape[0]
            dead_count = int(round(row_sparsity * rows))
            dead_count = max(1, min(rows - 1, dead_count))
            dead = rng.choice(rows, size=dead_count, replace=False)
            mask[dead] = 0.0
        masks[name] = mask
    return masks


def _conv_setup(seed, row_sparsity, zero_bias):
    model = SpikingConvNet(
        num_classes=4, in_channels=2, image_size=8, channels=(6, 8),
        timesteps=3, rng=np.random.default_rng(seed),
    )
    if zero_bias:
        _zero_biases(model)
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    for name, mask in _row_masks(
        manager, row_sparsity, np.random.default_rng(seed + 2), {4}
    ).items():
        manager.set_mask(name, mask)
    manager.apply_masks()
    return model, manager


def _mlp_setup(seed, row_sparsity, zero_bias):
    model = SpikingMLP(
        in_features=10, num_classes=4, hidden=(12, 9), timesteps=3,
        rng=np.random.default_rng(seed),
    )
    if zero_bias:
        _zero_biases(model)
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    masks = _row_masks(
        manager, row_sparsity, np.random.default_rng(seed + 2), {2}
    )
    # The classifier keeps every output: structured pruning only
    # removes hidden units.
    last = list(masks)[-1]
    masks[last][:] = 1.0
    for name, mask in masks.items():
        manager.set_mask(name, mask)
    manager.apply_masks()
    return model, manager


def _predict(model, inputs):
    model.eval()
    with no_grad():
        return model(Tensor(inputs)).data


class TestCompactionInvariants:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 8),
        row_sparsity=st.floats(min_value=0.2, max_value=0.7),
        setup=st.sampled_from(("conv", "mlp")),
    )
    def test_compact_matches_severed_model(self, seed, row_sparsity, setup):
        build = _conv_setup if setup == "conv" else _mlp_setup
        inputs = np.random.default_rng(seed + 5).standard_normal(
            (4, 2, 8, 8) if setup == "conv" else (4, 10)
        ).astype(np.float32)

        severed_model, severed_manager = build(seed, row_sparsity, False)
        sever_dead_channels(severed_model, severed_manager)
        reference = _predict(severed_model, inputs)

        compact_model_, manager = build(seed, row_sparsity, False)
        manager = compact_model(compact_model_, manager)
        produced = _predict(compact_model_, inputs)

        scale = max(1.0, float(np.abs(reference).max()))
        assert float(np.abs(produced - reference).max()) <= 1e-6 * scale
        # Compaction genuinely shrank the pruned layers.
        assert manager.total_weights < severed_manager.total_weights

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 8),
        row_sparsity=st.floats(min_value=0.2, max_value=0.7),
        setup=st.sampled_from(("conv", "mlp")),
    )
    def test_compact_matches_masked_dense_with_zero_bias(
        self, seed, row_sparsity, setup
    ):
        # With biases zeroed, a dead row contributes exactly nothing,
        # so severing is a no-op and compact() must reproduce the
        # *untouched* masked-dense model.
        build = _conv_setup if setup == "conv" else _mlp_setup
        inputs = np.random.default_rng(seed + 5).standard_normal(
            (4, 2, 8, 8) if setup == "conv" else (4, 10)
        ).astype(np.float32)

        dense_model, _ = build(seed, row_sparsity, True)
        reference = _predict(dense_model, inputs)

        model, manager = build(seed, row_sparsity, True)
        compact_model(model, manager)
        produced = _predict(model, inputs)

        scale = max(1.0, float(np.abs(reference).max()))
        assert float(np.abs(produced - reference).max()) <= 1e-6 * scale


# ----------------------------------------------------------------------
# Packed-artifact f16 bias parity
# ----------------------------------------------------------------------
class TestPackedBiasParity:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 8),
        density=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_f16_biases_served_bit_exact(self, seed, density, tmp_path_factory):
        """Biases round f32 → f16 once at export and never again.

        With the reference model's biases snapped onto the f16 grid
        first, the packed f32-stored/f32-runtime session must reproduce
        it *bit-identically*: stored-f16 + upcast-on-use loses nothing
        beyond the initial rounding.  (Numpy's f16→f32 conversion is
        exact, so any further drift would mean the serving path
        re-quantizes somewhere.)
        """
        from repro.serve import InferenceSession
        from repro.sparse.packaging import (
            PackedModel, build_packed_runtime, write_package,
        )

        model = SpikingMLP(10, 3, hidden=(12,), timesteps=2,
                           rng=np.random.default_rng(seed))
        model.eval()
        for name, parameter in model.named_parameters():
            if name.endswith("bias"):
                parameter.data = (
                    parameter.data.astype(np.float16).astype(np.float32)
                )
        manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
        manager.init_random({name: density for name in manager.states})
        manager.set_execution("csr")
        inputs = np.random.default_rng(seed + 5).standard_normal(
            (4, 10)
        ).astype(np.float32)
        reference = InferenceSession(model, manager, max_batch=4).predict(
            inputs
        )

        path = tmp_path_factory.mktemp("bias") / "m.reprom"
        write_package(path, model, manager,
                      {"model": "mlp",
                       "kwargs": {"in_features": 10, "num_classes": 3,
                                  "hidden": [12], "timesteps": 2},
                       "encoder": "direct", "seed": 0},
                      precision="f32")
        packed, packed_manager = build_packed_runtime(PackedModel(path))
        for name, parameter in packed.named_parameters():
            if name.endswith("bias"):
                assert parameter.data.dtype == np.float16, name
        produced = InferenceSession(packed, packed_manager,
                                    max_batch=4).predict(inputs)
        assert np.array_equal(produced, reference)
