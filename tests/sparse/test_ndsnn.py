"""NDSNN drop-and-grow (Algorithm 1, Eqs. 4-9)."""

import numpy as np
import pytest

from repro.optim import SGD
from repro.snn.models import SpikingMLP
from repro.sparse import NDSNN
from repro.tensor import Tensor, cross_entropy


def make_model(seed=0, hidden=(32, 24)):
    return SpikingMLP(
        in_features=24, num_classes=4, hidden=hidden, timesteps=2,
        rng=np.random.default_rng(seed),
    )


def run_iterations(model, method, iterations, lr=0.05, momentum=0.9, seed=1):
    """Minimal training loop exercising the method hooks."""
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    method.bind(model, optimizer)
    for iteration in range(iterations):
        x = Tensor(rng.standard_normal((8, 24)).astype(np.float32))
        y = rng.integers(0, 4, 8)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)
    return optimizer


class TestSetup:
    def test_initial_sparsity_matches_theta_i(self):
        model = make_model()
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9, total_iterations=100, update_frequency=10)
        method.bind(model, SGD(model.parameters(), lr=0.1))
        assert abs(method.sparsity() - 0.5) < 0.05

    def test_erk_distribution_used(self):
        model = make_model()
        method = NDSNN(initial_sparsity=0.7, final_sparsity=0.95, total_iterations=100, update_frequency=10)
        method.bind(model, SGD(model.parameters(), lr=0.1))
        per_layer = method.sparsity_distribution()
        assert len(set(round(v, 3) for v in per_layer.values())) > 1  # not uniform

    def test_uniform_distribution_option(self):
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.6, final_sparsity=0.9, total_iterations=100,
            update_frequency=10, distribution="uniform",
        )
        method.bind(model, SGD(model.parameters(), lr=0.1))
        values = list(method.sparsity_distribution().values())
        assert np.allclose(values, 0.6, atol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            NDSNN(initial_sparsity=0.9, final_sparsity=0.5)
        with pytest.raises(ValueError):
            NDSNN(update_frequency=0)
        with pytest.raises(ValueError):
            NDSNN(growth_mode="telepathy")
        with pytest.raises(ValueError):
            NDSNN(stop_fraction=0.0)


class TestDropAndGrowDynamics:
    def test_sparsity_reaches_final(self):
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.5, final_sparsity=0.9,
            total_iterations=60, update_frequency=10,
            rng=np.random.default_rng(0),
        )
        run_iterations(model, method, 60)
        assert abs(method.sparsity() - 0.9) < 0.02

    def test_nonzero_count_never_increases(self):
        """The neurogenesis analogy: total connections only decline."""
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.5, final_sparsity=0.95,
            total_iterations=80, update_frequency=10,
            rng=np.random.default_rng(1),
        )
        run_iterations(model, method, 80)
        sparsities = [record.sparsity_after for record in method.history]
        assert all(b >= a - 1e-9 for a, b in zip(sparsities, sparsities[1:]))

    def test_drops_exceed_grows(self):
        """While the ramp rises, D > G each round (paper Fig. 2b)."""
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.5, final_sparsity=0.9,
            total_iterations=50, update_frequency=10,
            rng=np.random.default_rng(2),
        )
        run_iterations(model, method, 50)
        assert method.history, "no drop-and-grow rounds ran"
        for record in method.history:
            assert record.total_dropped >= record.total_grown

    def test_update_counts_match_equations(self):
        """Cross-check one round against Eqs. 6-9 recomputed by hand."""
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.5, final_sparsity=0.9,
            total_iterations=40, update_frequency=10,
            rng=np.random.default_rng(3),
        )
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        rng = np.random.default_rng(4)

        pre_counts = {n: method.masks.nonzero_count(n) for n in method.masks.masks}
        for iteration in range(11):
            x = Tensor(rng.standard_normal((4, 24)).astype(np.float32))
            y = rng.integers(0, 4, 4)
            loss = cross_entropy(model(x), y)
            optimizer.zero_grad()
            loss.backward()
            if iteration == 10:
                d_t = method.death_schedule.rate_at(10)
                targets = method.ramp.sparsity_at(10)
            method.after_backward(iteration)
            optimizer.step()
            method.after_step(iteration)

        record = method.history[0]
        assert record.iteration == 10
        for name in method.masks.masks:
            layer_size = method.masks.layer_size(name)
            n_pre = pre_counts[name]
            target_active = max(1, int(round((1.0 - targets[name]) * layer_size)))
            expected_drop = max(int(d_t * n_pre), n_pre - target_active)
            expected_drop = min(expected_drop, n_pre - 1)
            assert record.dropped[name] == expected_drop
            n_post = n_pre - expected_drop
            expected_grow = max(0, target_active - n_post)
            assert record.grown[name] == expected_grow

    def test_no_updates_after_horizon(self):
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.5, final_sparsity=0.9,
            total_iterations=40, update_frequency=10, stop_fraction=0.5,
            rng=np.random.default_rng(5),
        )
        run_iterations(model, method, 40)
        assert all(record.iteration <= 20 for record in method.history)

    def test_masked_weights_stay_zero_between_updates(self):
        model = make_model()
        method = NDSNN(
            initial_sparsity=0.6, final_sparsity=0.9,
            total_iterations=30, update_frequency=10,
            rng=np.random.default_rng(6),
        )
        run_iterations(model, method, 25)
        for name, parameter in method.masks.parameters.items():
            inactive = method.masks.masks[name] == 0
            assert np.all(parameter.data[inactive] == 0.0)


class TestGrowthModes:
    @pytest.mark.parametrize("mode", ["gradient", "random", "momentum"])
    def test_all_modes_run_and_hit_target(self, mode):
        model = make_model(seed=7)
        method = NDSNN(
            initial_sparsity=0.5, final_sparsity=0.85,
            total_iterations=40, update_frequency=10, growth_mode=mode,
            rng=np.random.default_rng(8),
        )
        run_iterations(model, method, 40)
        assert abs(method.sparsity() - 0.85) < 0.03

    def test_gradient_growth_selects_high_gradient_positions(self):
        model = make_model(seed=9)
        method = NDSNN(
            initial_sparsity=0.7, final_sparsity=0.9,
            total_iterations=40, update_frequency=10,
            rng=np.random.default_rng(10),
        )
        optimizer = SGD(model.parameters(), lr=0.05)
        method.bind(model, optimizer)
        name = next(iter(method.masks.masks))
        parameter = method.masks.parameters[name]
        # Fabricate a gradient and run one drop/grow round directly.
        for p in model.parameters():
            p.grad = np.zeros(p.shape, dtype=np.float32)
        rng = np.random.default_rng(11)
        parameter.grad = rng.random(parameter.shape).astype(np.float32)
        inactive = np.flatnonzero(method.masks.masks[name].reshape(-1) == 0)
        top_inactive = set(
            inactive[np.argsort(parameter.grad.reshape(-1)[inactive])[::-1][:5]].tolist()
        )
        method._drop_and_grow(10)
        grown_now_active = [i for i in top_inactive if method.masks.masks[name].reshape(-1)[i] == 1]
        # The highest-gradient inactive positions should be (mostly) grown.
        assert len(grown_now_active) >= 3


class TestMomentumReset:
    def test_grown_positions_have_zero_momentum(self):
        model = make_model(seed=12)
        method = NDSNN(
            initial_sparsity=0.6, final_sparsity=0.9,
            total_iterations=40, update_frequency=10,
            rng=np.random.default_rng(13),
        )
        optimizer = run_iterations(model, method, 11, momentum=0.9)
        # Immediately after the round at iteration 10, grown weights had
        # zero momentum; one optimizer step later their velocity equals
        # the (masked) gradient contribution only — we simply verify the
        # reset hook is wired by checking the API exists and ran.
        assert method.history
        assert any(record.total_grown > 0 for record in method.history)


class TestRepr:
    def test_repr_mentions_knobs(self):
        method = NDSNN(initial_sparsity=0.6, final_sparsity=0.95)
        text = repr(method)
        assert "0.6" in text and "0.95" in text
