"""LTH-SNN: iterative magnitude pruning with rewinding."""

import numpy as np
import pytest

from repro.sparse import LTHSNN, StaticMaskMethod
from repro.snn.models import SpikingMLP
from repro.optim import SGD
from repro.tensor import Tensor, cross_entropy


def make_model(seed=0):
    return SpikingMLP(
        in_features=20, num_classes=3, hidden=(24,), timesteps=2,
        rng=np.random.default_rng(seed),
    )


def train_steps(model, method, steps, seed=1):
    rng = np.random.default_rng(seed)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    method.bind(model, optimizer)
    for iteration in range(steps):
        x = Tensor(rng.standard_normal((6, 20)).astype(np.float32))
        y = rng.integers(0, 3, 6)
        loss = cross_entropy(model(x), y)
        optimizer.zero_grad()
        loss.backward()
        method.after_backward(iteration)
        optimizer.step()
        method.after_step(iteration)


class TestSchedule:
    def test_geometric_sparsity_schedule(self):
        model = make_model()
        controller = LTHSNN(model, target_sparsity=0.9, rounds=3)
        values = [controller.sparsity_for_round(r) for r in (1, 2, 3)]
        assert np.isclose(values[-1], 0.9)
        # Geometric: keep fraction shrinks by the same factor each round.
        keeps = [1 - v for v in values]
        ratios = [keeps[i + 1] / keeps[i] for i in range(2)]
        assert np.allclose(ratios, ratios[0])

    def test_training_sparsity_per_round(self):
        model = make_model()
        controller = LTHSNN(model, target_sparsity=0.9, rounds=3)
        assert controller.training_sparsity_for_round(1) == 0.0
        assert controller.training_sparsity_for_round(2) == pytest.approx(
            controller.sparsity_for_round(1)
        )

    def test_round_index_validation(self):
        controller = LTHSNN(make_model(), target_sparsity=0.9, rounds=2)
        with pytest.raises(ValueError):
            controller.sparsity_for_round(0)
        with pytest.raises(ValueError):
            controller.sparsity_for_round(3)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LTHSNN(make_model(), target_sparsity=1.5)
        with pytest.raises(ValueError):
            LTHSNN(make_model(), target_sparsity=0.9, rounds=0)
        with pytest.raises(ValueError):
            LTHSNN(make_model(), target_sparsity=0.9, scope="telepathic")


class TestPruning:
    def test_global_prune_reaches_sparsity(self):
        model = make_model(seed=1)
        controller = LTHSNN(model, target_sparsity=0.8, rounds=2)
        method = controller.method_for_round(1)
        train_steps(model, method, 10)
        controller.prune(1)
        assert abs(controller.current_sparsity() - controller.sparsity_for_round(1)) < 0.02

    def test_global_prune_uses_single_threshold(self):
        model = make_model(seed=2)
        controller = LTHSNN(model, target_sparsity=0.7, rounds=1)
        train_steps(model, controller.method_for_round(1), 5)
        controller.prune(1)
        surviving_min = np.inf
        pruned_max = 0.0
        for name, parameter in controller.parameters.items():
            mask = controller.masks[name]
            magnitudes = np.abs(parameter.data)
            if mask.sum():
                surviving_min = min(surviving_min, magnitudes[mask > 0].min())
            if (mask == 0).sum():
                pruned_max = max(pruned_max, magnitudes[mask == 0].max())
        assert surviving_min >= pruned_max - 1e-7

    def test_layerwise_scope(self):
        model = make_model(seed=3)
        controller = LTHSNN(model, target_sparsity=0.6, rounds=1, scope="layerwise")
        train_steps(model, controller.method_for_round(1), 5)
        controller.prune(1)
        for name in controller.masks:
            layer_sparsity = 1 - controller.masks[name].sum() / controller.masks[name].size
            assert abs(layer_sparsity - 0.6) < 0.05

    def test_masks_monotone_across_rounds(self):
        """Once pruned, a weight never returns (IMP invariant)."""
        model = make_model(seed=4)
        controller = LTHSNN(model, target_sparsity=0.9, rounds=3)
        previous = None
        for round_index in (1, 2, 3):
            train_steps(model, controller.method_for_round(round_index), 8, seed=round_index)
            controller.prune(round_index)
            current = {n: m.copy() for n, m in controller.masks.items()}
            if previous is not None:
                for name in current:
                    revived = (current[name] > 0) & (previous[name] == 0)
                    assert not revived.any()
            previous = current
            controller.rewind()


class TestRewinding:
    def test_rewind_restores_initial_values_under_mask(self):
        model = make_model(seed=5)
        controller = LTHSNN(model, target_sparsity=0.5, rounds=1)
        initial = {n: p.data.copy() for n, p in controller.parameters.items()}
        train_steps(model, controller.method_for_round(1), 10)
        controller.prune(1)
        controller.rewind()
        for name, parameter in controller.parameters.items():
            mask = controller.masks[name]
            assert np.allclose(parameter.data[mask > 0], initial[name][mask > 0])
            assert np.all(parameter.data[mask == 0] == 0.0)

    def test_method_for_round_one_is_dense(self):
        controller = LTHSNN(make_model(seed=6), target_sparsity=0.9, rounds=2)
        method = controller.method_for_round(1)
        assert isinstance(method, StaticMaskMethod)
        model = make_model(seed=6)
        method.bind(model, SGD(model.parameters(), lr=0.1))
        assert method.sparsity() == 0.0
